//! # qcut — Efficient Quantum Circuit Cutting by Neglecting Basis Elements
//!
//! Umbrella crate re-exporting the public API of the `qcut` workspace, a
//! from-scratch Rust reproduction of *"Efficient Quantum Circuit Cutting by
//! Neglecting Basis Elements"* (Chen, Hansen, et al., IPPS 2023,
//! arXiv:2304.04093).
//!
//! The workspace implements:
//!
//! * [`math`] — complex arithmetic, dense linear algebra, Pauli basis,
//!   Haar-random unitaries;
//! * [`circuit`] — a quantum circuit IR with the paper's Fig. 2 golden
//!   ansatz and a Qiskit-style `random_circuit` generator;
//! * [`sim`] — state-vector and density-matrix simulators with Kraus noise;
//! * [`device`] — simulated backends (ideal and noisy IBM-like presets)
//!   with a timing model for wall-clock experiments, plus multi-backend
//!   sharding pools with capacity- and noise-aware placement;
//! * [`stats`] — distributions, the paper's weighted distance (Eq. 17),
//!   and confidence intervals;
//! * [`cache`] — the cross-run warm-start cache: persistent per-node
//!   histograms and simulator fork-state reuse for parameter sweeps;
//! * [`cutting`] — the paper's contribution: wire cutting, golden cutting
//!   point detection and exploitation (a-priori / exact / online /
//!   statically proven via stabilizer dataflow), tensor reconstruction,
//!   the SIC variant, the light-cone cut adviser
//!   (`cutting::dataflow::cut_report`), and the shot-allocation policies
//!   (uniform / weighted / two-round variance-adaptive) scheduled through
//!   the JobGraph engine.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate layering,
//! the JobGraph execution seam, the PrefixForest, and the allocation
//! pipeline with the full data-flow diagram.
//!
//! ## Quickstart
//!
//! ```
//! use qcut::prelude::*;
//!
//! // Build the paper's 5-qubit golden ansatz (Fig. 2) and cut it.
//! let ansatz = GoldenAnsatz::new(5, 1234);
//! let (circuit, cut) = ansatz.build();
//!
//! // Run both fragments on the ideal backend and reconstruct.
//! let backend = IdealBackend::new(4242);
//! let executor = CutExecutor::new(&backend);
//! let options = ExecutionOptions { shots_per_setting: 2000, ..Default::default() };
//!
//! let standard = executor
//!     .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
//!     .unwrap();
//! let golden = executor
//!     .run(&circuit, &cut, GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]), &options)
//!     .unwrap();
//!
//! // Golden reconstruction uses 6 subcircuit settings instead of 9 ...
//! assert_eq!(standard.report.subcircuits_executed, 9);
//! assert_eq!(golden.report.subcircuits_executed, 6);
//! // ... and agrees with the standard result.
//! let d = total_variation_distance(&golden.distribution, &standard.distribution);
//! assert!(d < 0.1);
//! ```

#![forbid(unsafe_code)]

pub use qcut_cache as cache;
pub use qcut_circuit as circuit;
pub use qcut_core as cutting;
pub use qcut_device as device;
pub use qcut_math as math;
pub use qcut_sim as sim;
pub use qcut_stats as stats;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use qcut_cache::{CacheConfig, CacheKey, ShotDiscipline, WarmCache};
    pub use qcut_circuit::ansatz::{three_qubit_example, GoldenAnsatz};
    pub use qcut_circuit::circuit::Circuit;
    pub use qcut_circuit::cone::{dead_instructions, DeadGate, DeadGateKind, LightCones};
    pub use qcut_circuit::gate::{CliffordAction, Gate};
    pub use qcut_circuit::random::{random_circuit, random_real_circuit, RandomCircuitConfig};
    pub use qcut_circuit::tableau::{StabilizerGenerator, StabilizerTableau};
    pub use qcut_core::allocation::{ShotAllocation, ShotSchedule};
    pub use qcut_core::analysis::{
        analyze, analyze_with_backend, lint_graph, AnalysisConfig, Diagnostic, Diagnostics,
        LintCode, Severity,
    };
    pub use qcut_core::basis::MeasBasis;
    pub use qcut_core::cut::{CutLocation, CutSpec};
    pub use qcut_core::dataflow::{
        cut_report, prove_golden_bases, proven_plan, CutCandidate, CutReport,
    };
    pub use qcut_core::error::{ExecutionFailure, PipelineError};
    pub use qcut_core::fragment::Fragmenter;
    pub use qcut_core::golden::{ExactDetector, GoldenPolicy, OnlineDetector};
    pub use qcut_core::pipeline::{CutExecutor, ExecutionOptions, ReconstructionMethod};
    pub use qcut_core::retry::{Backoff, FailurePolicy, RetryPolicy};
    pub use qcut_device::backend::Backend;
    pub use qcut_device::fault::FaultInjectingBackend;
    pub use qcut_device::ideal::IdealBackend;
    pub use qcut_device::noisy::NoisyBackend;
    pub use qcut_device::pool::{BackendPool, MemberInfo, Placement, PlacementPolicy};
    pub use qcut_device::presets;
    pub use qcut_device::timing::TimingModel;
    pub use qcut_math::{c64, Complex, Matrix, Pauli, PauliString, PrepState};
    pub use qcut_sim::counts::Counts;
    pub use qcut_sim::statevector::StateVector;
    pub use qcut_stats::distance::{total_variation_distance, weighted_distance};
    pub use qcut_stats::distribution::Distribution;
}
