//! Offline no-op stand-in for `serde`.
//!
//! The workspace annotates several types with
//! `#[derive(serde::Serialize, serde::Deserialize)]` so that a future
//! JSON-report feature can serialize them, but nothing serializes today and
//! the build environment has no crates.io access. This crate provides the
//! trait names and derive macros so those annotations compile; the derives
//! emit marker impls only. Swap in real `serde` by deleting the
//! `[patch]`-free path deps once a registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
