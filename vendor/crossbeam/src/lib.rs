//! Offline, API-compatible subset of `crossbeam`.
//!
//! Provides the two pieces this workspace uses: an unbounded MPMC
//! [`channel`] (mutex + condvar, not lock-free — throughput is irrelevant
//! for the job-queue accounting model it backs) and [`scope`]d threads
//! implemented over `std::thread::scope`.

use std::any::Any;

/// Unbounded multi-producer multi-consumer FIFO channel.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; clone freely across threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clone freely across threads.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner.queue.lock().unwrap().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe EOF.
                // The count must be decremented and the notification sent
                // under the queue mutex, or a receiver that just observed
                // senders > 0 could park after our notify and sleep forever.
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; `Err(RecvError)` once the
        /// channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).unwrap();
            }
        }

        /// Non-blocking pop, if a message is ready.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner
                .queue
                .lock()
                .unwrap()
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Handle passed to the [`scope`] closure for spawning scoped threads.
///
/// Divergence from crossbeam: spawned closures receive `()` instead of a
/// nested `&Scope` (this workspace only ever binds it as `|_|`; threading
/// the real scope reference through would force the `'scope` lifetime into
/// every closure bound for no benefit).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread joined automatically when the scope ends.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before this
/// returns. A panic on any thread surfaces as `Err`, like crossbeam.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}
