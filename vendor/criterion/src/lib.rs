//! Offline mini benchmark harness exposing the slice of the `criterion`
//! API this workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Reporting is intentionally simple: each benchmark is warmed up, then
//! timed over `sample_size` samples, printing min / median / mean ns per
//! iteration to stdout. There are no HTML reports, baselines, or outlier
//! statistics — when a real registry is available, swapping in upstream
//! criterion requires no source changes to the benches.

// The stub mirrors upstream criterion's by-value signatures verbatim so
// swapping in the real crate needs no source changes; exempt it from the
// workspace's pedantic clippy bar.
#![allow(clippy::needless_pass_by_value)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, criterion's display convention.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// Converts to the printed id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target_sample_count: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, recording `target_sample_count` samples. Iteration
    /// count per sample is calibrated so one sample costs ~10 ms (capped
    /// so the whole benchmark stays under ~1 s even for slow routines).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // `cargo bench -- --test` smoke mode: run the routine once to
            // prove it executes, skip calibration and timing.
            let start = Instant::now();
            black_box(routine());
            self.iters_per_sample = 1;
            self.samples.clear();
            self.samples.push(start.elapsed());
            return;
        }
        // Warm-up & calibration: run until 5 ms or 1000 iters.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(5) && calib_iters < 1000 {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let budget = 1.0 / self.target_sample_count.max(1) as f64; // ~1 s total
        self.iters_per_sample = ((budget.min(0.01) / per_iter.max(1e-9)) as u64).clamp(1, 100_000);

        self.samples.clear();
        for _ in 0..self.target_sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let min = ns[0];
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        println!(
            "{label:<50} min {:>12} median {:>12} mean {:>12}  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            ns.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_sample_count: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.full));
        self
    }

    /// Runs a benchmark without a separate input.
    pub fn bench_function<L: IntoBenchmarkId, F>(&mut self, id: L, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_sample_count: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.full));
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark runner handle.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Applies command-line configuration. Only `--test` is interpreted
    /// (run every benchmark once, untimed — the smoke mode CI uses);
    /// other flags are accepted and ignored so `cargo bench -- <filter>`
    /// doesn't error out.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<L: IntoBenchmarkId, F>(&mut self, id: L, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_sample_count: 10,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        bencher.report(&id.full);
        self
    }
}

/// Declares a group function invoking each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
