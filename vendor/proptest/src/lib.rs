//! Offline mini property-testing harness exposing the slice of the
//! `proptest` API this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range / tuple / vec
//! strategies, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Divergences from real proptest, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs in the
//!   assertion message; reproduce it by keeping the test name and case
//!   index (sampling is deterministic per `(test name, case index)`).
//! * **No persisted failure seeds** (`proptest-regressions/` files).
//! * Assertion macros panic instead of returning `Err`, so they also work
//!   outside `proptest!` blocks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration (only the knob this workspace sets).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-(test, case) generator so failures are reproducible
/// from the panic message alone.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Strategy wrapping a constant (handy for mixed tuples).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `vec(strategy, len)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` caller expects.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // Surface the failing case index so the deterministic
                // sample can be regenerated via test_rng(name, case).
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: property '{}' failed at case {} of {} \
                         (reproduce with test_rng(\"{}\", {}))",
                        stringify!($name),
                        __case,
                        __config.cases,
                        stringify!($name),
                        __case,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
