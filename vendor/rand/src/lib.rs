//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact API slice it uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic for a given seed,
//! with statistical quality far beyond what the workspace's tolerance-based
//! tests require. It is NOT the same stream as upstream `StdRng` (ChaCha12),
//! so seeds produce different (but equally valid) samples.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's natural domain
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable over their "standard" domain (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from the standard domain using `rng`.
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer/float types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(mod_u128(rng, span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(mod_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Near-uniform draw from `[0, span)` via 128-bit widening multiply
/// (Lemire's method, no rejection — bias < 2^-64, irrelevant here).
fn mod_u128<G: RngCore + ?Sized>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    (rng.next_u64() as u128 * span) >> 64
}

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public-domain constants).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic per seed; a different stream than upstream `StdRng`
    /// (which is ChaCha12), but every use in this workspace only relies on
    /// determinism and uniformity, not the exact stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // All-zero state is the one forbidden state of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}
