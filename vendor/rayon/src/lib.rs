//! Offline, API-compatible subset of `rayon`.
//!
//! Implements exactly the parallel-iterator surface this workspace uses —
//! `par_iter`, `into_par_iter`, `par_chunks_mut`, `map`, `zip`, `for_each`,
//! `collect`, and [`current_num_threads`] — on top of `std::thread::scope`.
//! Unlike real rayon there is no work-stealing pool: each eager operation
//! splits its items into one contiguous block per available core. For the
//! regular, balanced workloads in this workspace (state-vector chunks,
//! tomography job lists, reconstruction rows) that is within noise of a
//! real pool, and it keeps the stub dependency-free.

use std::ops::Range;

/// Number of threads eager operations fan out to (one per available core).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many items the scoped-thread overhead outweighs any win.
const SEQ_CUTOFF: usize = 2;

/// Applies `f` to every item on a scoped thread pool, preserving order.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() < SEQ_CUTOFF {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let per = n.div_ceil(threads);
    let mut source = items.into_iter();
    let chunks: Vec<Vec<T>> = (0..n.div_ceil(per))
        .map(|_| source.by_ref().take(per).collect())
        .collect();
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-stub worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// An eager "parallel iterator": adaptors apply immediately across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map_vec(self.items, &f),
        }
    }

    /// Element-wise pairing (truncates to the shorter side, like `zip`).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Parallel side-effecting consumption.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, &|t| f(t));
    }

    /// Gathers the (already computed) items into a collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter` on slices (shared references).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` on slices (exclusive references).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping `&mut` chunks of length
    /// `chunk_size` (last one may be shorter). Panics if `chunk_size == 0`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}
