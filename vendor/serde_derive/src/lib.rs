//! Derive macros for the offline `serde` stub.
//!
//! The real `serde_derive` generates full (de)serialization impls; nothing
//! in this workspace serializes yet, so these derives parse the item just
//! far enough to find its name and emit marker-trait impls (or nothing when
//! the item is generic — the marker traits carry no behaviour, so a missing
//! impl can't break anything that compiles today).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name of a non-generic `struct`/`enum` definition.
/// Returns `None` for generic items, where a hand-rolled parser would need
/// to reproduce full where-clause handling to emit a correct impl.
fn plain_type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return match tokens.peek() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => None,
                        _ => Some(name.to_string()),
                    };
                }
                return None;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match plain_type_name(input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match plain_type_name(input) {
        Some(name) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
