//! JobGraph engine integration tests: batched-vs-sequential bit-identical
//! equivalence across all three execution paths, dedup accounting on
//! dedup-bearing workloads, and detection-data reuse.

use qcut::cutting::golden::OnlineConfig;
use qcut::cutting::jobgraph::{Channel, JobGraph};
use qcut::cutting::pipeline::PostProcess;
use qcut::prelude::*;

fn options(shots: u64, parallel: bool) -> ExecutionOptions {
    ExecutionOptions {
        shots_per_setting: shots,
        parallel,
        ..Default::default()
    }
}

/// A 3-qubit circuit whose cut is *not* golden (RX gives the cut qubit a Y
/// component, the trailing RZ mixes it into X — same family as the golden
/// detector's negative-control tests).
fn non_golden() -> (Circuit, CutSpec) {
    let mut c = Circuit::new(3);
    c.rx(1.1, 0).rx(0.9, 1).cx(0, 1).rz(0.8, 1).cx(1, 2);
    (c, CutSpec::single(1, 2))
}

#[test]
fn batched_and_sequential_eigenstate_runs_are_bit_identical() {
    let (circuit, cut) = GoldenAnsatz::new(5, 17).build();
    let run = |parallel: bool| {
        let backend = IdealBackend::new(99);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &options(3000, parallel),
            )
            .unwrap()
    };
    let par = run(true);
    let seq = run(false);
    assert_eq!(par.distribution.values(), seq.distribution.values());
    assert_eq!(par.report.total_shots, seq.report.total_shots);
    assert_eq!(par.report.jobs_executed, seq.report.jobs_executed);
}

#[test]
fn batched_and_sequential_sic_runs_are_bit_identical() {
    let (circuit, cut) = GoldenAnsatz::new(5, 23).build();
    let run = |parallel: bool| {
        let backend = IdealBackend::new(7);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions {
                    shots_per_setting: 3000,
                    method: ReconstructionMethod::Sic,
                    parallel,
                    ..Default::default()
                },
            )
            .unwrap()
    };
    let par = run(true);
    let seq = run(false);
    assert_eq!(par.distribution.values(), seq.distribution.values());
    // SIC plans 3 upstream + 4 SIC jobs, no eigenstate downstream ones.
    assert_eq!(par.report.jobs_planned, 7);
}

#[test]
fn batched_and_sequential_online_detection_runs_are_bit_identical() {
    let (circuit, cut) = GoldenAnsatz::new(5, 4).build();
    let config = OnlineConfig {
        epsilon: 0.08,
        batch_shots: 3000,
        ..OnlineConfig::default()
    };
    let run = |parallel: bool| {
        let backend = IdealBackend::new(6);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::DetectOnline(config),
                &options(3000, parallel),
            )
            .unwrap()
    };
    let par = run(true);
    let seq = run(false);
    assert_eq!(par.distribution.values(), seq.distribution.values());
    assert_eq!(par.report.detection_shots, seq.report.detection_shots);
}

#[test]
fn batched_and_sequential_runs_match_on_noisy_backend() {
    let (circuit, cut) = GoldenAnsatz::new(5, 11).build();
    let run = |parallel: bool| {
        let backend = presets::ibm_5q(13);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions {
                    shots_per_setting: 800,
                    postprocess: PostProcess::Raw,
                    parallel,
                    ..Default::default()
                },
            )
            .unwrap()
    };
    assert_eq!(
        run(true).distribution.values(),
        run(false).distribution.values()
    );
}

#[test]
fn online_detection_data_is_reused_by_the_gather() {
    // Non-golden circuit: detection concludes NotGolden, so the Y setting
    // it measured stays in the gather plan and its shots are reused — a
    // dedup-bearing workload end to end.
    let (circuit, cut) = non_golden();
    let config = OnlineConfig {
        epsilon: 0.05,
        batch_shots: 2000,
        ..OnlineConfig::default()
    };
    let backend = IdealBackend::new(5);
    let run = CutExecutor::new(&backend)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::DetectOnline(config),
            &options(4000, true),
        )
        .unwrap();
    let r = &run.report;
    assert!(r.neglected[0].is_empty(), "cut wrongly judged golden");
    assert!(r.detection_shots > 0);
    assert!(r.shots_saved > 0, "detection data was not reused: {r:?}");
    assert!(r.jobs_executed <= r.jobs_planned);
    // The reused Y-setting node needs fewer (possibly zero) fresh shots.
    assert!(
        r.jobs_executed < r.jobs_planned || r.shots_saved >= 2000,
        "expected at least one detection batch to offset the gather"
    );
    // Reusing data must not hurt the reconstruction.
    let truth = Distribution::from_values(3, StateVector::from_circuit(&circuit).probabilities());
    let d = total_variation_distance(&run.distribution, &truth);
    assert!(d < 0.06, "reconstruction off by {d}");
}

#[test]
fn detection_reuse_is_disabled_without_dedup() {
    let (circuit, cut) = non_golden();
    let config = OnlineConfig {
        epsilon: 0.05,
        batch_shots: 2000,
        ..OnlineConfig::default()
    };
    let backend = IdealBackend::new(5);
    let run = CutExecutor::new(&backend)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::DetectOnline(config),
            &ExecutionOptions {
                shots_per_setting: 4000,
                dedup: false,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(run.report.shots_saved, 0);
    assert_eq!(run.report.jobs_executed, run.report.jobs_planned);
}

#[test]
fn repeated_subcircuit_workload_dedups_across_consumers() {
    // The engine-level picture of a repeated-subcircuit ansatz: many
    // reconstruction terms consuming the same few unique circuits.
    let mut unique = Vec::new();
    for i in 0..3u64 {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.1 + i as f64, 2);
        unique.push(c);
    }
    let mut g = JobGraph::new();
    for term in 0..12u64 {
        g.add_job(
            unique[(term % 3) as usize].clone(),
            (Channel::DownstreamPrep, term),
            1000,
        );
    }
    assert_eq!(g.jobs_planned(), 12);
    assert_eq!(g.num_nodes(), 3);
    let run = g.execute(&IdealBackend::new(1), true).unwrap();
    assert_eq!(run.stats.jobs_executed, 3);
    assert_eq!(run.stats.shots_executed, 3000);
    assert_eq!(run.stats.shots_saved, 9000);
    // Every consumer of the same node sees the identical histogram.
    let a = run.counts(&(Channel::DownstreamPrep, 0)).unwrap();
    let b = run.counts(&(Channel::DownstreamPrep, 3)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn uncut_runs_flow_through_the_engine_unchanged() {
    let (circuit, _) = GoldenAnsatz::new(5, 7).build();
    // Engine-routed uncut run consumes the same seed stream as a direct
    // backend run, so the counts are identical.
    let direct = IdealBackend::new(41).run(&circuit, 5000).unwrap();
    let backend = IdealBackend::new(41);
    let run = CutExecutor::new(&backend)
        .run_uncut(&circuit, 5000)
        .unwrap();
    assert_eq!(
        run.distribution.values(),
        direct.counts.to_distribution().values()
    );
    assert_eq!(run.report.shots, 5000);
}

#[test]
fn run_report_dedup_fields_are_consistent_across_policies() {
    let (circuit, cut) = GoldenAnsatz::new(5, 2).build();
    let backend = IdealBackend::new(3);
    let executor = CutExecutor::new(&backend);
    for policy in [
        GoldenPolicy::Disabled,
        GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
        GoldenPolicy::detect_exact(),
    ] {
        let run = executor
            .run(&circuit, &cut, policy, &options(1000, true))
            .unwrap();
        let r = &run.report;
        assert!(r.jobs_executed <= r.jobs_planned, "{r:?}");
        // Dup-free static plans: every planned job executes.
        assert_eq!(r.jobs_executed, r.jobs_planned);
        assert_eq!(r.shots_saved, 0);
        assert_eq!(r.jobs_planned, r.subcircuits_executed);
        assert!(r.dedup_ratio().abs() < f64::EPSILON);
    }
}
