//! Workspace smoke test for the `qcut` facade: the `prelude` re-exports
//! must resolve, and a minimal cut → execute → reconstruct round-trip must
//! agree with the uncut statevector. This is the test a new checkout runs
//! first; if it fails, the workspace wiring (not the physics) is broken.

use qcut::prelude::*;

/// Every name the quickstart documentation leans on resolves through the
/// prelude and has the expected shape.
#[test]
fn prelude_reexports_resolve() {
    // Types usable as values / constructors.
    let ansatz = GoldenAnsatz::new(5, 7);
    let (circuit, cut): (Circuit, CutSpec) = ansatz.build();
    assert_eq!(circuit.num_qubits(), 5);
    assert!(cut.num_cuts() > 0);

    let loc: &CutLocation = &cut.cuts()[0];
    assert!(loc.qubit < circuit.num_qubits());

    // Enums re-exported at the top level.
    let bases = [MeasBasis::X, MeasBasis::Y, MeasBasis::Z];
    assert_eq!(bases.len(), 3);
    assert_eq!(Pauli::ALL.len(), 4);

    // Backend trait + concrete backends.
    let ideal = IdealBackend::new(1);
    let noisy: NoisyBackend = presets::ibm_5q(1);
    let _: &dyn Backend = &ideal;
    let _: &dyn Backend = &noisy;

    // Math + sim + stats round-trip on a trivial state.
    let mut bell = Circuit::new(2);
    bell.h(0).cx(0, 1);
    let sv = StateVector::from_circuit(&bell);
    let d = Distribution::from_values(2, sv.probabilities());
    assert!((d.total_mass() - 1.0).abs() < 1e-12);
    let _ = c64(0.0, 1.0);
    let _ = Matrix::identity(2);
}

/// Minimal end-to-end round-trip: cut the golden ansatz, execute both the
/// standard and golden plans on the ideal backend, and check both
/// reconstructions against the uncut statevector distribution.
#[test]
fn cut_execute_reconstruct_matches_uncut_statevector() {
    let (circuit, cut) = GoldenAnsatz::new(5, 2024).build();
    let truth = Distribution::from_values(
        circuit.num_qubits(),
        StateVector::from_circuit(&circuit).probabilities(),
    );

    let backend = IdealBackend::new(99);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 4000,
        ..Default::default()
    };

    let standard = executor
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .expect("standard plan runs");
    let golden = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &options,
        )
        .expect("golden plan runs");

    // The golden plan executes fewer subcircuits (3 -> 2 measurement bases
    // upstream: 9 -> 6 settings for a single cut)...
    assert_eq!(standard.report.subcircuits_executed, 9);
    assert_eq!(golden.report.subcircuits_executed, 6);

    // ...and both agree with the uncut ground truth to shot noise.
    let d_std = total_variation_distance(&standard.distribution, &truth);
    let d_gld = total_variation_distance(&golden.distribution, &truth);
    assert!(d_std < 0.08, "standard TVD too large: {d_std}");
    assert!(d_gld < 0.08, "golden TVD too large: {d_gld}");
}

/// The facade's module aliases (`qcut::cutting`, `qcut::math`, ...) reach
/// the member crates.
#[test]
fn module_aliases_resolve() {
    let plan = qcut::cutting::basis::BasisPlan::standard(1);
    assert_eq!(plan.num_cuts(), 1);
    let _ = qcut::math::Pauli::ALL;
    let _ = qcut::sim::counts::Counts::from_pairs(1, vec![(0u64, 1u64)]);
    let _ = qcut::stats::distribution::Distribution::from_values(1, vec![0.5, 0.5]);
    let _ = qcut::device::presets::aer_like(3);
    let c = qcut::circuit::circuit::Circuit::new(1);
    assert_eq!(c.num_qubits(), 1);
}
