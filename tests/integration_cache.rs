//! Integration tests for the cross-run warm-start cache: warm reruns are
//! bit-identical free replays, an absent/empty cache is bit-identical to
//! today's pipeline, backend fingerprints partition entries, and corrupt
//! cache files degrade to a cold start with a typed diagnostic.

use qcut::prelude::*;
use std::sync::Arc;

fn workload() -> (Circuit, CutSpec) {
    GoldenAnsatz::new(5, 77).build()
}

fn options_with_cache(cache: Option<Arc<WarmCache>>) -> ExecutionOptions {
    ExecutionOptions {
        shots_per_setting: 4000,
        cache,
        ..Default::default()
    }
}

/// A warm rerun of the identical workload at the same budget executes
/// zero fresh shots — every node is fully served from the cache — and
/// reconstructs the bit-identical distribution (the delivered histograms
/// ARE the stored ones).
#[test]
fn warm_rerun_is_bit_identical_and_executes_nothing() {
    let (circuit, cut) = workload();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let options = options_with_cache(Some(cache.clone()));

    let backend = IdealBackend::new(31);
    let cold = CutExecutor::new(&backend)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    assert_eq!(cold.report.cache_shots_reused, 0, "first run starts cold");
    assert!(cache.entries() > 0, "the run must populate the cache");

    // Fresh backend (same seed irrelevant: nothing executes) and executor:
    // only the cache carries state across the runs.
    let backend2 = IdealBackend::new(99);
    let warm = CutExecutor::new(&backend2)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();

    assert_eq!(warm.report.total_shots, 0, "warm run executes nothing");
    assert_eq!(warm.report.jobs_executed, 0);
    assert!(warm.report.cache_hits > 0);
    assert_eq!(
        warm.report.cache_shots_reused, warm.report.shots_requested,
        "every requested shot is served from the cache"
    );
    assert_eq!(warm.report.shots_saved, 0);
    assert_eq!(
        warm.distribution.values(),
        cold.distribution.values(),
        "warm reconstruction must be bit-identical to the cold run"
    );
}

/// The two ideal backends above share a fingerprint only because
/// `cache_fingerprint` deliberately ignores the RNG seed (histograms from
/// different seeds are statistically poolable). Pin that contract
/// end-to-end.
#[test]
fn warm_hits_survive_a_different_backend_seed() {
    let (circuit, cut) = workload();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let options = options_with_cache(Some(cache));
    let a = IdealBackend::new(1);
    CutExecutor::new(&a)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    let b = IdealBackend::new(2);
    let warm = CutExecutor::new(&b)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    assert_eq!(warm.report.total_shots, 0);
}

/// `cache: None`, an empty in-memory cache, and the default options all
/// produce bit-identical runs: the `None` path is pinned to pre-cache
/// behavior, and an empty cache only adds lookups that miss.
#[test]
fn no_cache_and_empty_cache_are_bit_identical_to_default() {
    let (circuit, cut) = workload();
    let run = |cache: Option<Arc<WarmCache>>| {
        let backend = IdealBackend::new(55);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &options_with_cache(cache),
            )
            .unwrap()
    };
    let none = run(None);
    let empty = run(Some(Arc::new(WarmCache::open(CacheConfig::in_memory()))));
    assert_eq!(none.distribution.values(), empty.distribution.values());
    assert_eq!(none.report.total_shots, empty.report.total_shots);
    assert_eq!(none.report.jobs_executed, empty.report.jobs_executed);
    assert_eq!(empty.report.cache_shots_reused, 0);
}

/// With dedup off (the ablation baseline) the cache is bypassed entirely:
/// no hits, no reuse, and the delivered result matches the cache-free
/// ablation bit for bit.
#[test]
fn ablation_without_dedup_bypasses_the_cache() {
    let (circuit, cut) = workload();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let run = |cache: Option<Arc<WarmCache>>| {
        let backend = IdealBackend::new(91);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions {
                    shots_per_setting: 2000,
                    dedup: false,
                    cache,
                    ..Default::default()
                },
            )
            .unwrap()
    };
    let with_cache = run(Some(cache.clone()));
    assert_eq!(with_cache.report.cache_hits, 0);
    assert_eq!(with_cache.report.cache_shots_reused, 0);
    assert_eq!(cache.entries(), 0, "nothing may be stored either");
    let without = run(None);
    assert_eq!(
        with_cache.distribution.values(),
        without.distribution.values()
    );
}

/// Histograms gathered on the ideal backend are never served to a noisy
/// run of the same circuits (and vice versa): the backend fingerprint in
/// the cache key partitions the entries.
#[test]
fn ideal_histograms_are_never_served_to_a_noisy_run() {
    let (circuit, cut) = workload();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let options = options_with_cache(Some(cache.clone()));

    let ideal = IdealBackend::new(3);
    CutExecutor::new(&ideal)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    let populated = cache.entries();
    assert!(populated > 0);

    let noisy = qcut::device::presets::ibm_5q(3);
    let noisy_run = CutExecutor::new(&noisy)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    assert_eq!(
        noisy_run.report.cache_shots_reused, 0,
        "ideal entries must not serve a noisy run"
    );
    assert_eq!(noisy_run.report.cache_hits, 0);
    assert!(noisy_run.report.total_shots > 0);
    assert!(
        cache.entries() > populated,
        "the noisy run stores its own entries alongside the ideal ones"
    );

    // And the partition works both ways: a warm ideal rerun still hits
    // only ideal entries.
    let ideal2 = IdealBackend::new(3);
    let warm = CutExecutor::new(&ideal2)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    assert_eq!(warm.report.total_shots, 0);
}

/// A truncated/corrupt cache file degrades to a cold start — the run
/// succeeds, a typed QA403 warning lands in the report diagnostics, and a
/// successful run afterwards persists a loadable cache over it.
#[test]
fn corrupt_cache_file_degrades_to_cold_start_with_diagnostic() {
    let (circuit, cut) = workload();
    let path = std::env::temp_dir().join(format!(
        "qcut-integration-corrupt-{}.qwc",
        std::process::id()
    ));
    std::fs::write(&path, b"definitely not a cache file").unwrap();

    let cache = Arc::new(WarmCache::open(CacheConfig::at_path(&path)));
    let options = options_with_cache(Some(cache));
    let backend = IdealBackend::new(17);
    let run = CutExecutor::new(&backend)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();

    assert_eq!(run.report.cache_shots_reused, 0, "cold start");
    assert!(run.report.total_shots > 0);
    let degraded: Vec<_> = run
        .report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::CacheDegraded)
        .collect();
    assert!(
        !degraded.is_empty(),
        "a degraded cache must surface a QA403 warning: {:?}",
        run.report.diagnostics
    );
    assert!(degraded.iter().all(|d| d.severity == Severity::Warn));

    // The run stored + persisted over the corpse: reopening now warm-hits.
    let reopened = Arc::new(WarmCache::open(CacheConfig::at_path(&path)));
    assert!(
        reopened.entries() > 0,
        "persist must have replaced the file"
    );
    let backend2 = IdealBackend::new(18);
    let warm = CutExecutor::new(&backend2)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &options_with_cache(Some(reopened)),
        )
        .unwrap();
    assert_eq!(warm.report.total_shots, 0);
    assert!(warm
        .report
        .diagnostics
        .iter()
        .all(|d| d.code != LintCode::CacheDegraded));
    std::fs::remove_file(&path).ok();
}

/// The adaptive policy treats cached histograms as a free pilot: on a
/// warm rerun the pilot round executes nothing, only the refine
/// increments run, and the shot invariant holds with the cache term.
#[test]
fn adaptive_warm_rerun_gets_a_free_pilot() {
    let (circuit, cut) = workload();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let options = ExecutionOptions {
        allocation: Some(ShotAllocation::Adaptive {
            pilot_fraction: 0.2,
            total: 60_000,
        }),
        cache: Some(cache),
        ..Default::default()
    };
    let backend = IdealBackend::new(23);
    let cold = CutExecutor::new(&backend)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    assert!(cold.report.pilot_shots > 0);

    let backend2 = IdealBackend::new(24);
    let warm = CutExecutor::new(&backend2)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    assert_eq!(warm.report.pilot_shots, 0, "the cache pays for the pilot");
    assert!(warm.report.cache_shots_reused > 0);
    assert_eq!(warm.report.rounds, 2);
    assert_eq!(
        warm.report.shots_requested,
        warm.report.detection_shots
            + warm.report.pilot_shots
            + warm.report.total_shots
            + warm.report.shots_saved
            + warm.report.cache_shots_reused,
        "exact accounting with the cache term"
    );
}
