//! Integration tests of the golden-point machinery across crates:
//! detection policies agree, the reduction accounting matches the paper,
//! and neglect is *sound* (only applied when truly negligible).

use qcut::cutting::basis::BasisPlan;
use qcut::cutting::golden::{ExactDetector, OnlineConfig};
use qcut::cutting::reconstruction::exact_upstream_tensor;
use qcut::prelude::*;

#[test]
fn all_policies_agree_on_the_golden_ansatz() {
    let (circuit, cut) = GoldenAnsatz::new(5, 61).build();
    let backend = IdealBackend::new(14);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 15_000,
        ..Default::default()
    };

    let known = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &options,
        )
        .unwrap();
    let detected = executor
        .run(&circuit, &cut, GoldenPolicy::detect_exact(), &options)
        .unwrap();
    let online = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::DetectOnline(OnlineConfig {
                epsilon: 0.08,
                batch_shots: 4000,
                ..OnlineConfig::default()
            }),
            &options,
        )
        .unwrap();

    for run in [&known, &detected, &online] {
        assert!(run.report.neglected[0].contains(&Pauli::Y));
        assert_eq!(run.report.upstream_settings, 2);
        assert_eq!(run.report.downstream_settings, 4);
    }
    // Exact detection may additionally find nothing else; online only
    // tests Y. All three agree on the distribution within shot noise.
    let d1 = total_variation_distance(&known.distribution, &detected.distribution);
    let d2 = total_variation_distance(&known.distribution, &online.distribution);
    assert!(d1 < 0.06 && d2 < 0.06, "policies disagree: {d1}, {d2}");
}

#[test]
fn paper_reduction_accounting_single_cut() {
    // The three §II-B headline numbers for one golden cut.
    let standard = BasisPlan::standard(1);
    let golden = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
    // Settings: 9 -> 6 (33% fewer subcircuit executions).
    assert_eq!(standard.total_settings(), 9);
    assert_eq!(golden.total_settings(), 6);
    // Terms: 16 -> 12 in the Eq. 7 sum (4 -> 3 Pauli strings × 4 sign
    // combinations).
    assert_eq!(standard.all_recon_strings().len() * 4, 16);
    assert_eq!(golden.all_recon_strings().len() * 4, 12);
}

#[test]
fn detector_tolerance_is_respected() {
    // A slightly-leaky circuit: Y coefficient ~ sin(leak) ≈ leak. The
    // detector must accept it under a loose tolerance and reject it under
    // a strict one.
    let mut c = Circuit::new(3);
    c.ry(0.9, 0).ry(1.1, 1).cx(0, 1).rx(0.05, 1).cx(1, 2);
    let spec = CutSpec::single(1, 2);
    let frags = Fragmenter::fragment(&c, &spec).unwrap();

    let up = exact_upstream_tensor(&frags.upstream, &BasisPlan::standard(1));
    let leak = up.max_abs(&[Pauli::Y]);
    assert!(leak > 1e-4 && leak < 0.1, "leak magnitude {leak}");

    let strict = ExactDetector {
        tolerance: leak / 2.0,
    };
    assert!(!strict.detect(&frags.upstream, 1).neglected()[0].contains(&Pauli::Y));
    let loose = ExactDetector {
        tolerance: leak * 2.0,
    };
    assert!(loose.detect(&frags.upstream, 1).neglected()[0].contains(&Pauli::Y));
}

#[test]
fn neglecting_a_leaky_basis_biases_the_answer() {
    // Companion to the tolerance test: if one *does* neglect a leaky
    // basis, the reconstruction picks up a bias of the same order.
    use qcut::cutting::reconstruction::exact_reconstruct;
    let mut c = Circuit::new(3);
    c.ry(0.9, 0).ry(1.1, 1).cx(0, 1).rx(0.4, 1);
    c.rx(std::f64::consts::FRAC_PI_2, 1).cx(1, 2).h(2);
    let spec = CutSpec::single(1, 2);
    let frags = Fragmenter::fragment(&c, &spec).unwrap();
    let truth = Distribution::from_values(3, StateVector::from_circuit(&c).probabilities());
    let exact = exact_reconstruct(&frags, &BasisPlan::standard(1));
    assert!(total_variation_distance(&exact, &truth) < 1e-9);
    let biased = exact_reconstruct(&frags, &BasisPlan::with_neglected(vec![Some(Pauli::Y)]));
    let bias = total_variation_distance(&biased, &truth);
    assert!(bias > 1e-3, "expected visible bias, got {bias}");
}

#[test]
fn online_detection_error_budget() {
    // With epsilon well above the leak, online detection accepts quickly;
    // the resulting bias stays below epsilon-order.
    let (circuit, cut) = GoldenAnsatz::new(5, 97).build();
    let backend = IdealBackend::new(23);
    let executor = CutExecutor::new(&backend);
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::DetectOnline(OnlineConfig {
                epsilon: 0.1,
                batch_shots: 2000,
                max_shots: 40_000,
                ..OnlineConfig::default()
            }),
            &ExecutionOptions {
                shots_per_setting: 15_000,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(run.report.detection_shots > 0);
    assert!(run.report.detection_seconds >= 0.0);
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let d = total_variation_distance(&run.distribution, &truth);
    assert!(d < 0.08, "online-run distribution off by {d}");
}

#[test]
fn doubly_golden_bell_cut_runs_end_to_end() {
    // Bell upstream: both X and Y negligible; only 3 subcircuits remain
    // (1 measurement setting + 2 preparations).
    let mut u12 = Circuit::new(2);
    u12.h(1).cx(1, 0);
    let mut u23 = Circuit::new(2);
    u23.ry(0.8, 0).cx(0, 1).h(1);
    let (circuit, cut) = three_qubit_example(&u12, &u23);

    let backend = IdealBackend::new(31);
    let executor = CutExecutor::new(&backend);
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::detect_exact(),
            &ExecutionOptions {
                shots_per_setting: 30_000,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(run.report.subcircuits_executed, 3);
    assert_eq!(run.report.neglected[0].len(), 2);
    let truth = Distribution::from_values(3, StateVector::from_circuit(&circuit).probabilities());
    let d = total_variation_distance(&run.distribution, &truth);
    assert!(d < 0.05, "doubly-golden run off by {d}");
}

#[test]
fn prove_static_is_free_and_bit_identical_to_the_oracle() {
    // Clifford upstream: the stabilizer dataflow pass proves the golden
    // bases symbolically — no detection shots, no detection simulation —
    // and the run is bit-identical to an a-priori oracle handed the same
    // bases with an equally-seeded backend.
    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).s(0).h(2).cz(1, 2);
    let pos = c.instructions().iter().filter(|i| i.acts_on(2)).count() - 1;
    c.cx(2, 3).ry(0.7, 3);
    let cut = CutSpec::single(2, pos);

    let frags = Fragmenter::fragment(&c, &cut).unwrap();
    let proven = prove_golden_bases(&frags.upstream, 1);
    assert!(!proven[0].is_empty(), "workload must have provable bases");

    let options = ExecutionOptions {
        shots_per_setting: 8192,
        ..Default::default()
    };
    let run = |policy| {
        let backend = IdealBackend::new(911);
        CutExecutor::new(&backend)
            .run(&c, &cut, policy, &options)
            .unwrap()
    };
    let static_run = run(GoldenPolicy::ProveStatic);
    let oracle = run(GoldenPolicy::KnownAPriori(
        static_run.report.neglected[0]
            .iter()
            .map(|p| (0, *p))
            .collect(),
    ));

    assert_eq!(static_run.report.detection_shots, 0);
    assert_eq!(static_run.report.neglected, oracle.report.neglected);
    assert_eq!(
        static_run.distribution.values(),
        oracle.distribution.values()
    );
    assert_eq!(static_run.report.total_shots, oracle.report.total_shots);
    let truth = Distribution::from_values(4, StateVector::from_circuit(&c).probabilities());
    let d = total_variation_distance(&static_run.distribution, &truth);
    assert!(d < 0.05, "statically-proven run off by {d}");
}
