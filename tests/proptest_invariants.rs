//! Property-based tests over the workspace's core invariants.
//!
//! The headline property is the wire-cutting identity itself: for *any*
//! circuit from the cuttable family and *any* valid cut, the exact
//! reconstruction equals the uncut distribution — standard plan and
//! golden plan alike (on designed-golden circuits).

use proptest::prelude::*;
use qcut::circuit::ansatz::MultiCutAnsatz;
use qcut::circuit::random::{random_circuit_with, random_real_circuit_with, RandomCircuitConfig};
use qcut::cutting::basis::BasisPlan;
use qcut::cutting::jobgraph::{Channel, JobGraph};
use qcut::cutting::reconstruction::{exact_reconstruct, exact_upstream_tensor};
use qcut::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random cuttable circuit: upstream block on qubits `0..=cut`, downstream
/// on `cut..n`, single cut on the shared wire. Entangling chains keep each
/// side connected. `real_upstream` decides whether the cut is designed
/// golden.
fn cuttable_circuit(
    n: usize,
    cut_qubit: usize,
    seed: u64,
    depth: usize,
    real_upstream: bool,
) -> (Circuit, CutSpec) {
    assert!(cut_qubit >= 1 && cut_qubit < n - 1 || n == 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let up: Vec<usize> = (0..=cut_qubit).collect();
    let down: Vec<usize> = (cut_qubit..n).collect();
    let cfg = RandomCircuitConfig {
        depth,
        two_qubit_prob: 0.5,
    };

    for w in up.windows(2) {
        c.cx(w[0], w[1]);
    }
    if up.len() == 1 {
        c.ry(1.3, up[0]);
    }
    let u1 = if real_upstream {
        random_real_circuit_with(up.len(), cfg, &mut rng)
    } else {
        random_circuit_with(up.len(), cfg, &mut rng)
    };
    c.extend_mapped(&u1, &up);
    let cut_pos = c
        .instructions()
        .iter()
        .filter(|i| i.acts_on(cut_qubit))
        .count()
        - 1;
    for w in down.windows(2) {
        c.cx(w[0], w[1]);
    }
    if down.len() == 1 {
        c.ry(0.7, down[0]);
    }
    let u2 = random_circuit_with(down.len(), cfg, &mut rng);
    c.extend_mapped(&u2, &down);
    (c, CutSpec::single(cut_qubit, cut_pos))
}

/// A random *Clifford* cuttable circuit with the same layout as
/// [`cuttable_circuit`]: entangling chains keep each side connected, the
/// cut sits after the last upstream touch of the cut wire. On Clifford
/// upstream fragments the stabilizer prover is complete, so
/// `proven_plan` must reproduce `ExactDetector` exactly.
fn clifford_cuttable_circuit(
    n: usize,
    cut_qubit: usize,
    seed: u64,
    depth: usize,
) -> (Circuit, CutSpec) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let up: Vec<usize> = (0..=cut_qubit).collect();
    let down: Vec<usize> = (cut_qubit..n).collect();
    for w in up.windows(2) {
        c.cx(w[0], w[1]);
    }
    random_clifford_block(&mut c, &up, depth, &mut rng);
    let cut_pos = c
        .instructions()
        .iter()
        .filter(|i| i.acts_on(cut_qubit))
        .count()
        - 1;
    for w in down.windows(2) {
        c.cx(w[0], w[1]);
    }
    random_clifford_block(&mut c, &down, depth, &mut rng);
    (c, CutSpec::single(cut_qubit, cut_pos))
}

/// Appends `depth * qubits.len()` random gates drawn from the Clifford
/// alphabet {H, S, S†, X, Y, Z, √X, CX, CZ, CY, SWAP} on `qubits`.
fn random_clifford_block(c: &mut Circuit, qubits: &[usize], depth: usize, rng: &mut StdRng) {
    use rand::Rng;
    for _ in 0..depth * qubits.len() {
        if qubits.len() >= 2 && rng.gen_bool(0.4) {
            let a = qubits[rng.gen_range(0..qubits.len())];
            let mut b = a;
            while b == a {
                b = qubits[rng.gen_range(0..qubits.len())];
            }
            match rng.gen_range(0..4) {
                0 => c.cx(a, b),
                1 => c.cz(a, b),
                2 => c.push(Gate::Cy, &[a, b]),
                _ => c.swap(a, b),
            };
        } else {
            let q = qubits[rng.gen_range(0..qubits.len())];
            match rng.gen_range(0..7) {
                0 => c.h(q),
                1 => c.s(q),
                2 => c.sdg(q),
                3 => c.x(q),
                4 => c.y(q),
                5 => c.z(q),
                _ => c.push(Gate::Sx, &[q]),
            };
        }
    }
}

fn truth_of(circuit: &Circuit) -> Distribution {
    Distribution::from_values(
        circuit.num_qubits(),
        StateVector::from_circuit(circuit).probabilities(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The wire-cutting identity holds for arbitrary circuits and cut
    /// positions (paper Eq. 13): exact reconstruction == uncut
    /// distribution.
    #[test]
    fn cutting_identity_holds(
        n in 3usize..7,
        cut_frac in 1usize..5,
        seed in 0u64..5000,
        depth in 1usize..4,
    ) {
        let cut_qubit = 1 + (cut_frac * (n - 2)) / 5;
        let (circuit, cut) = cuttable_circuit(n, cut_qubit.min(n - 2).max(1), seed, depth, false);
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let recon = exact_reconstruct(&frags, &BasisPlan::standard(1));
        let d = total_variation_distance(&recon, &truth_of(&circuit));
        prop_assert!(d < 1e-8, "TVD {d} for n={n}, cut={cut_qubit}, seed={seed}");
    }

    /// Real upstream blocks make Y negligible — always, not just for the
    /// seeds the unit tests happen to use.
    #[test]
    fn real_upstream_is_golden_for_y(
        n in 3usize..7,
        seed in 0u64..5000,
        depth in 1usize..4,
    ) {
        let cut_qubit = (n / 2).max(1);
        let (circuit, cut) = cuttable_circuit(n, cut_qubit, seed, depth, true);
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let up = exact_upstream_tensor(&frags.upstream, &BasisPlan::standard(1));
        prop_assert!(
            up.max_abs(&[Pauli::Y]) < 1e-9,
            "Y coefficient {} on a real upstream (seed {seed})",
            up.max_abs(&[Pauli::Y])
        );
        // And the golden reconstruction is exact.
        let recon = exact_reconstruct(&frags, &BasisPlan::with_neglected(vec![Some(Pauli::Y)]));
        let d = total_variation_distance(&recon, &truth_of(&circuit));
        prop_assert!(d < 1e-8, "golden TVD {d}");
    }

    /// The reconstructed quasi-distribution always has unit total mass
    /// (the I⊗…⊗I term carries the normalisation) even from finite shots.
    #[test]
    fn reconstruction_mass_is_one(seed in 0u64..2000) {
        let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let plan = BasisPlan::standard(1);
        let experiment = qcut::cutting::tomography::ExperimentPlan::build(&frags, &plan);
        let backend = IdealBackend::new(seed);
        let data = qcut::cutting::execution::gather(&backend, &experiment, 256, true).unwrap();
        let recon = qcut::cutting::reconstruction::reconstruct(&frags, &plan, &data);
        prop_assert!(
            (recon.total_mass() - 1.0).abs() < 1e-9,
            "mass {}", recon.total_mass()
        );
    }

    /// Multi-cut ansatz: identity holds for K cuts, golden plan included.
    #[test]
    fn multi_cut_identity(k in 1usize..3, seed in 0u64..1000) {
        let (circuit, cut) = MultiCutAnsatz::new(k, seed).build();
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let standard = exact_reconstruct(&frags, &BasisPlan::standard(k));
        let t = truth_of(&circuit);
        prop_assert!(total_variation_distance(&standard, &t) < 1e-8);
        let golden = exact_reconstruct(
            &frags,
            &BasisPlan::with_neglected(vec![Some(Pauli::Y); k]),
        );
        prop_assert!(total_variation_distance(&golden, &t) < 1e-8);
    }

    /// Distribution post-processing: clipping and simplex projection both
    /// produce proper distributions from arbitrary quasi-distributions.
    #[test]
    fn postprocessing_produces_proper_distributions(
        values in proptest::collection::vec(-0.5f64..1.5, 8),
    ) {
        let d = Distribution::from_values(3, values);
        let clipped = d.clip_renormalize();
        prop_assert!(clipped.is_proper(1e-9));
        let projected = d.project_to_simplex();
        prop_assert!(projected.is_proper(1e-9));
    }

    /// Weighted distance (Eq. 17) is a nonnegative divergence: zero iff the
    /// distributions agree on the support of the truth.
    #[test]
    fn weighted_distance_nonnegative(
        p_raw in proptest::collection::vec(0.0f64..1.0, 8),
        q_raw in proptest::collection::vec(0.01f64..1.0, 8),
    ) {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            Distribution::from_values(3, v.iter().map(|x| x / s).collect())
        };
        let p = norm(&p_raw);
        let q = norm(&q_raw);
        prop_assert!(weighted_distance(&p, &q) >= 0.0);
        prop_assert!(weighted_distance(&q, &q) == 0.0);
    }

    /// Counts: splitting into two bit groups preserves the total and the
    /// marginals match direct extraction.
    #[test]
    fn counts_split_consistency(
        pairs in proptest::collection::vec((0u64..32, 1u64..50), 1..20),
    ) {
        let counts = Counts::from_pairs(5, pairs);
        let joint = counts.split(&[0, 2], &[1, 3, 4]);
        let total: u64 = joint.values().sum();
        prop_assert_eq!(total, counts.total());
        // Marginal over group A from the split equals the direct marginal.
        let mut from_split = std::collections::HashMap::new();
        for ((a, _), n) in &joint {
            *from_split.entry(*a).or_insert(0u64) += n;
        }
        let direct = counts.marginal(&[0, 2]);
        for (bits, n) in from_split {
            prop_assert_eq!(n, direct.get(bits));
        }
    }

    /// On Clifford upstream fragments the stabilizer prover is *complete*:
    /// `proven_plan` derives symbolically exactly the plan `ExactDetector`
    /// finds by simulation — it never proves a basis whose coefficient is
    /// nonzero, and it never misses one that is identically zero. The
    /// proven plan also reconstructs exactly.
    #[test]
    fn prove_static_is_exact_on_clifford_upstreams(
        n in 3usize..6,
        seed in 0u64..5000,
        depth in 1usize..4,
    ) {
        let cut_qubit = (n / 2).max(1);
        let (circuit, cut) = clifford_cuttable_circuit(n, cut_qubit, seed, depth);
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let proven = proven_plan(&frags.upstream, 1);
        let detected = ExactDetector::default().detect(&frags.upstream, 1);
        prop_assert_eq!(&proven, &detected, "seed {}", seed);
        // Soundness against ground truth: every proven basis has an
        // exactly-zero upstream coefficient family.
        let up = exact_upstream_tensor(&frags.upstream, &BasisPlan::standard(1));
        for p in &proven.neglected()[0] {
            prop_assert!(
                up.max_abs(&[*p]) < 1e-9,
                "proved {:?} but |A| = {} (seed {})", p, up.max_abs(&[*p]), seed
            );
        }
        let recon = exact_reconstruct(&frags, &proven);
        let d = total_variation_distance(&recon, &truth_of(&circuit));
        prop_assert!(d < 1e-8, "proven-plan TVD {d} (seed {seed})");
    }

    /// Random circuits preserve state norm (simulator unitarity).
    #[test]
    fn simulator_preserves_norm(n in 1usize..7, seed in 0u64..3000, depth in 1usize..6) {
        let c = random_circuit(n, RandomCircuitConfig { depth, two_qubit_prob: 0.5 }, seed);
        let sv = StateVector::from_circuit(&c);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Appending gates never shortens a circuit's critical path: the
    /// timing model the pool's load-balancing placement relies on is
    /// monotone in circuit growth (and non-negative).
    #[test]
    fn circuit_duration_is_monotone_under_appended_gates(
        n in 1usize..5,
        depth in 1usize..6,
        seed in 0u64..3000,
        extra in 1usize..6,
    ) {
        let base = random_circuit(n, RandomCircuitConfig { depth, two_qubit_prob: 0.5 }, seed);
        let mut longer = base.clone();
        for i in 0..extra {
            longer.h(i % n);
        }
        for t in [
            TimingModel::ibm_like(),
            TimingModel { gate_1q: 4e-8, gate_2q: 6e-7, readout: 2e-6, rep_delay: 1e-4, job_overhead: 0.5 },
        ] {
            let short = t.circuit_duration(&base);
            let long = t.circuit_duration(&longer);
            prop_assert!(short >= 0.0);
            prop_assert!(long >= short, "appending gates shortened {short} -> {long}");
        }
    }

    /// `job_duration` is affine in the shot count — overhead plus a
    /// per-shot slope — which is what makes the greedy least-loaded
    /// placement's accumulated-load bookkeeping additive.
    #[test]
    fn job_duration_is_affine_in_shots(
        seed in 0u64..3000,
        a in 1u64..10_000,
        b in 1u64..10_000,
        rep_delay in 0.0f64..1e-3,
        job_overhead in 0.0f64..2.0,
    ) {
        let c = random_circuit(3, RandomCircuitConfig { depth: 3, two_qubit_prob: 0.5 }, seed);
        let t = TimingModel {
            gate_1q: 35e-9,
            gate_2q: 300e-9,
            readout: 5e-6,
            rep_delay,
            job_overhead,
        };
        let f0 = t.job_duration(&c, 0);
        prop_assert!((f0 - t.job_overhead).abs() < 1e-12, "zero shots cost exactly the overhead");
        let fa = t.job_duration(&c, a);
        let fb = t.job_duration(&c, b);
        let fab = t.job_duration(&c, a + b);
        // Affinity: f(a+b) = f(a) + f(b) - f(0).
        prop_assert!((fab - (fa + fb - f0)).abs() <= 1e-9 * fab.max(1.0), "f({a}+{b}) = {fab}, f({a})+f({b})-f(0) = {}", fa + fb - f0);
        // The slope is non-negative: more shots never run faster.
        prop_assert!(fa >= f0 && fab >= fa.max(fb));
    }
}

// JobGraph engine invariants: full pipeline runs, so fewer cases with a
// small shot budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The engine's structural dedup never changes the reconstruction:
    /// with equally-seeded fresh backends, dedup on and off produce
    /// bit-identical distributions (tomography plans are duplicate-free, so
    /// the executed job stream must be untouched by the hashing, node
    /// merging, and fan-out machinery).
    #[test]
    fn dedup_never_changes_reconstruction(seed in 0u64..2000) {
        let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
        let policy = if seed % 2 == 0 {
            GoldenPolicy::Disabled
        } else {
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)])
        };
        let run = |dedup: bool| {
            let backend = IdealBackend::new(seed ^ 0xD5);
            CutExecutor::new(&backend)
                .run(
                    &circuit,
                    &cut,
                    policy.clone(),
                    &ExecutionOptions { shots_per_setting: 256, dedup, ..Default::default() },
                )
                .unwrap()
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on.distribution.values(), off.distribution.values());
        prop_assert_eq!(on.report.jobs_executed, off.report.jobs_executed);
        prop_assert_eq!(on.report.shots_saved, 0);
    }

    /// Batched (parallel) execution is bit-identical to the sequential
    /// path for both downstream schemes — the backends assign per-job RNG
    /// streams by batch position, not scheduling order.
    #[test]
    fn batched_execution_equals_sequential(seed in 0u64..2000) {
        let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
        let method = if seed % 2 == 0 {
            ReconstructionMethod::Eigenstate
        } else {
            ReconstructionMethod::Sic
        };
        let run = |parallel: bool| {
            let backend = IdealBackend::new(seed.wrapping_mul(31) ^ 7);
            CutExecutor::new(&backend)
                .run(
                    &circuit,
                    &cut,
                    GoldenPolicy::Disabled,
                    &ExecutionOptions {
                        shots_per_setting: 256,
                        method,
                        parallel,
                        ..Default::default()
                    },
                )
                .unwrap()
        };
        prop_assert_eq!(run(true).distribution.values(), run(false).distribution.values());
    }

    /// `GoldenPolicy::ProveStatic` resolves its plan symbolically — zero
    /// detection shots — and, because the golden-ansatz upstream is real,
    /// the real-component argument proves Y, so the run is bit-identical
    /// to a `KnownAPriori` oracle handed the same basis at equal budget.
    #[test]
    fn prove_static_runs_bit_identical_to_the_oracle(seed in 0u64..2000) {
        let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
        let run = |policy: GoldenPolicy| {
            let backend = IdealBackend::new(seed ^ 0x5A);
            CutExecutor::new(&backend)
                .run(
                    &circuit,
                    &cut,
                    policy,
                    &ExecutionOptions { shots_per_setting: 256, ..Default::default() },
                )
                .unwrap()
        };
        let proven = run(GoldenPolicy::ProveStatic);
        let oracle = run(GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]));
        prop_assert_eq!(proven.report.detection_shots, 0);
        prop_assert_eq!(&proven.report.neglected, &oracle.report.neglected);
        prop_assert_eq!(proven.distribution.values(), oracle.distribution.values());
        prop_assert_eq!(proven.report.total_shots, oracle.report.total_shots);
    }

    /// Transient faults that retries outlast are invisible: a backend
    /// failing every job's first `fails` submissions under
    /// `max_attempts > fails` produces a bit-identical run to the
    /// fault-free backend — across both downstream schemes and with a
    /// warm-start cache attached (a retried node must seed the cache the
    /// same bytes a clean one does).
    #[test]
    fn retries_recover_bit_identically(seed in 0u64..2000, fails in 1u32..3) {
        use std::sync::Arc;
        let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
        let method = if seed % 2 == 0 {
            ReconstructionMethod::Eigenstate
        } else {
            ReconstructionMethod::Sic
        };
        let with_cache = seed % 3 == 0;
        let run = |flaky: bool| {
            let inner = IdealBackend::new(seed ^ 0xFA);
            let opts = ExecutionOptions {
                shots_per_setting: 256,
                method,
                retry: RetryPolicy::with_attempts(fails + 1),
                cache: with_cache
                    .then(|| Arc::new(WarmCache::open(CacheConfig::in_memory()))),
                ..Default::default()
            };
            if flaky {
                let backend = FaultInjectingBackend::new(inner).fail_first(fails);
                CutExecutor::new(&backend)
                    .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
                    .unwrap()
            } else {
                CutExecutor::new(&inner)
                    .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
                    .unwrap()
            }
        };
        let recovered = run(true);
        let clean = run(false);
        prop_assert_eq!(recovered.distribution.values(), clean.distribution.values());
        prop_assert_eq!(recovered.report.total_shots, clean.report.total_shots);
        prop_assert_eq!(recovered.report.shots_lost, 0);
        prop_assert!(!recovered.report.degraded);
        prop_assert!(recovered.report.jobs_retried > 0);
        prop_assert_eq!(clean.report.jobs_retried, 0);
    }

    /// Wrapping any backend — ideal or noisy — in a single-member pool is
    /// invisible to the full pipeline: bit-identical distribution and shot
    /// accounting, plus the pool's (trivial) member itemisation.
    #[test]
    fn single_member_pool_pipeline_is_bit_identical(seed in 0u64..2000) {
        let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
        let noisy = seed % 2 == 1;
        let member = |s: u64| -> Box<dyn Backend> {
            if noisy {
                Box::new(presets::ibm_5q(s))
            } else {
                Box::new(IdealBackend::new(s))
            }
        };
        let opts = ExecutionOptions { shots_per_setting: 256, ..Default::default() };
        let bare = member(seed ^ 0x91);
        let bare_run = CutExecutor::new(bare.as_ref())
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();
        let pool = BackendPool::new(PlacementPolicy::RoundRobin).with_member(member(seed ^ 0x91));
        let pool_run = CutExecutor::new(&pool)
            .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
            .unwrap();
        prop_assert_eq!(pool_run.distribution.values(), bare_run.distribution.values());
        prop_assert_eq!(pool_run.report.total_shots, bare_run.report.total_shots);
        prop_assert_eq!(pool_run.report.jobs_executed, bare_run.report.jobs_executed);
        prop_assert_eq!(
            pool_run.report.jobs_per_member.iter().sum::<u64>(),
            pool_run.report.jobs_executed as u64
        );
    }

    /// Same-round sibling failover is bit-identical to never having
    /// faulted: a pool whose pinned member transiently drops one node is
    /// indistinguishable from a fault-free pool that pinned that node to
    /// the sibling outright — the sibling sees the identical batch at the
    /// identical seed-counter base. Holds over ideal and noisy members
    /// and any failing-node position.
    #[test]
    fn pool_failover_is_bit_identical_to_the_fault_free_reference(
        seed in 0u64..2000,
        k in 2usize..5,
        p_raw in 0usize..5,
        noisy_raw in 0u8..2,
    ) {
        let p = p_raw % k;
        let noisy = noisy_raw == 1;
        // k structurally distinct 3-qubit circuits (distinct rotation
        // angles), so node order is exactly insertion order.
        let nodes: Vec<Circuit> = (0..k)
            .map(|i| {
                let mut c = Circuit::new(3);
                c.h(0).cx(0, 1).rz(0.1 + i as f64 * 0.37, 2);
                c
            })
            .collect();
        let member = |s: u64| -> Box<dyn Backend> {
            if noisy {
                Box::new(presets::ibm_5q(s))
            } else {
                Box::new(IdealBackend::new(s))
            }
        };
        let build = |nodes: &[Circuit]| {
            let mut g = JobGraph::new();
            for (i, c) in nodes.iter().enumerate() {
                g.add_job(c.clone(), (Channel::UpstreamMeas, i as u64), 200 + i as u64);
            }
            g
        };

        // Everything pins to member 0, which fails node p once: the
        // engine must hand node p to sibling 1 within the round.
        let faulty = BackendPool::new(PlacementPolicy::Pinned(vec![0]))
            .with_backend(FaultInjectingBackend::new(member(seed)).fail_circuit(&nodes[p], 1))
            .with_member(member(seed ^ 0xBEEF));
        let run = build(&nodes).execute(&faulty, true).unwrap();
        prop_assert_eq!(run.stats.jobs_failed_over, 1);
        prop_assert_eq!(run.stats.shots_lost, 0);

        // Fault-free reference: node p pinned to member 1 outright.
        let pins: Vec<usize> = (0..k).map(|i| usize::from(i == p)).collect();
        let reference = BackendPool::new(PlacementPolicy::Pinned(pins))
            .with_member(member(seed))
            .with_member(member(seed ^ 0xBEEF));
        let want = build(&nodes).execute(&reference, true).unwrap();
        prop_assert_eq!(want.stats.jobs_failed_over, 0);
        for i in 0..k as u64 {
            prop_assert_eq!(
                run.counts(&(Channel::UpstreamMeas, i)),
                want.counts(&(Channel::UpstreamMeas, i)),
                "node {} differs (failing node {})", i, p
            );
        }
        prop_assert_eq!(run.stats.shots_executed, want.stats.shots_executed);
        prop_assert_eq!(run.stats.jobs_per_member, want.stats.jobs_per_member);
    }
}
