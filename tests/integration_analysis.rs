//! Integration tests of the static-analysis subsystem (ISSUE 6): one
//! firing and one non-firing test per lint code, the example-workload
//! sweep, and the deny-before-any-shot pipeline contract.

use qcut::circuit::ansatz::MultiCutAnsatz;
use qcut::circuit::circuit::Instruction;
use qcut::cutting::analysis::{
    analyze, lint_graph, registry, AnalysisConfig, Diagnostics, Layer, LintCode, Severity,
};
use qcut::cutting::error::PipelineError;
use qcut::cutting::jobgraph::{Channel, JobGraph};
use qcut::device::backend::{Backend, BackendError, ExecutionResult};
use qcut::device::timing::TimingModel;
use qcut::prelude::*;
use std::f64::consts::PI;

fn default_options() -> ExecutionOptions {
    ExecutionOptions::default()
}

/// Options whose analysis config promotes `code` to Warn so its
/// (default-Allow) findings become observable.
fn promoting(code: LintCode) -> ExecutionOptions {
    ExecutionOptions {
        analysis: AnalysisConfig::default().with_override(code, Severity::Warn),
        ..Default::default()
    }
}

/// A 2-qubit workload with one valid cut on qubit 0 whose upstream is NOT
/// real (contains an S gate): the deterministic QA103 negative control.
fn non_real_upstream_workload() -> (Circuit, CutSpec) {
    let mut c = Circuit::new(2);
    c.h(0);
    c.s(0);
    // Cut after the 2nd gate touching qubit 0 (position 1), then hand the
    // wire downstream.
    c.cx(0, 1);
    c.h(1);
    (c, CutSpec::single(0, 1))
}

fn count(diags: &Diagnostics, code: LintCode) -> usize {
    diags.iter().filter(|d| d.code == code).count()
}

// ---------------------------------------------------------------------
// QA001 OutOfRangeOperand
// ---------------------------------------------------------------------

#[test]
fn qa001_fires_on_malformed_instruction_stream() {
    let circuit = Circuit::from_instructions_unchecked(
        2,
        vec![
            Instruction {
                gate: Gate::H,
                qubits: vec![7],
            },
            Instruction {
                gate: Gate::Cx,
                qubits: vec![0, 0],
            },
        ],
    );
    let diags = analyze(&circuit, &CutSpec::single(0, 0), &default_options());
    assert_eq!(count(&diags, LintCode::OutOfRangeOperand), 2);
    assert!(diags.has_deny());
    // Malformed IR stops the descent: no deeper-layer findings at all.
    assert!(!diags.contains(LintCode::InvalidCut));
}

#[test]
fn qa001_silent_on_validated_circuits() {
    let (circuit, cut) = GoldenAnsatz::new(5, 11).build();
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::OutOfRangeOperand));
}

// ---------------------------------------------------------------------
// QA002 IdleQubit
// ---------------------------------------------------------------------

#[test]
fn qa002_fires_on_untouched_qubit() {
    let mut c = Circuit::new(3);
    c.h(0);
    c.cx(0, 1); // qubit 2 never touched
    let diags = analyze(&c, &CutSpec::single(0, 0), &default_options());
    assert_eq!(count(&diags, LintCode::IdleQubit), 1);
    let warn = diags
        .iter()
        .find(|d| d.code == LintCode::IdleQubit)
        .expect("just counted");
    assert_eq!(warn.severity, Severity::Warn);
    assert!(warn.message.contains("[2]"), "names the qubit: {warn}");
    // Fragmenting independently rejects idle qubits, so the deny (QA101)
    // rides along.
    assert!(diags.contains(LintCode::InvalidCut));
}

#[test]
fn qa002_silent_when_every_qubit_is_active() {
    let (circuit, cut) = GoldenAnsatz::new(5, 12).build();
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::IdleQubit));
}

// ---------------------------------------------------------------------
// QA003 IdentityGate
// ---------------------------------------------------------------------

#[test]
fn qa003_fires_on_identity_angle_rotations() {
    let (mut circuit, cut) = GoldenAnsatz::new(5, 13).build();
    circuit.rz(0.0, 0);
    circuit.rx(2.0 * PI, 1); // identity up to global phase
    let diags = analyze(&circuit, &cut, &default_options());
    assert_eq!(count(&diags, LintCode::IdentityGate), 2);
    assert!(!diags.has_deny(), "QA003 is warn-level");
}

#[test]
fn qa003_silent_on_effective_rotations() {
    let (mut circuit, cut) = GoldenAnsatz::new(5, 14).build();
    circuit.rz(1.0, 0);
    circuit.push(Gate::Crz(2.0 * PI), &[0, 1]); // controlled: -I block, NOT identity
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::IdentityGate));
}

// ---------------------------------------------------------------------
// QA004 FusibleAdjacent (default Allow)
// ---------------------------------------------------------------------

#[test]
fn qa004_fires_on_adjacent_cancelling_pair_when_promoted() {
    let (mut circuit, cut) = GoldenAnsatz::new(5, 15).build();
    circuit.h(0);
    circuit.h(0); // adjoint pair
    circuit.rz(0.3, 1);
    circuit.rz(0.4, 1); // same-axis mergeable pair
    let diags = analyze(&circuit, &cut, &promoting(LintCode::FusibleAdjacent));
    assert!(count(&diags, LintCode::FusibleAdjacent) >= 2);
}

#[test]
fn qa004_is_allow_by_default_and_skips_separated_gates() {
    let (mut circuit, cut) = GoldenAnsatz::new(5, 15).build();
    circuit.h(0);
    circuit.h(0);
    // Allow-level findings are suppressed entirely by default.
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::FusibleAdjacent));

    // And with promotion, a gate acting between the pair defuses it.
    let mut c2 = Circuit::new(2);
    c2.h(0);
    c2.x(0);
    c2.h(0); // H X H is not fusible pairwise
    c2.cx(0, 1);
    let diags = analyze(
        &c2,
        &CutSpec::single(0, 2),
        &promoting(LintCode::FusibleAdjacent),
    );
    assert!(!diags.contains(LintCode::FusibleAdjacent));
}

// ---------------------------------------------------------------------
// QA101 InvalidCut
// ---------------------------------------------------------------------

#[test]
fn qa101_fires_on_out_of_range_cut_position() {
    let (circuit, _) = GoldenAnsatz::new(5, 16).build();
    let diags = analyze(&circuit, &CutSpec::single(0, 99), &default_options());
    assert!(diags.contains(LintCode::InvalidCut));
    assert!(diags.has_deny());
    // Scheduling and graph layers never ran.
    assert!(!diags.contains(LintCode::BudgetBelowFloor));
}

#[test]
fn qa101_silent_on_a_valid_bipartition() {
    let (circuit, cut) = MultiCutAnsatz::new(2, 17).build();
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::InvalidCut));
}

// ---------------------------------------------------------------------
// QA102 SamplingOverhead
// ---------------------------------------------------------------------

#[test]
fn qa102_fires_when_overhead_exceeds_the_configured_bound() {
    let (circuit, cut) = MultiCutAnsatz::new(2, 18).build();
    let opts = ExecutionOptions {
        analysis: AnalysisConfig {
            max_sampling_overhead: 10.0, // 4^2 = 16 > 10
            ..AnalysisConfig::default()
        },
        ..Default::default()
    };
    let diags = analyze(&circuit, &cut, &opts);
    assert_eq!(count(&diags, LintCode::SamplingOverhead), 1);
    assert!(!diags.has_deny());
}

#[test]
fn qa102_silent_under_the_default_bound() {
    let (circuit, cut) = MultiCutAnsatz::new(2, 18).build();
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::SamplingOverhead));
}

// ---------------------------------------------------------------------
// QA103 GoldenStructure (default Allow)
// ---------------------------------------------------------------------

#[test]
fn qa103_fires_on_real_upstream_when_promoted() {
    let (circuit, cut) = GoldenAnsatz::new(5, 19).build();
    let diags = analyze(&circuit, &cut, &promoting(LintCode::GoldenStructure));
    assert_eq!(count(&diags, LintCode::GoldenStructure), 1);
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::GoldenStructure && d.message.contains("golden-Y")));
}

#[test]
fn qa103_silent_on_non_real_upstream() {
    let (circuit, cut) = non_real_upstream_workload();
    let diags = analyze(&circuit, &cut, &promoting(LintCode::GoldenStructure));
    assert!(!diags.contains(LintCode::GoldenStructure));
    assert!(!diags.contains(LintCode::InvalidCut), "the cut is valid");
}

// ---------------------------------------------------------------------
// QA201 BudgetBelowFloor
// ---------------------------------------------------------------------

#[test]
fn qa201_fires_when_even_the_golden_floor_cannot_be_funded() {
    let (circuit, cut) = GoldenAnsatz::new(5, 20).build();
    // K=1 floor = 1 meas + 2 preps = 3 settings; a total of 2 fits none.
    let opts = ExecutionOptions::with_allocation(ShotAllocation::TotalBudget { total: 2 });
    let diags = analyze(&circuit, &cut, &opts);
    assert!(diags.contains(LintCode::BudgetBelowFloor));
    assert!(diags.has_deny());
}

#[test]
fn qa201_silent_when_the_floor_fits_even_if_standard_does_not() {
    let (circuit, cut) = GoldenAnsatz::new(5, 20).build();
    // 4 shots fund the 3-setting floor but starve the 9-setting standard
    // plan — that is QA204 territory, not QA201.
    let opts = ExecutionOptions::with_allocation(ShotAllocation::TotalBudget { total: 4 });
    let diags = analyze(&circuit, &cut, &opts);
    assert!(!diags.contains(LintCode::BudgetBelowFloor));
}

// ---------------------------------------------------------------------
// QA202 ZeroShotSetting
// ---------------------------------------------------------------------

#[test]
fn qa202_fires_on_zero_uniform_shots() {
    let (circuit, cut) = GoldenAnsatz::new(5, 21).build();
    let opts = ExecutionOptions {
        shots_per_setting: 0,
        ..Default::default()
    };
    let diags = analyze(&circuit, &cut, &opts);
    assert!(diags.contains(LintCode::ZeroShotSetting));
    assert!(diags.has_deny());
}

#[test]
fn qa202_silent_on_positive_budgets() {
    let (circuit, cut) = GoldenAnsatz::new(5, 21).build();
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::ZeroShotSetting));
}

// ---------------------------------------------------------------------
// QA203 NeglectCoverage (default Allow)
// ---------------------------------------------------------------------

#[test]
fn qa203_reports_coverage_when_promoted() {
    let (circuit, cut) = GoldenAnsatz::new(5, 22).build();
    let diags = analyze(&circuit, &cut, &promoting(LintCode::NeglectCoverage));
    let report = diags
        .iter()
        .find(|d| d.code == LintCode::NeglectCoverage)
        .expect("promoted coverage report fires on every valid workload");
    // K=1: 9 standard settings, 3 at the fully-golden floor.
    assert!(report.message.contains('9'), "standard count: {report}");
    assert!(report.message.contains('3'), "floor count: {report}");
    assert!(report.message.contains("golden-Y structure present"));
}

#[test]
fn qa203_suppressed_by_default() {
    let (circuit, cut) = GoldenAnsatz::new(5, 22).build();
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::NeglectCoverage));
}

// ---------------------------------------------------------------------
// QA204 StandardPlanStarved
// ---------------------------------------------------------------------

#[test]
fn qa204_fires_when_only_a_golden_shrink_can_rescue_the_budget() {
    let (circuit, cut) = GoldenAnsatz::new(5, 23).build();
    let opts = ExecutionOptions::with_allocation(ShotAllocation::TotalBudget { total: 4 });
    let diags = analyze(&circuit, &cut, &opts);
    assert_eq!(count(&diags, LintCode::StandardPlanStarved), 1);
    assert!(!diags.has_deny(), "QA204 is warn-level");
    assert!(!diags.contains(LintCode::BudgetBelowFloor));
}

#[test]
fn qa204_silent_when_the_standard_plan_is_funded() {
    let (circuit, cut) = GoldenAnsatz::new(5, 23).build();
    let opts = ExecutionOptions::with_allocation(ShotAllocation::TotalBudget { total: 9000 });
    let diags = analyze(&circuit, &cut, &opts);
    assert!(!diags.contains(LintCode::StandardPlanStarved));
}

// ---------------------------------------------------------------------
// QA301 ConsumerAliasing
// ---------------------------------------------------------------------

#[test]
fn qa301_fires_when_two_circuits_feed_one_consumer_key() {
    let mut a = Circuit::new(1);
    a.h(0);
    let mut b = Circuit::new(1);
    b.x(0);
    let mut graph = JobGraph::new();
    graph.add_job(a, (Channel::UpstreamMeas, 7), 100);
    graph.add_job(b, (Channel::UpstreamMeas, 7), 100); // same key, different circuit
    let diags = lint_graph(&graph, &AnalysisConfig::default());
    assert_eq!(count(&diags, LintCode::ConsumerAliasing), 1);
    assert!(diags.has_deny());
}

#[test]
fn qa301_silent_on_distinct_keys() {
    let mut a = Circuit::new(1);
    a.h(0);
    let mut b = Circuit::new(1);
    b.x(0);
    let mut graph = JobGraph::new();
    graph.add_job(a, (Channel::UpstreamMeas, 7), 100);
    graph.add_job(b, (Channel::UpstreamMeas, 8), 100);
    let diags = lint_graph(&graph, &AnalysisConfig::default());
    assert!(!diags.contains(LintCode::ConsumerAliasing));
}

// ---------------------------------------------------------------------
// QA302 OrphanNode
// ---------------------------------------------------------------------

#[test]
fn qa302_fires_on_zero_demand_nodes() {
    let mut a = Circuit::new(1);
    a.h(0);
    let mut graph = JobGraph::new();
    graph.add_job(a, (Channel::UpstreamMeas, 1), 0);
    let diags = lint_graph(&graph, &AnalysisConfig::default());
    assert_eq!(count(&diags, LintCode::OrphanNode), 1);
    assert!(!diags.has_deny(), "QA302 is warn-level");
}

#[test]
fn qa302_silent_when_every_node_has_demand() {
    let mut a = Circuit::new(1);
    a.h(0);
    let mut graph = JobGraph::new();
    graph.add_job(a, (Channel::UpstreamMeas, 1), 50);
    let diags = lint_graph(&graph, &AnalysisConfig::default());
    assert!(!diags.contains(LintCode::OrphanNode));
}

// ---------------------------------------------------------------------
// QA303 MissedDedup
// ---------------------------------------------------------------------

#[test]
fn qa303_fires_on_identical_circuits_with_dedup_off() {
    let mut a = Circuit::new(1);
    a.h(0);
    let mut graph = JobGraph::without_dedup();
    graph.add_job(a.clone(), (Channel::UpstreamMeas, 1), 100);
    graph.add_job(a, (Channel::UpstreamMeas, 2), 100);
    let diags = lint_graph(&graph, &AnalysisConfig::default());
    assert_eq!(count(&diags, LintCode::MissedDedup), 1);
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::MissedDedup && d.message.contains("identical")));
}

#[test]
fn qa303_silent_when_dedup_merged_the_pair() {
    let mut a = Circuit::new(1);
    a.h(0);
    let mut graph = JobGraph::new();
    graph.add_job(a.clone(), (Channel::UpstreamMeas, 1), 100);
    graph.add_job(a, (Channel::UpstreamMeas, 2), 100);
    assert_eq!(graph.num_nodes(), 1, "dedup merged the duplicates");
    let diags = lint_graph(&graph, &AnalysisConfig::default());
    assert!(!diags.contains(LintCode::MissedDedup));
}

// ---------------------------------------------------------------------
// QA304 PrefixSharing (default Allow)
// ---------------------------------------------------------------------

#[test]
fn qa304_reports_sharing_ratio_when_promoted() {
    let (circuit, cut) = GoldenAnsatz::new(5, 24).build();
    let diags = analyze(&circuit, &cut, &promoting(LintCode::PrefixSharing));
    let report = diags
        .iter()
        .find(|d| d.code == LintCode::PrefixSharing)
        .expect("planned graph exists for a valid workload");
    assert!(report.message.contains("unique jobs"), "{report}");
}

#[test]
fn qa304_suppressed_by_default() {
    let (circuit, cut) = GoldenAnsatz::new(5, 24).build();
    let diags = analyze(&circuit, &cut, &default_options());
    assert!(!diags.contains(LintCode::PrefixSharing));
}

// ---------------------------------------------------------------------
// Registry and severity plumbing.
// ---------------------------------------------------------------------

#[test]
fn registry_spans_all_four_layers() {
    let lints = registry();
    for layer in [Layer::Circuit, Layer::Cut, Layer::Schedule, Layer::Graph] {
        assert!(
            lints.iter().any(|l| l.layer() == layer),
            "no lint registered for {layer:?}"
        );
    }
    assert_eq!(lints.len(), LintCode::ALL.len());
}

#[test]
fn demoting_a_deny_lets_the_finding_become_a_warning() {
    let (circuit, _) = GoldenAnsatz::new(5, 25).build();
    let opts = ExecutionOptions {
        analysis: AnalysisConfig::default().with_override(LintCode::InvalidCut, Severity::Warn),
        ..Default::default()
    };
    let diags = analyze(&circuit, &CutSpec::single(0, 99), &opts);
    assert!(diags.contains(LintCode::InvalidCut));
    assert!(!diags.has_deny());
}

// ---------------------------------------------------------------------
// Pipeline gating: deny before any shot.
// ---------------------------------------------------------------------

/// A backend that panics the moment anything tries to execute on it.
struct UntouchableBackend {
    timing: TimingModel,
}

impl UntouchableBackend {
    fn new() -> Self {
        UntouchableBackend {
            timing: TimingModel::instantaneous(),
        }
    }
}

impl Backend for UntouchableBackend {
    fn name(&self) -> &str {
        "untouchable"
    }
    fn num_qubits(&self) -> usize {
        64
    }
    fn timing(&self) -> &TimingModel {
        &self.timing
    }
    fn run(&self, _circuit: &Circuit, _shots: u64) -> Result<ExecutionResult, BackendError> {
        panic!("the static-analysis gate must reject this workload before any shot executes");
    }
}

#[test]
fn deny_level_workload_is_rejected_before_any_shot() {
    let (circuit, cut) = GoldenAnsatz::new(5, 26).build();
    let backend = UntouchableBackend::new();
    let exec = CutExecutor::new(&backend);
    let opts = ExecutionOptions {
        shots_per_setting: 0, // QA202: deny
        ..Default::default()
    };
    let err = exec
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap_err();
    let PipelineError::Analysis(diags) = err else {
        panic!("expected an analysis rejection, got {err:?}");
    };
    assert!(diags.contains(LintCode::ZeroShotSetting));
    assert!(diags.has_deny());
}

#[test]
fn warnings_ride_in_the_run_report() {
    let (circuit, cut) = GoldenAnsatz::new(5, 27).build();
    let backend = IdealBackend::new(28);
    let exec = CutExecutor::new(&backend);
    // Budget 8: floor (3) fits, standard plan (9 settings) starves →
    // QA204 warns. A golden policy then shrinks the plan to 6 settings,
    // which 8 shots fund, so the run succeeds WITH the warning attached.
    let opts = ExecutionOptions {
        allocation: Some(ShotAllocation::TotalBudget { total: 8 }),
        ..Default::default()
    };
    let run = exec
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &opts,
        )
        .expect("golden shrink makes the budget sufficient");
    assert!(run
        .report
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::StandardPlanStarved));
}

#[test]
fn disabled_analysis_reports_no_diagnostics() {
    let (circuit, cut) = GoldenAnsatz::new(5, 29).build();
    let backend = IdealBackend::new(30);
    let exec = CutExecutor::new(&backend);
    let opts = ExecutionOptions {
        shots_per_setting: 500,
        analysis: AnalysisConfig::disabled(),
        ..Default::default()
    };
    let run = exec
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .expect("clean workload runs");
    assert!(run.report.diagnostics.is_empty());
}

// ---------------------------------------------------------------------
// Sweep: every checked-in example workload lints clean.
// ---------------------------------------------------------------------

#[test]
fn every_example_workload_passes_analyze_with_zero_warnings() {
    let mut workloads: Vec<(String, Circuit, CutSpec)> = Vec::new();
    for seed in [1, 2, 3, 42, 123] {
        let (c, cut) = GoldenAnsatz::new(5, seed).build();
        workloads.push((format!("GoldenAnsatz(5, {seed})"), c, cut));
        let (c, cut) = GoldenAnsatz::new(7, seed).build();
        workloads.push((format!("GoldenAnsatz(7, {seed})"), c, cut));
    }
    for k in 1..=3 {
        let (c, cut) = MultiCutAnsatz::new(k, 7).build();
        workloads.push((format!("MultiCutAnsatz({k}, 7)"), c, cut));
    }
    let mut u12 = Circuit::new(2);
    u12.h(0);
    u12.cx(0, 1);
    let mut u23 = Circuit::new(2);
    u23.ry(0.7, 0);
    u23.cx(0, 1);
    let (c, cut) = qcut::circuit::ansatz::three_qubit_example(&u12, &u23);
    workloads.push(("three_qubit_example".to_string(), c, cut));

    for (name, circuit, cut) in &workloads {
        let diags = analyze(circuit, cut, &default_options());
        assert!(diags.is_clean(), "{name} must lint clean, found:\n{diags}");
    }
}
