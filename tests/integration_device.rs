//! Integration tests of the device layer with the cutting pipeline:
//! noise ordering, timing accounting, parallel executors, SIC on devices.

use qcut::cutting::pipeline::ReconstructionMethod;
use qcut::prelude::*;

fn truth_of(circuit: &Circuit) -> Distribution {
    Distribution::from_values(
        circuit.num_qubits(),
        StateVector::from_circuit(circuit).probabilities(),
    )
}

#[test]
fn noisier_devices_reconstruct_worse() {
    let (circuit, cut) = GoldenAnsatz::new(5, 71).build();
    let truth = truth_of(&circuit);
    let options = ExecutionOptions {
        shots_per_setting: 20_000,
        ..Default::default()
    };
    let policy = GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]);

    let mut dws = Vec::new();
    let ideal = IdealBackend::new(1);
    let mild = presets::ibm_5q(1);
    let harsh = presets::very_noisy(1);
    let backends: [&dyn qcut::device::backend::Backend; 3] = [&ideal, &mild, &harsh];
    for backend in backends {
        let run = CutExecutor::new(backend)
            .run(&circuit, &cut, policy.clone(), &options)
            .unwrap();
        dws.push(weighted_distance(&run.distribution, &truth));
    }
    assert!(
        dws[0] < dws[2],
        "harsh noise should beat ideal in d_w: {dws:?}"
    );
    assert!(
        dws[1] < dws[2] * 1.5 + 0.05,
        "mild noise should be under harsh: {dws:?}"
    );
}

#[test]
fn device_time_scales_with_subcircuit_count() {
    // Fig. 5's mechanism in one assertion: simulated device seconds per
    // method are proportional to the number of subcircuit jobs.
    let (circuit, cut) = GoldenAnsatz::new(5, 73).build();
    let backend = presets::ibm_5q(2);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 1000,
        ..Default::default()
    };
    let standard = executor
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    let golden = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &options,
        )
        .unwrap();
    let ratio = golden.report.simulated_device_seconds / standard.report.simulated_device_seconds;
    assert!(
        (ratio - 6.0 / 9.0).abs() < 0.02,
        "device-time ratio {ratio} should be ≈ 2/3"
    );
}

#[test]
fn sic_runs_on_noisy_device() {
    let (circuit, cut) = GoldenAnsatz::new(5, 79).build();
    let backend = presets::ibm_5q(3);
    let executor = CutExecutor::new(&backend);
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &ExecutionOptions {
                shots_per_setting: 10_000,
                method: ReconstructionMethod::Sic,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(run.report.downstream_settings, 4);
    let d = total_variation_distance(&run.distribution, &truth_of(&circuit));
    assert!(d < 0.35, "noisy SIC reconstruction off by {d}");
}

#[test]
fn job_queue_and_rayon_agree() {
    use qcut::device::executor::{run_parallel, Job, JobQueue};
    let backend = IdealBackend::new(55);
    let jobs: Vec<Job> = (0..6)
        .map(|i| {
            let (c, _) = GoldenAnsatz::new(5, i).build();
            Job {
                circuit: c,
                shots: 500,
                tag: i as usize,
            }
        })
        .collect();
    let a = run_parallel(&backend, &jobs);
    let q = JobQueue::new(&backend).with_workers(2).run(jobs);
    assert_eq!(a.results.len(), q.results.len());
    for (x, y) in a.results.iter().zip(&q.results) {
        assert_eq!(
            x.as_ref().unwrap().counts.total(),
            y.as_ref().unwrap().counts.total()
        );
    }
}

#[test]
fn backend_trait_object_works_with_pipeline() {
    // The executor is generic over `?Sized` backends, so `&dyn Backend`
    // composes with the rest of the stack.
    let ideal = IdealBackend::new(5);
    let backend: &dyn qcut::device::backend::Backend = &ideal;
    let executor = CutExecutor::new(backend);
    let (circuit, cut) = GoldenAnsatz::new(5, 83).build();
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &ExecutionOptions {
                shots_per_setting: 5000,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(run.report.subcircuits_executed, 9);
}

#[test]
fn fragments_fit_where_the_full_circuit_does_not_noisy() {
    // Same capacity story on the noisy device: its 5-qubit limit refuses a
    // 7-qubit circuit, but the 4-qubit fragments run.
    let (circuit, cut) = GoldenAnsatz::new(7, 89).build();
    let five_qubit_device = presets::ibm_5q(4);
    let executor = CutExecutor::new(&five_qubit_device);
    assert!(executor.run_uncut(&circuit, 100).is_err());
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &ExecutionOptions {
                shots_per_setting: 4000,
                ..Default::default()
            },
        )
        .unwrap();
    let d = total_variation_distance(&run.distribution, &truth_of(&circuit));
    assert!(d < 0.4, "7q-on-5q noisy reconstruction off by {d}");
}
