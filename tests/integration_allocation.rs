//! Integration tests of shot allocation and observable measurement —
//! the repository's extensions beyond the paper's §III protocol.

use qcut::cutting::allocation::{schedule, ShotAllocation};
use qcut::cutting::basis::BasisPlan;
use qcut::cutting::execution::gather_scheduled;
use qcut::cutting::observable::{pauli_expectation, DiagonalObservable};
use qcut::cutting::reconstruction::reconstruct;
use qcut::cutting::tomography::ExperimentPlan;
use qcut::prelude::*;

#[test]
fn weighted_allocation_reconstructs_correctly() {
    let (circuit, cut) = GoldenAnsatz::new(5, 101).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let basis = BasisPlan::standard(1);
    let experiment = ExperimentPlan::build(&frags, &basis);
    let backend = IdealBackend::new(41);

    let sched = schedule(
        &basis,
        &experiment,
        ShotAllocation::WeightedByUsage { total: 120_000 },
    );
    assert!(sched.min_shots() > 0);
    let data = gather_scheduled(&backend, &experiment, &sched, true).unwrap();
    assert_eq!(data.total_shots, sched.total());

    let recon = reconstruct(&frags, &basis, &data).clip_renormalize();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let d = total_variation_distance(&recon, &truth);
    assert!(d < 0.05, "weighted-allocation reconstruction off by {d}");
}

#[test]
fn equal_budget_uniform_vs_weighted_accuracy() {
    // Same total budget, two allocations; both must land near the truth
    // (the weighted scheme is a variance refinement, not a correctness
    // change).
    let (circuit, cut) = GoldenAnsatz::new(5, 103).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let basis = BasisPlan::standard(1);
    let experiment = ExperimentPlan::build(&frags, &basis);
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let total = 90_000;
    for alloc in [
        ShotAllocation::TotalBudget { total },
        ShotAllocation::WeightedByUsage { total },
    ] {
        let backend = IdealBackend::new(43);
        let sched = schedule(&basis, &experiment, alloc);
        let data = gather_scheduled(&backend, &experiment, &sched, true).unwrap();
        let recon = reconstruct(&frags, &basis, &data).clip_renormalize();
        let d = total_variation_distance(&recon, &truth);
        assert!(d < 0.05, "{alloc:?}: off by {d}");
    }
}

#[test]
fn observable_pipeline_on_noisy_device() {
    // Pauli expectations through the cutting pipeline on the simulated
    // hardware: noisy but unbiased within noise floor.
    let (circuit, cut) = GoldenAnsatz::new(5, 107).build();
    let backend = presets::ibm_5q(47);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 8000,
        ..Default::default()
    };
    let p = PauliString::parse("IIZZI").unwrap();
    let want = StateVector::from_circuit(&circuit).expectation_pauli(&p);
    let got = pauli_expectation(
        &executor,
        &circuit,
        &cut,
        GoldenPolicy::detect_exact(),
        &options,
        &p,
    )
    .unwrap();
    assert!(
        (got - want).abs() < 0.25,
        "noisy <IIZZI>: got {got}, want {want}"
    );
}

#[test]
fn diagonal_observables_from_reconstruction() {
    let (circuit, cut) = GoldenAnsatz::new(5, 109).build();
    let backend = IdealBackend::new(53);
    let executor = CutExecutor::new(&backend);
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &ExecutionOptions {
                shots_per_setting: 30_000,
                ..Default::default()
            },
        )
        .unwrap();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    for obs in [
        DiagonalObservable::hamming_weight(5),
        DiagonalObservable::ising_chain(5, 1.0),
        DiagonalObservable::projector(5, 0b00000),
    ] {
        let got = obs.expectation(&run.distribution);
        let want = obs.expectation(&truth);
        assert!(
            (got - want).abs() < 0.15,
            "diagonal observable off: {got} vs {want}"
        );
    }
}
