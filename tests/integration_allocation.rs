//! Integration tests of shot allocation and observable measurement —
//! the repository's extensions beyond the paper's §III protocol.
//!
//! The allocation half pins the ISSUE 4 contract: every policy schedules
//! exactly its requested total (property-tested over plan shapes), the
//! uniform policy through the engine path is bit-identical to the
//! default protocol, weighted budgets compose with dedup under exact
//! `shots_saved` accounting, and usage-weighted budgets beat uniform on
//! estimated variance at equal total cost.

use proptest::prelude::*;
use qcut::circuit::ansatz::MultiCutAnsatz;
use qcut::cutting::allocation::{
    schedule, schedule_for_plan, schedule_sic, AllocationError, ShotSchedule,
};
use qcut::cutting::basis::BasisPlan;
use qcut::cutting::error::PipelineError;
use qcut::cutting::execution::gather_scheduled;
use qcut::cutting::golden::OnlineConfig;
use qcut::cutting::observable::{pauli_expectation, DiagonalObservable};
use qcut::cutting::reconstruction::{exact_downstream_tensor, exact_upstream_tensor, reconstruct};
use qcut::cutting::tomography::ExperimentPlan;
use qcut::cutting::variance::variance_from_schedule;
use qcut::prelude::*;

#[test]
fn weighted_allocation_reconstructs_correctly() {
    let (circuit, cut) = GoldenAnsatz::new(5, 101).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let basis = BasisPlan::standard(1);
    let experiment = ExperimentPlan::build(&frags, &basis);
    let backend = IdealBackend::new(41);

    let sched = schedule(
        &basis,
        &experiment,
        ShotAllocation::WeightedByUsage { total: 120_000 },
    )
    .unwrap();
    assert!(sched.min_shots() > 0);
    assert_eq!(sched.total(), 120_000);
    let data = gather_scheduled(&backend, &experiment, &sched, true).unwrap();
    assert_eq!(data.total_shots, sched.total());

    let recon = reconstruct(&frags, &basis, &data).clip_renormalize();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let d = total_variation_distance(&recon, &truth);
    assert!(d < 0.05, "weighted-allocation reconstruction off by {d}");
}

#[test]
fn equal_budget_uniform_vs_weighted_accuracy() {
    // Same total budget, two allocations; both must land near the truth
    // (the weighted scheme is a variance refinement, not a correctness
    // change).
    let (circuit, cut) = GoldenAnsatz::new(5, 103).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let basis = BasisPlan::standard(1);
    let experiment = ExperimentPlan::build(&frags, &basis);
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let total = 90_000;
    for alloc in [
        ShotAllocation::TotalBudget { total },
        ShotAllocation::WeightedByUsage { total },
    ] {
        let backend = IdealBackend::new(43);
        let sched = schedule(&basis, &experiment, alloc).unwrap();
        assert_eq!(sched.total(), total, "{alloc:?} must spend exactly");
        let data = gather_scheduled(&backend, &experiment, &sched, true).unwrap();
        let recon = reconstruct(&frags, &basis, &data).clip_renormalize();
        let d = total_variation_distance(&recon, &truth);
        assert!(d < 0.05, "{alloc:?}: off by {d}");
    }
}

/// ISSUE 4 acceptance (a): the Uniform policy routed through the
/// allocation-aware engine path is bit-identical to the historical
/// default protocol — same distribution values, same accounting.
#[test]
fn uniform_allocation_is_bit_identical_to_default_path() {
    let (circuit, cut) = GoldenAnsatz::new(5, 211).build();
    let shots = 2000u64;
    let run_with = |options: &ExecutionOptions| {
        let backend = IdealBackend::new(77);
        CutExecutor::new(&backend)
            .run(&circuit, &cut, GoldenPolicy::Disabled, options)
            .unwrap()
    };
    let default_path = run_with(&ExecutionOptions {
        shots_per_setting: shots,
        ..Default::default()
    });
    let explicit = run_with(&ExecutionOptions {
        allocation: Some(ShotAllocation::Uniform {
            shots_per_setting: shots,
        }),
        ..Default::default()
    });
    assert_eq!(
        default_path.distribution.values(),
        explicit.distribution.values(),
        "Uniform through the allocation path must be bit-identical"
    );
    assert_eq!(default_path.report.total_shots, explicit.report.total_shots);
    assert_eq!(
        default_path.report.shots_requested,
        explicit.report.shots_requested
    );
    assert_eq!(
        default_path.report.jobs_executed,
        explicit.report.jobs_executed
    );
}

/// ISSUE 4 acceptance (b): weighted budgets compose with engine dedup —
/// online-detection measurements seed the weighted gather (the circuit
/// is *not* golden, so the measured Y setting survives into the gather
/// plan and its shots are reused), with exact accounting.
#[test]
fn weighted_allocation_composes_with_dedup() {
    // Same non-golden family as the golden detector's negative controls:
    // RX gives the cut qubit a Y component, the trailing RZ mixes it
    // into X.
    let mut circuit = Circuit::new(3);
    circuit.rx(1.1, 0).rx(0.9, 1).cx(0, 1).rz(0.8, 1).cx(1, 2);
    let cut = CutSpec::single(1, 2);
    let backend = IdealBackend::new(91);
    let exec = CutExecutor::new(&backend);
    let total = 40_000u64;
    let config = OnlineConfig {
        epsilon: 0.05,
        batch_shots: 2000,
        ..OnlineConfig::default()
    };
    let run = exec
        .run(
            &circuit,
            &cut,
            GoldenPolicy::DetectOnline(config),
            &ExecutionOptions {
                allocation: Some(ShotAllocation::WeightedByUsage { total }),
                ..Default::default()
            },
        )
        .unwrap();
    let report = &run.report;
    assert!(report.neglected[0].is_empty(), "cut wrongly judged golden");
    assert!(report.detection_shots > 0);
    assert!(report.jobs_executed <= report.jobs_planned);

    // Exact accounting: every requested shot is either executed (in
    // detection or the gather) or saved — nothing lost, nothing counted
    // twice.
    assert_eq!(
        report.shots_requested,
        report.detection_shots
            + report.total_shots
            + report.shots_saved
            + report.cache_shots_reused
    );
    // The gather half of the request is exactly the weighted schedule of
    // the detected plan (detection rounds never dedup among themselves,
    // so their request equals their executed shots).
    let sched = schedule_for_plan(
        &BasisPlan::standard(1),
        ShotAllocation::WeightedByUsage { total },
    )
    .unwrap();
    assert_eq!(sched.total(), total);
    assert_eq!(report.shots_requested - report.detection_shots, total);
    // Detection data was actually reused: the gather executed fewer fresh
    // shots than the weighted schedule requested.
    assert!(report.shots_saved > 0, "detection reuse must save shots");
    assert_eq!(report.shots_saved, total - report.total_shots);

    // And the result is still correct.
    let truth = Distribution::from_values(3, StateVector::from_circuit(&circuit).probabilities());
    let d = total_variation_distance(&run.distribution, &truth);
    assert!(d < 0.06, "weighted+dedup reconstruction off by {d}");
}

/// ISSUE 4 acceptance (c): at equal total budget, usage-weighted
/// allocation yields a lower estimated reconstruction variance than the
/// uniform split on a `BasisPlan::standard(2)` workload (deterministic:
/// exact tensors + requested schedules).
#[test]
fn weighted_beats_uniform_variance_at_equal_budget() {
    let plan = BasisPlan::standard(2);
    for seed in [1u64, 5, 11] {
        let (circuit, spec) = MultiCutAnsatz::new(2, seed).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let down = exact_downstream_tensor(&frags.downstream, &plan);
        let total = 90_000u64;
        let uniform = schedule_for_plan(&plan, ShotAllocation::TotalBudget { total }).unwrap();
        let weighted = schedule_for_plan(&plan, ShotAllocation::WeightedByUsage { total }).unwrap();
        assert_eq!(uniform.total(), weighted.total());
        let rms_u = variance_from_schedule(&frags, &plan, &up, &down, &uniform).rms_error();
        let rms_w = variance_from_schedule(&frags, &plan, &up, &down, &weighted).rms_error();
        assert!(
            rms_w < rms_u,
            "seed {seed}: weighted RMS {rms_w} should beat uniform {rms_u}"
        );
    }
}

#[test]
fn every_policy_executes_through_the_pipeline() {
    // The acceptance bar: all three `ShotAllocation` variants drive
    // `CutExecutor::run` end-to-end, for both reconstruction methods.
    let (circuit, cut) = GoldenAnsatz::new(5, 227).build();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    for (policy, shots_hint) in [
        (
            ShotAllocation::Uniform {
                shots_per_setting: 20_000,
            },
            20_000,
        ),
        (ShotAllocation::TotalBudget { total: 180_000 }, 20_000),
        (ShotAllocation::WeightedByUsage { total: 180_000 }, 20_000),
    ] {
        for method in [ReconstructionMethod::Eigenstate, ReconstructionMethod::Sic] {
            let backend = IdealBackend::new(97);
            let exec = CutExecutor::new(&backend);
            let run = exec
                .run(
                    &circuit,
                    &cut,
                    GoldenPolicy::Disabled,
                    &ExecutionOptions {
                        shots_per_setting: shots_hint,
                        allocation: Some(policy),
                        method,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_eq!(run.report.allocation, policy);
            let d = total_variation_distance(&run.distribution, &truth);
            assert!(d < 0.08, "{policy:?}/{method:?}: off by {d}");
        }
    }
}

#[test]
fn starved_budget_surfaces_as_pipeline_error() {
    // The old `assert!` aborted the process; the pipeline now returns a
    // typed error callers can handle.
    let (circuit, cut) = GoldenAnsatz::new(5, 229).build();
    let backend = IdealBackend::new(3);
    let exec = CutExecutor::new(&backend);
    for policy in [
        ShotAllocation::TotalBudget { total: 4 },
        ShotAllocation::WeightedByUsage { total: 8 },
    ] {
        let err = exec
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions::with_allocation(policy),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Allocation(AllocationError::BudgetTooSmall { settings: 9, .. })
            ),
            "{policy:?} gave {err:?}"
        );
    }
}

/// Arbitrary plan shapes for the apportionment property tests: 1–3 cuts,
/// each optionally golden in one of the three bases.
fn plan_from(cuts: &[u8]) -> BasisPlan {
    BasisPlan::with_neglected(
        cuts.iter()
            .map(|c| match c {
                1 => Some(Pauli::X),
                2 => Some(Pauli::Y),
                3 => Some(Pauli::Z),
                _ => None,
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ISSUE 4 headline-bugfix property: `schedule(...).total() == total`
    /// for every policy and plan shape — the floor() split used to drop
    /// up to n−1 shots of a weighted budget.
    #[test]
    fn every_policy_schedules_exactly_its_total(
        cuts in proptest::collection::vec(0u8..4, 1..4),
        shots in 1u64..5000,
        budget_per_setting in 1u64..5000,
    ) {
        let plan = plan_from(&cuts);
        let n_eigen = plan.total_settings() as u64;
        let total = n_eigen * budget_per_setting + budget_per_setting % 7;

        let uniform = schedule_for_plan(
            &plan,
            ShotAllocation::Uniform { shots_per_setting: shots },
        ).unwrap();
        prop_assert_eq!(uniform.total(), n_eigen * shots);
        prop_assert_eq!(uniform.min_shots(), shots);
        prop_assert_eq!(uniform.max_shots(), shots);

        for alloc in [
            ShotAllocation::TotalBudget { total },
            ShotAllocation::WeightedByUsage { total },
        ] {
            let s = schedule_for_plan(&plan, alloc).unwrap();
            prop_assert_eq!(s.total(), total, "{:?} lost shots", alloc);
            prop_assert!(s.min_shots() >= 1, "{:?} starved a setting", alloc);
            prop_assert_eq!(s.num_settings() as u64, n_eigen);
        }
    }

    /// The same exactness for SIC-shaped schedules (`3^K' + 4^K`
    /// settings).
    #[test]
    fn sic_schedules_are_exact_too(
        cuts in proptest::collection::vec(0u8..4, 1..4),
        budget_per_setting in 1u64..5000,
    ) {
        let plan = plan_from(&cuts);
        let n_up = plan.all_meas_settings().len() as u64;
        let n_down = 4u64.pow(plan.num_cuts() as u32);
        let total = (n_up + n_down) * budget_per_setting + budget_per_setting % 5;
        for alloc in [
            ShotAllocation::TotalBudget { total },
            ShotAllocation::WeightedByUsage { total },
        ] {
            let s = schedule_sic(&plan, alloc).unwrap();
            prop_assert_eq!(s.upstream.len() as u64, n_up);
            prop_assert_eq!(s.downstream.len() as u64, n_down);
            prop_assert_eq!(s.total(), total, "{:?} lost shots", alloc);
            prop_assert!(s.min_shots() >= 1);
        }
    }

    /// ISSUE 5: the adaptive policy spends exactly its total across plan
    /// shapes — both at the schedule level (pilot + Neyman refine under
    /// arbitrary scores) and through the eigenstate/SIC planning surrogate.
    #[test]
    fn adaptive_spends_exactly_its_total(
        cuts in proptest::collection::vec(0u8..4, 1..4),
        budget_per_setting in 2u64..5000,
        fraction in 0.01f64..0.99,
        scores in proptest::collection::vec(0.0f64..10.0, 40),
    ) {
        use qcut::cutting::allocation::{pilot_schedule, pilot_total, refine_schedule};
        let plan = plan_from(&cuts);
        let n_eigen = plan.total_settings() as u64;
        let n_up = plan.all_meas_settings().len();
        let n_down_sic = 4usize.pow(plan.num_cuts() as u32);

        // Schedule-level: uniform pilot + largest-remainder Neyman refine.
        let total = n_eigen * budget_per_setting + budget_per_setting % 7;
        let pilot = pilot_total(fraction, total).max(n_eigen);
        prop_assert!(pilot <= total);
        let pilot_sched = pilot_schedule(n_up, n_eigen as usize - n_up, pilot).unwrap();
        prop_assert_eq!(pilot_sched.total(), pilot);
        // Cycle the generated scores over however many settings the plan
        // shape produced (up to 3^3 + 6^3 for three standard cuts).
        let up_scores: Vec<f64> = (0..n_up).map(|i| scores[i % scores.len()]).collect();
        let down_scores: Vec<f64> = (n_up..n_eigen as usize)
            .map(|i| scores[i % scores.len()])
            .collect();
        let cumulative = refine_schedule(&pilot_sched, &up_scores, &down_scores, total - pilot);
        prop_assert_eq!(cumulative.total(), total, "adaptive lost shots");
        prop_assert!(cumulative.min_shots() >= 1);

        // Planner surrogate, eigenstate and SIC shapes.
        let alloc = ShotAllocation::Adaptive { pilot_fraction: 0.5, total };
        let s = schedule_for_plan(&plan, alloc).unwrap();
        prop_assert_eq!(s.total(), total, "eigenstate surrogate lost shots");
        let sic_total = (n_up + n_down_sic) as u64 * budget_per_setting;
        let s = schedule_sic(
            &plan,
            ShotAllocation::Adaptive { pilot_fraction: 0.5, total: sic_total },
        )
        .unwrap();
        prop_assert_eq!(s.total(), sic_total, "SIC surrogate lost shots");
    }

    /// Budgets below one-shot-per-setting always fail with the typed
    /// error, never a panic.
    #[test]
    fn undersized_budgets_error_cleanly(
        cuts in proptest::collection::vec(0u8..4, 1..4),
        deficit in 1u64..10,
    ) {
        let plan = plan_from(&cuts);
        let n = plan.total_settings() as u64;
        let total = n.saturating_sub(deficit);
        for alloc in [
            ShotAllocation::TotalBudget { total },
            ShotAllocation::WeightedByUsage { total },
        ] {
            let err = schedule_for_plan(&plan, alloc).unwrap_err();
            prop_assert!(matches!(err, AllocationError::BudgetTooSmall { .. }));
        }
    }

    /// A gather under an arbitrary (valid) schedule delivers exactly the
    /// realized per-setting shots it was asked for.
    #[test]
    fn scheduled_gather_delivers_the_schedule(
        seed in 0u64..32,
        shots in proptest::collection::vec(1u64..400, 9),
    ) {
        let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
        let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
        let basis = BasisPlan::standard(1);
        let experiment = ExperimentPlan::build(&frags, &basis);
        let sched = ShotSchedule {
            upstream: shots[..3].to_vec(),
            downstream: shots[3..].to_vec(),
        };
        let backend = IdealBackend::new(seed);
        let data = gather_scheduled(&backend, &experiment, &sched, true).unwrap();
        prop_assert_eq!(data.total_shots, sched.total());
        for (i, v) in experiment.upstream.iter().enumerate() {
            let key = qcut::cutting::basis::encode_meas(&v.setting);
            prop_assert_eq!(data.shots_for_meas(key), sched.upstream[i]);
        }
        for (i, v) in experiment.downstream.iter().enumerate() {
            let key = qcut::cutting::basis::encode_prep(&v.preparation);
            prop_assert_eq!(data.shots_for_prep(key), sched.downstream[i]);
        }
    }
}

/// ISSUE 5 degenerate edge (a): `pilot_fraction = 0` means "no pilot, no
/// measured variance" and must be *bit-identical* to the single-round
/// `WeightedByUsage` policy — same distribution, same accounting.
#[test]
fn adaptive_pilot_fraction_zero_is_bit_identical_to_weighted() {
    let (circuit, cut) = GoldenAnsatz::new(5, 301).build();
    let total = 45_000u64;
    let run_with = |policy| {
        let backend = IdealBackend::new(61);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions::with_allocation(policy),
            )
            .unwrap()
    };
    let adaptive = run_with(ShotAllocation::Adaptive {
        pilot_fraction: 0.0,
        total,
    });
    let weighted = run_with(ShotAllocation::WeightedByUsage { total });
    assert_eq!(
        adaptive.distribution.values(),
        weighted.distribution.values(),
        "pilot_fraction = 0 must run the WeightedByUsage path bit-identically"
    );
    assert_eq!(adaptive.report.total_shots, weighted.report.total_shots);
    assert_eq!(
        adaptive.report.shots_requested,
        weighted.report.shots_requested
    );
    assert_eq!(adaptive.report.pilot_shots, 0);
    assert_eq!(adaptive.report.rounds, 1);
}

/// ISSUE 5 degenerate edge (b): `pilot_fraction = 1` means "the whole
/// budget *is* the uniform pilot" and must be bit-identical to the even
/// `TotalBudget` split (the uniform division of `total`).
#[test]
fn adaptive_pilot_fraction_one_is_bit_identical_to_uniform_split() {
    let (circuit, cut) = GoldenAnsatz::new(5, 303).build();
    let total = 45_000u64;
    let run_with = |policy| {
        let backend = IdealBackend::new(67);
        CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions::with_allocation(policy),
            )
            .unwrap()
    };
    let adaptive = run_with(ShotAllocation::Adaptive {
        pilot_fraction: 1.0,
        total,
    });
    let uniform = run_with(ShotAllocation::TotalBudget { total });
    assert_eq!(
        adaptive.distribution.values(),
        uniform.distribution.values(),
        "pilot_fraction = 1 must run the uniform-split path bit-identically"
    );
    assert_eq!(adaptive.report.total_shots, uniform.report.total_shots);
    assert_eq!(adaptive.report.pilot_shots, 0);
    assert_eq!(adaptive.report.rounds, 1);
}

/// An interior pilot fraction runs two engine rounds: the pilot executes
/// its uniform budget, the refine round executes exactly the remainder
/// (the cumulative requests are offset by the seeded pilot histograms),
/// and the reconstruction stays correct.
#[test]
fn adaptive_interior_fraction_runs_two_rounds_and_reconstructs() {
    let (circuit, cut) = GoldenAnsatz::new(5, 307).build();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let total = 180_000u64;
    for method in [ReconstructionMethod::Eigenstate, ReconstructionMethod::Sic] {
        let backend = IdealBackend::new(71);
        let run = CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions {
                    allocation: Some(ShotAllocation::Adaptive {
                        pilot_fraction: 0.2,
                        total,
                    }),
                    method,
                    ..Default::default()
                },
            )
            .unwrap();
        let report = &run.report;
        assert_eq!(report.rounds, 2, "{method:?}");
        assert_eq!(report.pilot_shots, total / 5, "{method:?}: uniform pilot");
        // No detection, no intra-plan duplicates: the two rounds spend
        // exactly the requested total in fresh shots.
        assert_eq!(report.pilot_shots + report.total_shots, total, "{method:?}");
        assert_eq!(
            report.shots_requested,
            report.detection_shots
                + report.pilot_shots
                + report.total_shots
                + report.shots_saved
                + report.cache_shots_reused,
            "{method:?}: exact accounting"
        );
        // The refine round re-requests the pilot budget (served from the
        // seeded histograms), so the saved shots are exactly the pilot.
        assert_eq!(report.shots_saved, report.pilot_shots, "{method:?}");
        let d = total_variation_distance(&run.distribution, &truth);
        assert!(d < 0.08, "{method:?}: adaptive reconstruction off by {d}");
    }
}

/// ISSUE 5 acceptance: the exact accounting invariant holds under the
/// full composition — online golden detection seeding the pilot, the
/// pilot seeding the refine round, dedup on.
#[test]
fn adaptive_composes_with_online_detection_and_dedup() {
    // The non-golden family from the detector's negative controls.
    let mut circuit = Circuit::new(3);
    circuit.rx(1.1, 0).rx(0.9, 1).cx(0, 1).rz(0.8, 1).cx(1, 2);
    let cut = CutSpec::single(1, 2);
    let backend = IdealBackend::new(83);
    let total = 40_000u64;
    let config = OnlineConfig {
        epsilon: 0.05,
        batch_shots: 2000,
        ..OnlineConfig::default()
    };
    let run = CutExecutor::new(&backend)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::DetectOnline(config),
            &ExecutionOptions {
                allocation: Some(ShotAllocation::Adaptive {
                    pilot_fraction: 0.25,
                    total,
                }),
                ..Default::default()
            },
        )
        .unwrap();
    let report = &run.report;
    assert!(report.neglected[0].is_empty(), "cut wrongly judged golden");
    assert!(report.detection_shots > 0);
    assert_eq!(report.rounds, 2);
    assert_eq!(
        report.shots_requested,
        report.detection_shots
            + report.pilot_shots
            + report.total_shots
            + report.shots_saved
            + report.cache_shots_reused,
        "exact accounting under detection + pilot + refine seeding"
    );
    // Detection data offsets the pilot, and the pilot offsets the refine:
    // both reuses land in shots_saved, so the fresh gather work is less
    // than the scheduled total.
    assert!(report.shots_saved > report.pilot_shots);
    assert!(report.pilot_shots + report.total_shots < total);
    let truth = Distribution::from_values(3, StateVector::from_circuit(&circuit).probabilities());
    let d = total_variation_distance(&run.distribution, &truth);
    assert!(d < 0.06, "adaptive+detection reconstruction off by {d}");
}

/// With dedup off (the ablation baseline) `JobGraph::seed_counts` is a
/// deliberate no-op, so the refine round requests only the increments and
/// the pilot's histograms merge into the delivery directly — the two
/// rounds must still spend exactly `total` fresh shots and keep the
/// pilot's data.
#[test]
fn adaptive_without_dedup_still_spends_exactly_its_total() {
    let (circuit, cut) = GoldenAnsatz::new(5, 317).build();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let total = 90_000u64;
    let backend = IdealBackend::new(73);
    let run = CutExecutor::new(&backend)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &ExecutionOptions {
                allocation: Some(ShotAllocation::Adaptive {
                    pilot_fraction: 0.2,
                    total,
                }),
                dedup: false,
                ..Default::default()
            },
        )
        .unwrap();
    let report = &run.report;
    assert_eq!(report.rounds, 2);
    assert_eq!(report.pilot_shots, total / 5);
    assert_eq!(
        report.pilot_shots + report.total_shots,
        total,
        "ablation must not overspend the budget"
    );
    // Nothing is seeded or merged on the engine, so nothing is saved —
    // the pilot data reaches the reconstruction via an explicit merge.
    assert_eq!(report.shots_saved, 0);
    assert_eq!(
        report.shots_requested,
        report.detection_shots
            + report.pilot_shots
            + report.total_shots
            + report.shots_saved
            + report.cache_shots_reused
    );
    let d = total_variation_distance(&run.distribution, &truth);
    assert!(d < 0.05, "dedup-off adaptive reconstruction off by {d}");
}

/// A pilot fraction that rounds below one-shot-per-setting surfaces as
/// the typed pilot error, not a panic. (The static-analysis gate flags
/// the same starvation as `QA201` even earlier, so this test disables it
/// to keep the runtime allocation path covered.)
#[test]
fn adaptive_starved_pilot_is_a_typed_error() {
    use qcut::cutting::analysis::AnalysisConfig;
    let (circuit, cut) = GoldenAnsatz::new(5, 311).build();
    let backend = IdealBackend::new(5);
    let err = CutExecutor::new(&backend)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &ExecutionOptions {
                allocation: Some(ShotAllocation::Adaptive {
                    pilot_fraction: 0.0001,
                    total: 9_000,
                }),
                analysis: AnalysisConfig::disabled(),
                ..Default::default()
            },
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            PipelineError::Allocation(AllocationError::PilotBudgetTooSmall { settings: 9, .. })
        ),
        "got {err:?}"
    );
}

/// With analysis enabled (the default), the same starved pilot is caught
/// statically before any shot: `QA201` denies the run because not even a
/// fully-golden plan fits the pilot budget.
#[test]
fn adaptive_starved_pilot_is_denied_statically() {
    use qcut::cutting::analysis::LintCode;
    let (circuit, cut) = GoldenAnsatz::new(5, 311).build();
    let backend = IdealBackend::new(5);
    let err = CutExecutor::new(&backend)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &ExecutionOptions::with_allocation(ShotAllocation::Adaptive {
                pilot_fraction: 0.0001,
                total: 9_000,
            }),
        )
        .unwrap_err();
    let PipelineError::Analysis(diags) = err else {
        panic!("expected static rejection, got {err:?}");
    };
    assert!(diags.contains(LintCode::BudgetBelowFloor));
}

/// The engine-seeded refine round is equivalent to gathering the two
/// passes separately and merging them with `FragmentData::merge`: seeding
/// offsets each node's cumulative request by the pilot histogram, so the
/// fresh executions are exactly the increment pass.
#[test]
fn seeded_refine_round_delivers_the_merge_of_both_passes() {
    use qcut::cutting::allocation::{pilot_schedule, refine_schedule};
    use qcut::cutting::basis::{encode_meas, encode_prep};
    use qcut::cutting::execution::FragmentData;
    use qcut::cutting::jobgraph::{Channel, JobGraph};

    let (circuit, cut) = GoldenAnsatz::new(5, 313).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let basis = BasisPlan::standard(1);
    let experiment = ExperimentPlan::build(&frags, &basis);

    let pilot_sched = pilot_schedule(3, 6, 1800).unwrap();
    let scores_up = [3.0, 1.0, 2.0];
    let scores_down = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0];
    let cumulative = refine_schedule(&pilot_sched, &scores_up, &scores_down, 7200);
    let increments = qcut::cutting::allocation::ShotSchedule {
        upstream: cumulative
            .upstream
            .iter()
            .zip(&pilot_sched.upstream)
            .map(|(&c, &p)| c - p)
            .collect(),
        downstream: cumulative
            .downstream
            .iter()
            .zip(&pilot_sched.downstream)
            .map(|(&c, &p)| c - p)
            .collect(),
    };

    // Two independent single-round gathers …
    let backend = IdealBackend::new(131);
    let mut merged = gather_scheduled(&backend, &experiment, &pilot_sched, true).unwrap();
    let fresh = gather_scheduled(&backend, &experiment, &increments, true).unwrap();
    merged.merge(&fresh);

    // … versus a pilot + seeded engine round requesting the cumulative
    // targets, on a fresh same-seed backend so both arms draw identical
    // per-job RNG streams (sub-seeds advance with every executed job).
    let backend = IdealBackend::new(131);
    let pilot = gather_scheduled(&backend, &experiment, &pilot_sched, true).unwrap();
    let mut graph = JobGraph::new();
    for (i, v) in experiment.upstream.iter().enumerate() {
        graph.add_job(
            v.circuit.clone(),
            (Channel::UpstreamMeas, encode_meas(&v.setting)),
            cumulative.upstream[i],
        );
    }
    for (i, v) in experiment.downstream.iter().enumerate() {
        graph.add_job(
            v.circuit.clone(),
            (Channel::DownstreamPrep, encode_prep(&v.preparation)),
            cumulative.downstream[i],
        );
    }
    for v in &experiment.upstream {
        graph.seed_counts(&v.circuit, &pilot.upstream[&encode_meas(&v.setting)]);
    }
    for v in &experiment.downstream {
        graph.seed_counts(&v.circuit, &pilot.downstream[&encode_prep(&v.preparation)]);
    }
    let mut run = graph.execute(&backend, true).unwrap();
    assert_eq!(run.stats.shots_executed, increments.total());
    assert_eq!(run.stats.shots_saved, pilot_sched.total());
    let seeded = FragmentData::from_counts(
        run.take_channel(Channel::UpstreamMeas),
        run.take_channel(Channel::DownstreamPrep),
        run.stats.simulated_device_time,
        run.stats.host_time,
    );
    assert_eq!(seeded.upstream, merged.upstream);
    assert_eq!(seeded.downstream, merged.downstream);
    assert_eq!(seeded.total_shots, cumulative.total());
}

#[test]
fn observable_pipeline_on_noisy_device() {
    // Pauli expectations through the cutting pipeline on the simulated
    // hardware: noisy but unbiased within noise floor.
    let (circuit, cut) = GoldenAnsatz::new(5, 107).build();
    let backend = presets::ibm_5q(47);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 8000,
        ..Default::default()
    };
    let p = PauliString::parse("IIZZI").unwrap();
    let want = StateVector::from_circuit(&circuit).expectation_pauli(&p);
    let got = pauli_expectation(
        &executor,
        &circuit,
        &cut,
        GoldenPolicy::detect_exact(),
        &options,
        &p,
    )
    .unwrap();
    assert!(
        (got - want).abs() < 0.25,
        "noisy <IIZZI>: got {got}, want {want}"
    );
}

#[test]
fn diagonal_observables_from_reconstruction() {
    let (circuit, cut) = GoldenAnsatz::new(5, 109).build();
    let backend = IdealBackend::new(53);
    let executor = CutExecutor::new(&backend);
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &ExecutionOptions {
                shots_per_setting: 30_000,
                ..Default::default()
            },
        )
        .unwrap();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    for obs in [
        DiagonalObservable::hamming_weight(5),
        DiagonalObservable::ising_chain(5, 1.0),
        DiagonalObservable::projector(5, 0b00000),
    ] {
        let got = obs.expectation(&run.distribution);
        let want = obs.expectation(&truth);
        assert!(
            (got - want).abs() < 0.15,
            "diagonal observable off: {got} vs {want}"
        );
    }
}
