//! Pool-level equivalence suite: a [`BackendPool`] behind the full
//! cutting pipeline must be indistinguishable from its members. A
//! single-member pool is bit-identical to the bare backend (ideal and
//! noisy), homogeneous sharding stays statistically equivalent while
//! splitting the makespan, sibling failover absorbs transient member
//! faults, and the pool composes with every existing guarantee: the
//! warm-start cache (per-member fingerprint keying), adaptive shot
//! allocation, and graceful degradation.

use qcut::cutting::tomography::build_upstream_circuit;
use qcut::prelude::*;
use std::sync::Arc;

fn truth_of(circuit: &Circuit) -> Distribution {
    Distribution::from_values(
        circuit.num_qubits(),
        StateVector::from_circuit(circuit).probabilities(),
    )
}

fn options(shots: u64) -> ExecutionOptions {
    ExecutionOptions {
        shots_per_setting: shots,
        ..Default::default()
    }
}

/// The accounting invariant every report must satisfy, extended over the
/// pool fields: per-member deliveries sum to the executed job total.
fn assert_report_invariants(report: &qcut::cutting::report::RunReport) {
    assert_eq!(
        report.shots_requested,
        report.detection_shots
            + report.pilot_shots
            + report.total_shots
            + report.shots_saved
            + report.cache_shots_reused
            + report.shots_lost,
        "shot invariant"
    );
    if !report.jobs_per_member.is_empty() {
        // Permanently failed nodes were submitted (executed) but never
        // delivered by any member, so they are the only allowed gap.
        assert_eq!(
            report.jobs_per_member.iter().sum::<u64>() + report.failures.len() as u64,
            report.jobs_executed as u64,
            "per-member deliveries plus permanent failures must sum to the executed jobs"
        );
    }
}

/// A single-member pool is a wrapper, not a different device: the full
/// pipeline produces the bit-identical distribution and accounting, plus
/// the pool-only member fields.
#[test]
fn single_member_ideal_pool_is_bit_identical_to_the_bare_backend() {
    let (circuit, cut) = GoldenAnsatz::new(5, 77).build();
    let opts = options(3000);

    let bare = IdealBackend::new(42);
    let bare_run = CutExecutor::new(&bare)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();

    let pool = BackendPool::new(PlacementPolicy::LeastLoaded).with_backend(IdealBackend::new(42));
    let pool_run = CutExecutor::new(&pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();

    assert_eq!(
        pool_run.distribution.values(),
        bare_run.distribution.values(),
        "a single-member pool must replay the bare backend bit-for-bit"
    );
    assert_eq!(pool_run.report.total_shots, bare_run.report.total_shots);
    assert_eq!(pool_run.report.jobs_executed, bare_run.report.jobs_executed);

    // Only the member accounting differs: the pool itemises its one member.
    assert_eq!(
        pool_run.report.jobs_per_member,
        vec![pool_run.report.jobs_executed as u64]
    );
    assert_eq!(pool_run.report.member_makespan_seconds.len(), 1);
    assert!((pool_run.report.pool_parallel_ratio - 1.0).abs() < 1e-12);
    assert_eq!(pool_run.report.jobs_failed_over, 0);
    assert_report_invariants(&pool_run.report);
}

/// The same contract on a noisy member: sharding must not perturb the
/// noisy backend's deterministic seed streams.
#[test]
fn single_member_noisy_pool_is_bit_identical_to_the_bare_backend() {
    let (circuit, cut) = GoldenAnsatz::new(5, 19).build();
    let opts = options(2000);

    let bare = presets::ibm_5q(7);
    let bare_run = CutExecutor::new(&bare)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();

    let pool = BackendPool::new(PlacementPolicy::RoundRobin).with_backend(presets::ibm_5q(7));
    let pool_run = CutExecutor::new(&pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();

    assert_eq!(
        pool_run.distribution.values(),
        bare_run.distribution.values()
    );
    assert_eq!(pool_run.report.total_shots, bare_run.report.total_shots);
    assert_report_invariants(&pool_run.report);
}

/// A bare (non-pool) run reports empty member vectors and the neutral
/// parallel ratio — the pool fields are strictly additive.
#[test]
fn bare_runs_report_empty_member_accounting() {
    let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
    let backend = IdealBackend::new(9);
    let run = CutExecutor::new(&backend)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options(1000))
        .unwrap();
    assert!(run.report.jobs_per_member.is_empty());
    assert!(run.report.member_makespan_seconds.is_empty());
    assert_eq!(run.report.pool_parallel_ratio, 1.0);
    assert_eq!(run.report.jobs_failed_over, 0);
}

/// A homogeneous 4-member pool reconstructs the same physics (each
/// member is an unbiased sampler) while splitting the simulated device
/// makespan across the members.
#[test]
fn homogeneous_pool_shards_without_changing_the_physics() {
    let (circuit, cut) = GoldenAnsatz::new(5, 11).build();
    let mut pool = BackendPool::new(PlacementPolicy::RoundRobin);
    for seed in 0..4u64 {
        pool =
            pool.with_backend(IdealBackend::new(100 + seed).with_timing(TimingModel::ibm_like()));
    }
    let run = CutExecutor::new(&pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options(4000))
        .unwrap();

    let d = total_variation_distance(&run.distribution, &truth_of(&circuit));
    assert!(d < 0.1, "sharded reconstruction off by {d}");

    assert_eq!(run.report.jobs_per_member.len(), 4);
    assert_eq!(run.report.member_makespan_seconds.len(), 4);
    assert!(
        run.report.jobs_per_member.iter().all(|&j| j > 0),
        "round-robin over 4 members must use every member: {:?}",
        run.report.jobs_per_member
    );
    // Job overhead dominates ibm_like timing, so splitting the fan-out
    // across 4 members must beat a single device's makespan clearly.
    assert!(
        run.report.pool_parallel_ratio > 1.5,
        "parallel ratio {}",
        run.report.pool_parallel_ratio
    );
    assert_report_invariants(&run.report);
}

/// A member that transiently fails one subcircuit hands it to a healthy
/// sibling within the same round: no shots lost, no degradation, one
/// failover on the books — and the reconstruction still matches truth.
#[test]
fn transient_member_fault_fails_over_to_a_sibling() {
    let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let y_circuit = build_upstream_circuit(&frags.upstream, &[MeasBasis::Y]);

    // Everything pins to member 0, which fails the Y-measurement
    // subcircuit once; the default single-attempt retry policy suffices
    // because failover happens before the round counts as lost.
    let pool = BackendPool::new(PlacementPolicy::Pinned(vec![0]))
        .with_backend(FaultInjectingBackend::new(IdealBackend::new(3)).fail_circuit(&y_circuit, 1))
        .with_backend(IdealBackend::new(17));
    let run = CutExecutor::new(&pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options(5000))
        .unwrap();

    assert!(!run.report.degraded);
    assert_eq!(run.report.jobs_failed_over, 1);
    assert_eq!(run.report.shots_lost, 0);
    // The pinned member did everything except the failed-over node.
    assert_eq!(run.report.jobs_per_member[1], 1);
    assert_eq!(
        run.report.attempts,
        run.report.jobs_executed as u64 + 1,
        "exactly one extra (failover) attempt"
    );
    assert_report_invariants(&run.report);

    let d = total_variation_distance(&run.distribution, &truth_of(&circuit));
    assert!(d < 0.1, "failed-over reconstruction off by {d}");
}

/// Warm-start reruns work through a pool: the cold run stores every
/// node under the fingerprint of the member that executed it, and the
/// warm rerun — with deterministic placement assigning the same members
/// — replays bit-identically with zero fresh shots. The members carry
/// distinct fingerprints (different capacities) so this exercises the
/// per-member cache keying, not the pool-identity fallback.
#[test]
fn pool_warm_rerun_is_bit_identical_and_executes_nothing() {
    let (circuit, cut) = GoldenAnsatz::new(5, 77).build();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let opts = ExecutionOptions {
        shots_per_setting: 3000,
        cache: Some(cache.clone()),
        ..Default::default()
    };
    let pool = || {
        BackendPool::new(PlacementPolicy::LeastLoaded)
            .with_backend(IdealBackend::new(1))
            .with_backend(IdealBackend::new(2).with_capacity(16))
    };

    let cold_pool = pool();
    let cold = CutExecutor::new(&cold_pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();
    assert_eq!(cold.report.cache_shots_reused, 0, "first run starts cold");
    assert!(cache.entries() > 0, "the run must populate the cache");

    let warm_pool = pool();
    let warm = CutExecutor::new(&warm_pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();
    assert_eq!(warm.report.total_shots, 0, "warm rerun executes nothing");
    assert_eq!(warm.report.jobs_executed, 0);
    assert!(warm.report.cache_hits > 0);
    assert_eq!(warm.report.cache_shots_reused, warm.report.shots_requested);
    assert_eq!(
        warm.distribution.values(),
        cold.distribution.values(),
        "warm pool reconstruction must be bit-identical to the cold run"
    );
}

/// Fingerprint isolation survives pooling in both directions: histograms
/// an ideal pool stored never serve a noisy pool (and vice versa), and
/// the original entries stay intact for a same-pool warm rerun.
#[test]
fn pool_cache_entries_partition_by_member_fingerprint() {
    let (circuit, cut) = GoldenAnsatz::new(5, 77).build();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let opts = ExecutionOptions {
        shots_per_setting: 2000,
        cache: Some(cache),
        ..Default::default()
    };
    let ideal_pool = || {
        BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(IdealBackend::new(1))
            .with_backend(IdealBackend::new(2))
    };
    let noisy_pool = || {
        BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(presets::ibm_5q(3))
            .with_backend(presets::ibm_5q(4))
    };

    let p1 = ideal_pool();
    CutExecutor::new(&p1)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();

    // Ideal entries must not leak into the noisy pool's run ...
    let p2 = noisy_pool();
    let noisy_run = CutExecutor::new(&p2)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();
    assert_eq!(
        noisy_run.report.cache_shots_reused, 0,
        "ideal-member histograms must never serve a noisy pool"
    );
    assert!(noisy_run.report.total_shots > 0);

    // ... and the noisy run's stores must not evict or shadow them: the
    // ideal pool still replays fully warm.
    let p3 = ideal_pool();
    let warm = CutExecutor::new(&p3)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();
    assert_eq!(warm.report.total_shots, 0);
    assert_eq!(warm.report.cache_shots_reused, warm.report.shots_requested);
}

/// Two-round adaptive allocation schedules both rounds through the pool:
/// pilot and refine shard independently, and the member accounting
/// accumulates across the rounds.
#[test]
fn adaptive_allocation_composes_with_a_pool() {
    let (circuit, cut) = GoldenAnsatz::new(5, 5).build();
    let pool = BackendPool::new(PlacementPolicy::LeastLoaded)
        .with_backend(IdealBackend::new(21).with_timing(TimingModel::ibm_like()))
        .with_backend(IdealBackend::new(22).with_timing(TimingModel::ibm_like()));
    let opts = ExecutionOptions {
        shots_per_setting: 1000,
        allocation: Some(ShotAllocation::Adaptive {
            pilot_fraction: 0.25,
            total: 18_000,
        }),
        ..Default::default()
    };
    let run = CutExecutor::new(&pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();

    assert_eq!(run.report.rounds, 2);
    assert!(run.report.pilot_shots > 0);
    assert_eq!(run.report.jobs_per_member.len(), 2);
    assert_report_invariants(&run.report);

    let d = total_variation_distance(&run.distribution, &truth_of(&circuit));
    assert!(d < 0.1, "adaptive pool reconstruction off by {d}");
}

/// Degradation composes with failover: when only one member loses a
/// subcircuit permanently, the sibling absorbs it and nothing degrades;
/// when every member loses it, `FailurePolicy::Degrade` drops the
/// setting and renormalizes — exactly the single-backend semantics.
#[test]
fn pool_degrades_only_when_every_member_is_down() {
    let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let y_circuit = build_upstream_circuit(&frags.upstream, &[MeasBasis::Y]);
    let opts = ExecutionOptions {
        shots_per_setting: 20_000,
        retry: RetryPolicy::with_attempts(2),
        failure: FailurePolicy::Degrade,
        ..Default::default()
    };

    // Partial outage: member 0 permanently fails the Y subcircuit, but
    // the sibling delivers it — failover wins before degradation starts.
    let partial = BackendPool::new(PlacementPolicy::Pinned(vec![0]))
        .with_backend(
            FaultInjectingBackend::new(IdealBackend::new(3)).fail_circuit(&y_circuit, u32::MAX),
        )
        .with_backend(IdealBackend::new(17));
    let saved = CutExecutor::new(&partial)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();
    assert!(!saved.report.degraded);
    assert!(saved.report.failures.is_empty());
    assert!(saved.report.jobs_failed_over >= 1);
    assert_eq!(saved.report.shots_lost, 0);

    // Total outage: every member fails the Y subcircuit on every
    // attempt, so the node is permanently lost and Degrade salvages the
    // run by neglecting Y (the ansatz is golden at Y, so the salvage is
    // exact in the shot limit).
    let doomed = BackendPool::new(PlacementPolicy::Pinned(vec![0]))
        .with_backend(
            FaultInjectingBackend::new(IdealBackend::new(3)).fail_circuit(&y_circuit, u32::MAX),
        )
        .with_backend(
            FaultInjectingBackend::new(IdealBackend::new(4)).fail_circuit(&y_circuit, u32::MAX),
        );
    let degraded = CutExecutor::new(&doomed)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &opts)
        .unwrap();
    assert!(degraded.report.degraded);
    assert_eq!(degraded.report.failures.len(), 1);
    assert!(degraded.report.shots_lost > 0);
    assert!(degraded.report.neglected[0].contains(&Pauli::Y));
    assert!(degraded.report.variance_inflation > 1.0);
    assert_report_invariants(&degraded.report);
    let d = total_variation_distance(&degraded.distribution, &truth_of(&circuit));
    assert!(d < 0.05, "degraded pool reconstruction off by {d}");
}

/// A noise-aware heterogeneous pool runs the pipeline end to end with
/// every member accounted for and the shot invariant intact.
#[test]
fn noise_aware_heterogeneous_pool_runs_end_to_end() {
    let (circuit, cut) = GoldenAnsatz::new(5, 13).build();
    let pool = BackendPool::new(PlacementPolicy::NoiseAware)
        .with_backend(presets::very_noisy(1))
        .with_backend(IdealBackend::new(2));
    let run = CutExecutor::new(&pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options(2000))
        .unwrap();
    assert_eq!(run.report.jobs_per_member.len(), 2);
    assert_report_invariants(&run.report);
    // The clean member exists and noise-sensitive (wide) fragments pin to
    // it, so the run must not be pure noise.
    assert!(run.report.jobs_per_member[1] > 0);
}
