//! Prefix-sharing engine integration tests: batched execution through the
//! `PrefixForest` must be bit-identical to per-job sequential `run` calls
//! on both backends, across random batches of shared/unshared circuits,
//! with sharing on and off — plus forest shape checks on planner-built
//! workloads.

use proptest::prelude::*;
use qcut::cutting::basis::BasisPlan;
use qcut::cutting::tomography::build_upstream_circuit;
use qcut::device::backend::JobSpec;
use qcut::prelude::*;
use qcut::sim::prefix::PrefixForest;

/// A random batch mixing prefix-sharing families with unrelated circuits.
///
/// Families are built like tomography variants: a random base circuit plus
/// short random suffixes (including the empty suffix, so some circuits are
/// strict prefixes of others). `family_sizes[f] == 1` yields an unshared
/// singleton.
fn random_batch(width: usize, depth: usize, family_sizes: &[u8], seed: u64) -> Vec<Circuit> {
    let mut batch = Vec::new();
    for (f, &size) in family_sizes.iter().enumerate() {
        let base = random_circuit(
            width,
            RandomCircuitConfig {
                depth,
                two_qubit_prob: 0.4,
            },
            seed ^ (f as u64).wrapping_mul(0x9E37),
        );
        for member in 0..size {
            let mut c = base.clone();
            // Member 0 is the bare base; others append 1–3 suffix gates.
            for g in 0..member % 4 {
                let q = (f + g as usize) % width;
                match (member + g) % 3 {
                    0 => c.h(q),
                    1 => c.sdg(q),
                    _ => c.t(q),
                };
            }
            batch.push(c);
        }
    }
    batch
}

fn assert_batched_equals_sequential<B: Backend>(make: impl Fn() -> B, batch: &[Circuit]) {
    let jobs: Vec<JobSpec<'_>> = batch
        .iter()
        .enumerate()
        .map(|(i, c)| JobSpec::new(c, 50 + i as u64))
        .collect();
    let batched = make().run_batch(&jobs);
    let sequential = make();
    for (job, result) in jobs.iter().zip(&batched) {
        let reference = sequential.run(job.circuit, job.shots).unwrap();
        assert_eq!(
            result.as_ref().unwrap().counts,
            reference.counts,
            "batched counts diverged from sequential run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ideal backend: prefix-shared `run_batch` is bit-identical to a
    /// sequential `run` loop on an equally-seeded backend, for any mix of
    /// shared families and unshared singletons.
    #[test]
    fn ideal_prefix_shared_batch_is_bit_identical_to_sequential(
        seed in 0u64..1000,
        width in 2usize..5,
        depth in 1usize..5,
        family_sizes in proptest::collection::vec(1u8..5, 1usize..4),
    ) {
        let batch = random_batch(width, depth, &family_sizes, seed);
        assert_batched_equals_sequential(|| IdealBackend::new(seed ^ 0xA5), &batch);
    }

    /// And the sharing ablation itself never changes counts: sharing on
    /// equals sharing off, job by job.
    #[test]
    fn ideal_sharing_ablation_is_bit_identical(
        seed in 0u64..1000,
        family_sizes in proptest::collection::vec(1u8..5, 1usize..4),
    ) {
        let batch = random_batch(3, 3, &family_sizes, seed);
        let jobs: Vec<JobSpec<'_>> = batch.iter().map(|c| JobSpec::new(c, 120)).collect();
        let on = IdealBackend::new(seed).run_batch(&jobs);
        let off = IdealBackend::new(seed).with_prefix_sharing(false).run_batch(&jobs);
        for (a, b) in on.iter().zip(&off) {
            prop_assert_eq!(&a.as_ref().unwrap().counts, &b.as_ref().unwrap().counts);
        }
    }
}

proptest! {
    // Density-matrix evolution is O(4^n) per gate — keep the noisy cases small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Noisy backend: the prefix-shared density/readout path is
    /// bit-identical to sequential `run` calls too.
    #[test]
    fn noisy_prefix_shared_batch_is_bit_identical_to_sequential(
        seed in 0u64..1000,
        family_sizes in proptest::collection::vec(1u8..4, 1usize..3),
    ) {
        let batch = random_batch(3, 2, &family_sizes, seed);
        assert_batched_equals_sequential(|| presets::ibm_5q(seed ^ 0x5A), &batch);
    }
}

#[test]
fn forest_node_count_matches_distinct_prefixes_of_a_gather() {
    // Planner-shaped workload: one fragment, three rotation variants. The
    // forest must hold exactly one node per distinct prefix segment —
    // root, shared fragment, H suffix, Sdg+H suffix — and one terminal
    // node per distinct circuit.
    let (circuit, cut) = GoldenAnsatz::new(5, 9).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let plan = BasisPlan::standard(1);
    let variants: Vec<Circuit> = plan
        .all_meas_settings()
        .iter()
        .map(|s| build_upstream_circuit(&frags.upstream, s))
        .collect();
    let refs: Vec<&Circuit> = variants.iter().collect();
    let forest = PrefixForest::build(&refs);
    assert_eq!(forest.num_nodes(), 4);
    assert_eq!(forest.num_terminal_nodes(), 3);
    // The shared walk pays the fragment once instead of three times.
    let base = frags.upstream.circuit.len() as u64;
    assert_eq!(forest.gates_naive(), 3 * base + 3); // + H + (Sdg, H)
    assert_eq!(forest.gates_shared(), base + 3);
}

#[test]
fn pipeline_report_carries_prefix_sharing_counters() {
    let (circuit, cut) = GoldenAnsatz::new(5, 12).build();
    let backend = IdealBackend::new(8);
    let options = ExecutionOptions {
        shots_per_setting: 500,
        ..Default::default()
    };
    let run = CutExecutor::new(&backend)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    let r = &run.report;
    assert!(r.gates_applied > 0);
    assert!(
        r.gates_saved > 0,
        "upstream variants share the fragment; the gather must save gates: {r:?}"
    );
    assert!(r.prefix_sharing_ratio() > 0.0 && r.prefix_sharing_ratio() < 1.0);

    // The ablation backend reports no savings and the same distribution
    // shape guarantees (sharing only changes *how* states are computed).
    let ablation = IdealBackend::new(8).with_prefix_sharing(false);
    let off = CutExecutor::new(&ablation)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    assert_eq!(off.report.gates_saved, 0);
    assert_eq!(
        run.distribution.values(),
        off.distribution.values(),
        "prefix sharing must not change a single reconstructed value"
    );
}
