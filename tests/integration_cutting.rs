//! Cross-crate integration tests: the full pipeline against ground truth
//! on ideal and noisy backends, across circuit widths and policies.

use qcut::prelude::*;

fn truth_of(circuit: &Circuit) -> Distribution {
    Distribution::from_values(
        circuit.num_qubits(),
        StateVector::from_circuit(circuit).probabilities(),
    )
}

#[test]
fn pipeline_matches_truth_on_ideal_backend_both_widths() {
    for width in [5usize, 7] {
        let (circuit, cut) = GoldenAnsatz::new(width, 31).build();
        let truth = truth_of(&circuit);
        let backend = IdealBackend::new(3);
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: 20_000,
            ..Default::default()
        };
        for policy in [
            GoldenPolicy::Disabled,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            GoldenPolicy::detect_exact(),
        ] {
            let run = executor
                .run(&circuit, &cut, policy.clone(), &options)
                .unwrap();
            let d = total_variation_distance(&run.distribution, &truth);
            assert!(
                d < 0.06,
                "width {width}, policy {policy:?}: TVD {d} too large"
            );
        }
    }
}

#[test]
fn golden_and_standard_agree_with_each_other() {
    let (circuit, cut) = GoldenAnsatz::new(5, 77).build();
    let backend = IdealBackend::new(8);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 30_000,
        ..Default::default()
    };
    let standard = executor
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    let golden = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &options,
        )
        .unwrap();
    let d = total_variation_distance(&standard.distribution, &golden.distribution);
    assert!(d < 0.05, "methods disagree by {d}");
    assert!(golden.report.total_shots < standard.report.total_shots);
}

#[test]
fn pipeline_works_on_noisy_device() {
    let (circuit, cut) = GoldenAnsatz::new(5, 13).build();
    let truth = truth_of(&circuit);
    let backend = presets::ibm_5q(4);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 10_000,
        ..Default::default()
    };
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &options,
        )
        .unwrap();
    // Noisy: not exact, but in the right neighbourhood.
    let d = total_variation_distance(&run.distribution, &truth);
    assert!(d < 0.35, "noisy reconstruction unreasonably far: {d}");
    // Distribution must be a proper distribution after clipping.
    assert!(run.distribution.is_proper(1e-9));
}

#[test]
fn cutting_lets_small_devices_run_big_circuits() {
    // The motivating use case: a 5-qubit circuit on a 3-qubit device.
    let (circuit, cut) = GoldenAnsatz::new(5, 17).build();
    let small_device = IdealBackend::new(5).with_capacity(3);
    let executor = CutExecutor::new(&small_device);

    // Uncut: impossible.
    assert!(executor.run_uncut(&circuit, 1000).is_err());

    // Cut: both 3-qubit fragments fit.
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &ExecutionOptions {
                shots_per_setting: 20_000,
                ..Default::default()
            },
        )
        .unwrap();
    let d = total_variation_distance(&run.distribution, &truth_of(&circuit));
    assert!(d < 0.06, "cut run on small device off by {d}");
}

#[test]
fn seven_qubit_circuit_on_four_qubit_device() {
    let (circuit, cut) = GoldenAnsatz::new(7, 23).build();
    let small_device = IdealBackend::new(6).with_capacity(4);
    let executor = CutExecutor::new(&small_device);
    assert!(executor.run_uncut(&circuit, 100).is_err());
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &ExecutionOptions {
                shots_per_setting: 20_000,
                ..Default::default()
            },
        )
        .unwrap();
    let d = total_variation_distance(&run.distribution, &truth_of(&circuit));
    assert!(d < 0.08, "7q on 4q device off by {d}");
}

#[test]
fn postprocessing_variants_stay_close() {
    use qcut::cutting::pipeline::PostProcess;
    let (circuit, cut) = GoldenAnsatz::new(5, 41).build();
    let truth = truth_of(&circuit);
    let backend = IdealBackend::new(12);
    let executor = CutExecutor::new(&backend);
    for post in [
        PostProcess::Raw,
        PostProcess::ClipRenormalize,
        PostProcess::SimplexProjection,
    ] {
        let run = executor
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions {
                    shots_per_setting: 20_000,
                    postprocess: post,
                    ..Default::default()
                },
            )
            .unwrap();
        let d = total_variation_distance(&run.distribution.clip_renormalize(), &truth);
        assert!(d < 0.06, "postprocess {post:?} off by {d}");
    }
}

#[test]
fn report_accounting_is_consistent() {
    let (circuit, cut) = GoldenAnsatz::new(5, 53).build();
    let backend = presets::ibm_5q(9);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 1000,
        ..Default::default()
    };
    let run = executor
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .unwrap();
    let r = &run.report;
    assert_eq!(
        r.subcircuits_executed,
        r.upstream_settings + r.downstream_settings
    );
    assert_eq!(r.total_shots, r.subcircuits_executed as u64 * 1000);
    // Device time ≈ subcircuits × (job overhead + shot time).
    let per_job = r.simulated_device_seconds / r.subcircuits_executed as f64;
    assert!(per_job > 1.85 && per_job < 2.6, "per-job time {per_job}");
}
