//! Quickstart: build the paper's 5-qubit golden ansatz (Fig. 2), cut it,
//! run both fragments on the ideal backend, and compare the standard
//! reconstruction against the golden one.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qcut::prelude::*;

fn main() {
    // The paper's Fig. 2 workload: a 5-qubit circuit whose upstream block
    // is real-valued, so the shared wire is a golden cutting point for Y.
    let ansatz = GoldenAnsatz::new(5, 1234);
    let (circuit, cut) = ansatz.build();

    println!(
        "The circuit (cut marked with ✂ on qubit {}):\n",
        ansatz.cut_qubit()
    );
    println!(
        "{}",
        qcut::circuit::diagram::render_with_cuts(&circuit, Some(&cut))
    );

    // Ground truth from the state-vector simulator.
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());

    // Run on the ideal (Aer-like) backend.
    let backend = IdealBackend::new(42);
    let executor = CutExecutor::new(&backend);
    let options = ExecutionOptions {
        shots_per_setting: 10_000,
        ..Default::default()
    };

    let standard = executor
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .expect("standard cutting run");
    let golden = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &options,
        )
        .expect("golden cutting run");

    println!(
        "standard method: {} subcircuits, {} reconstruction terms",
        standard.report.subcircuits_executed, standard.report.reconstruction_terms
    );
    println!(
        "golden method:   {} subcircuits, {} reconstruction terms",
        golden.report.subcircuits_executed, golden.report.reconstruction_terms
    );
    println!(
        "shots saved: {} -> {} ({:.0}%)",
        standard.report.total_shots,
        golden.report.total_shots,
        100.0 * (1.0 - golden.report.total_shots as f64 / standard.report.total_shots as f64)
    );
    println!(
        "engine: {} jobs planned, {} executed, {} shots saved by dedup\n",
        golden.report.jobs_planned, golden.report.jobs_executed, golden.report.shots_saved
    );

    let d_std = weighted_distance(&standard.distribution, &truth);
    let d_gold = weighted_distance(&golden.distribution, &truth);
    println!("weighted distance to ground truth (Eq. 17):");
    println!("  standard: {d_std:.5}");
    println!("  golden:   {d_gold:.5}");
    println!("\nBoth are shot-noise limited — neglecting the Y basis lost nothing.");

    assert_eq!(standard.report.subcircuits_executed, 9);
    assert_eq!(golden.report.subcircuits_executed, 6);
    assert!(
        d_gold < 0.05,
        "golden reconstruction should track the truth"
    );
}
