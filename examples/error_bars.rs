//! Shot-noise error bars on reconstructed distributions — the statistical
//! analysis the paper's §IV calls for ("amplification of error through
//! tensor contraction").
//!
//! Predicts the per-outcome standard error of the reconstruction from one
//! run's data, then validates the prediction against the spread of many
//! independent runs, for both the standard and the golden method.
//!
//! ```text
//! cargo run --release --example error_bars
//! ```

use qcut::cutting::basis::BasisPlan;
use qcut::cutting::execution::gather;
use qcut::cutting::reconstruction::reconstruct;
use qcut::cutting::tomography::ExperimentPlan;
use qcut::cutting::variance::{empirical_variance, reconstruction_variance};
use qcut::prelude::*;

fn main() {
    let (circuit, cut) = GoldenAnsatz::new(5, 2024).build();
    let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
    let shots = 2000u64;
    let trials = 30;

    println!("shot-noise error propagation through reconstruction");
    println!("circuit: 5-qubit golden ansatz, {shots} shots/setting, {trials} repeat trials\n");
    println!(
        "{:<28} {:>10} {:>16} {:>16}",
        "plan", "terms", "predicted RMS", "empirical RMS"
    );

    for (label, plan) in [
        ("standard (4 Pauli terms)", BasisPlan::standard(1)),
        (
            "golden (3 Pauli terms)",
            BasisPlan::with_neglected(vec![Some(Pauli::Y)]),
        ),
    ] {
        let experiment = ExperimentPlan::build(&frags, &plan);
        let mut dists = Vec::with_capacity(trials);
        let mut predicted = 0.0;
        for t in 0..trials {
            let backend = IdealBackend::new(5000 + t as u64);
            let data = gather(&backend, &experiment, shots, true).expect("gather");
            if t == 0 {
                predicted = reconstruction_variance(&frags, &plan, &data).rms_error();
            }
            dists.push(reconstruct(&frags, &plan, &data));
        }
        let emp = empirical_variance(&dists);
        let empirical = (emp.iter().sum::<f64>() / emp.len() as f64).sqrt();
        println!(
            "{label:<28} {:>10} {predicted:>16.6} {empirical:>16.6}",
            plan.all_recon_strings().len()
        );
    }

    println!("\nthe prediction is a slight upper bound (coherent cross-term accounting);");
    println!("the golden plan accumulates noise from fewer contraction terms, so equal");
    println!("per-setting budgets give it equal-or-lower variance — quantifying the");
    println!("paper's 'no accuracy cost' observation.");
}
