//! Two-round variance-adaptive shot allocation through the pipeline.
//!
//! `ShotAllocation::Adaptive` spends `pilot_fraction · total` shots on a
//! uniform pilot round, builds empirical fragment tensors from the pilot's
//! histograms, scores each tomography setting's variance contribution
//! (Neyman: `N ∝ √(usage · |coeff|² · σ̂²)`), and spends the remaining
//! budget where the contraction actually amplifies the noise. The second
//! engine round is *seeded* with the pilot's measurements, so the backend
//! only ever executes the refine increments — the total device cost is
//! exactly `total`, same as the single-round policies.
//!
//! The workload keeps the full standard plan on a golden-structured
//! circuit (its Y coefficients vanish), so the static policies waste
//! budget on settings whose data the contraction multiplies by ≈ 0 —
//! the adaptive pilot notices and reallocates.
//!
//! ```text
//! cargo run --release --example adaptive_allocation
//! ```

use qcut::cutting::allocation::{pilot_schedule, pilot_total, refine_schedule, schedule_for_plan};
use qcut::cutting::basis::BasisPlan;
use qcut::cutting::reconstruction::{exact_downstream_tensor, exact_upstream_tensor};
use qcut::cutting::variance::{neyman_scores, variance_from_schedule};
use qcut::prelude::*;

fn main() {
    let (circuit, cut) = GoldenAnsatz::new(5, 4242).build();
    let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
    let plan = BasisPlan::standard(1);
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let total = 9 * 20_000u64;

    println!("two-round adaptive allocation at a fixed {total}-shot total budget");
    println!("circuit: 5-qubit golden ansatz, full standard single-cut plan\n");
    println!(
        "{:<22} {:>7} {:>12} {:>12} {:>12} {:>8}",
        "policy", "rounds", "pilot shots", "fresh shots", "saved", "TVD"
    );

    for (label, policy) in [
        (
            "uniform (even split)",
            ShotAllocation::TotalBudget { total },
        ),
        (
            "weighted by usage",
            ShotAllocation::WeightedByUsage { total },
        ),
        (
            "adaptive (pilot 10%)",
            ShotAllocation::Adaptive {
                pilot_fraction: 0.1,
                total,
            },
        ),
    ] {
        let backend = IdealBackend::new(7);
        let run = CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions {
                    allocation: Some(policy),
                    ..Default::default()
                },
            )
            .expect("pipeline run");
        let r = &run.report;
        // The exact-accounting invariant every run satisfies:
        assert_eq!(
            r.shots_requested,
            r.detection_shots + r.pilot_shots + r.total_shots + r.shots_saved
        );
        // … and every policy costs the same fresh device shots.
        assert_eq!(r.pilot_shots + r.total_shots, total);
        let tvd = total_variation_distance(&run.distribution, &truth);
        println!(
            "{label:<22} {:>7} {:>12} {:>12} {:>12} {tvd:>8.4}",
            r.rounds, r.pilot_shots, r.total_shots, r.shots_saved,
        );
    }

    // Where did the budget move? Score the static schedules and the
    // adaptive pilot → Neyman-refine schedule (built here from exact
    // tensors — the noiseless-pilot limit) under the same deterministic
    // variance model.
    let up = exact_upstream_tensor(&frags.upstream, &plan);
    let down = exact_downstream_tensor(&frags.downstream, &plan);
    println!("\npredicted RMS error (exact tensors, same total):");
    for (label, policy) in [
        (
            "uniform (even split)",
            ShotAllocation::TotalBudget { total },
        ),
        (
            "weighted by usage",
            ShotAllocation::WeightedByUsage { total },
        ),
    ] {
        let sched = schedule_for_plan(&plan, policy).expect("budget covers the plan");
        let rms = variance_from_schedule(&frags, &plan, &up, &down, &sched).rms_error();
        println!("  {label:<22} {rms:.6}");
    }
    let pilot = pilot_total(0.1, total);
    let pilot_sched = pilot_schedule(3, 6, pilot).expect("pilot covers the plan");
    let scores = neyman_scores(&frags, &plan, &up, &down);
    let adaptive = refine_schedule(
        &pilot_sched,
        &scores.upstream,
        &scores.downstream,
        total - pilot,
    );
    assert_eq!(adaptive.total(), total);
    let rms = variance_from_schedule(&frags, &plan, &up, &down, &adaptive).rms_error();
    println!("  {:<22} {rms:.6}", "adaptive (pilot 10%)");
    println!(
        "\nthe adaptive run reallocates the refine budget away from the Y\n\
         setting and Y-only preparations (their empirical coefficients\n\
         vanish on this ansatz), recovering a golden-style shot economy\n\
         without being told which basis is negligible; see\n\
         BENCH_adaptive_allocation.json for the variance-per-shot numbers."
    );
}
