//! Multi-cut bipartitions: `K` wires crossing the cut, with every cut
//! independently golden (product-structured real upstream blocks). Shows
//! the `§II-B` scaling — `6^K → 4^K` preparations, `4^K → 3^K`
//! contraction terms — and verifies accuracy end to end.
//!
//! ```text
//! cargo run --release --example multi_cut
//! ```

use qcut::circuit::ansatz::MultiCutAnsatz;
use qcut::prelude::*;

fn main() {
    println!("multi-cut golden bipartitions (paper §II-B scaling)\n");
    println!(
        "{:>2} {:>7} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7} | {:>10}",
        "K",
        "qubits",
        "meas std",
        "preps std",
        "terms",
        "meas gold",
        "preps gold",
        "terms",
        "d_w golden"
    );

    for k in 1..=3usize {
        let ansatz = MultiCutAnsatz::new(k, 55);
        let (circuit, cut) = ansatz.build();
        let truth = Distribution::from_values(
            circuit.num_qubits(),
            StateVector::from_circuit(&circuit).probabilities(),
        );

        let backend = IdealBackend::new(77 + k as u64);
        let executor = CutExecutor::new(&backend);
        let shots = 30_000u64 / k as u64; // keep the example quick
        let options = ExecutionOptions {
            shots_per_setting: shots,
            ..Default::default()
        };

        let standard = executor
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
            .expect("standard run");
        // Exact detection discovers that *every* cut is golden for Y.
        let golden = executor
            .run(&circuit, &cut, GoldenPolicy::detect_exact(), &options)
            .expect("golden run");

        assert!(golden
            .report
            .neglected
            .iter()
            .all(|n| n.contains(&Pauli::Y)));

        let d = weighted_distance(&golden.distribution, &truth);
        println!(
            "{k:>2} {:>7} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7} | {d:>10.5}",
            circuit.num_qubits(),
            standard.report.upstream_settings,
            standard.report.downstream_settings,
            standard.report.reconstruction_terms,
            golden.report.upstream_settings,
            golden.report.downstream_settings,
            golden.report.reconstruction_terms,
        );
    }

    println!("\nexpected: meas 3^K -> 2^K, preps 6^K -> 4^K, terms 4^K -> 3^K.");
    println!("every cut was detected golden automatically (DetectExact policy).");
}
