//! Fault-tolerant execution: deterministic fault injection, retries, and
//! graceful degraded reconstruction.
//!
//! Real device fleets fail transiently — throttled submissions, dropped
//! jobs, mid-queue recalibrations. This example wraps the ideal backend
//! in a [`FaultInjectingBackend`] with a deterministic fault schedule and
//! walks the three pipeline responses:
//!
//! 1. **Retry** (`RetryPolicy`): transient faults are re-submitted inside
//!    the engine — only the failed nodes, with deterministic backoff
//!    *accounting* (never slept) — and the recovered run is bit-identical
//!    to the fault-free one.
//! 2. **Fail** (`FailurePolicy::Fail`, the default): a permanent failure
//!    raises a typed [`PipelineError::Execution`] naming the failed nodes
//!    and the consumers whose data was already delivered.
//! 3. **Degrade** (`FailurePolicy::Degrade`): the affected basis settings
//!    are dropped (like neglecting a golden basis, but forced), the
//!    reconstruction renormalizes over the survivors, and the report
//!    itemizes the damage — `degraded`, per-node `failures`, and the
//!    `variance_inflation` paid for the lost terms.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use qcut::cutting::tomography::build_upstream_circuit;
use qcut::prelude::*;
use std::time::Duration;

fn main() {
    let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let shots = 20_000;

    // -----------------------------------------------------------------
    // 1. Transient faults + retries: recovery is bit-identical.
    // -----------------------------------------------------------------
    println!("1. transient faults, retried");
    println!("   every subcircuit fails its first 2 submissions, 4 attempts allowed\n");

    let flaky = FaultInjectingBackend::new(IdealBackend::new(3)).fail_first(2);
    let retrying = ExecutionOptions {
        shots_per_setting: shots,
        retry: RetryPolicy {
            max_attempts: 4,
            backoff: Backoff::Exponential {
                base: Duration::from_secs(1),
                factor: 2,
                cap: Duration::from_secs(30),
            },
            per_job_timeout: None,
        },
        ..Default::default()
    };
    let recovered = CutExecutor::new(&flaky)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &retrying)
        .expect("retries outlast the fault schedule");

    let clean_backend = IdealBackend::new(3);
    let clean = CutExecutor::new(&clean_backend)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &ExecutionOptions {
                shots_per_setting: shots,
                ..Default::default()
            },
        )
        .expect("fault-free run");

    let d = total_variation_distance(&recovered.distribution, &clean.distribution);
    println!("   attempts           : {}", recovered.report.attempts);
    println!("   retries            : {}", recovered.report.jobs_retried);
    println!(
        "   backoff (accounted): {:.1} s, never slept",
        recovered.report.backoff_seconds
    );
    println!("   TVD vs clean run   : {d:.3e} (bit-identical)\n");

    // -----------------------------------------------------------------
    // 2. Permanent failure under the default Fail policy: typed error.
    // -----------------------------------------------------------------
    println!("2. permanent failure, FailurePolicy::Fail");
    println!("   the Y-measurement subcircuit fails on every attempt\n");

    let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
    let y_circuit = build_upstream_circuit(&frags.upstream, &[MeasBasis::Y]);
    let broken =
        FaultInjectingBackend::new(IdealBackend::new(3)).fail_circuit(&y_circuit, u32::MAX);

    let failing = ExecutionOptions {
        shots_per_setting: shots,
        retry: RetryPolicy::with_attempts(3),
        ..Default::default()
    };
    match CutExecutor::new(&broken).run(&circuit, &cut, GoldenPolicy::Disabled, &failing) {
        Err(PipelineError::Execution(failure)) => {
            println!("   typed error: {} node(s) failed", failure.failed.len());
            for f in &failure.failed {
                println!(
                    "     {} consumer setting(s) after {} attempts, {} shots lost: {}",
                    f.consumers.len(),
                    f.attempts,
                    f.shots_lost,
                    f.error
                );
            }
            println!(
                "   {} consumer(s) had already delivered (salvageable)\n",
                failure.succeeded.len()
            );
        }
        other => println!("   unexpected outcome: {other:?}"),
    }

    // -----------------------------------------------------------------
    // 3. The same failure under Degrade: renormalized reconstruction.
    // -----------------------------------------------------------------
    println!("3. permanent failure, FailurePolicy::Degrade");
    println!("   the lost Y setting is neglected, survivors renormalized\n");

    let degrading = ExecutionOptions {
        shots_per_setting: shots,
        retry: RetryPolicy::with_attempts(3),
        failure: FailurePolicy::Degrade,
        ..Default::default()
    };
    let degraded = CutExecutor::new(&broken)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &degrading)
        .expect("degrades instead of failing");

    let d = total_variation_distance(&degraded.distribution, &truth);
    println!("   degraded           : {}", degraded.report.degraded);
    println!("   neglected at cut 0 : {:?}", degraded.report.neglected[0]);
    println!(
        "   reconstruction     : {} of 4 terms",
        degraded.report.reconstruction_terms
    );
    println!(
        "   variance inflation : ×{:.3}",
        degraded.report.variance_inflation
    );
    println!("   shots lost         : {}", degraded.report.shots_lost);
    println!("   TVD vs exact truth : {d:.4}");
    println!("   (this ansatz is golden at Y, so the forced neglect is benign)");
}
