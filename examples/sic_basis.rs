//! The SIC preparation alternative (paper §II-B): 4 downstream states per
//! cut instead of 6, at the cost of solving a linear system during
//! reconstruction. Compares subcircuit counts, accuracy, and where the
//! golden method fits in.
//!
//! ```text
//! cargo run --release --example sic_basis
//! ```

use qcut::cutting::pipeline::ReconstructionMethod;
use qcut::cutting::sic::SicFrame;
use qcut::prelude::*;

fn main() {
    println!("SIC vs eigenstate downstream preparations (paper §II-B)\n");

    // The frame weights: P = Σ_j α_j |ψ_j><ψ_j| for each Pauli.
    let frame = SicFrame::new();
    println!("SIC frame coefficients α_j (rows: I, X, Y, Z; columns: ψ0..ψ3):");
    for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
        let a = frame.coefficients(p);
        println!(
            "  {p}:  {:+.4}  {:+.4}  {:+.4}  {:+.4}",
            a[0], a[1], a[2], a[3]
        );
    }

    let (circuit, cut) = GoldenAnsatz::new(5, 21).build();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let backend = IdealBackend::new(33);
    let executor = CutExecutor::new(&backend);

    println!(
        "\n{:<34} {:>12} {:>10} {:>12}",
        "scheme", "subcircuits", "shots", "d_w"
    );
    for (label, method, policy) in [
        (
            "eigenstate, standard (6 preps)",
            ReconstructionMethod::Eigenstate,
            GoldenPolicy::Disabled,
        ),
        (
            "eigenstate, golden   (4 preps)",
            ReconstructionMethod::Eigenstate,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
        ),
        (
            "SIC                  (4 preps)",
            ReconstructionMethod::Sic,
            GoldenPolicy::Disabled,
        ),
        (
            "SIC + golden terms   (4 preps)",
            ReconstructionMethod::Sic,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
        ),
    ] {
        let options = ExecutionOptions {
            shots_per_setting: 20_000,
            method,
            ..Default::default()
        };
        let run = executor
            .run(&circuit, &cut, policy, &options)
            .expect("pipeline run");
        let d = weighted_distance(&run.distribution, &truth);
        println!(
            "{label:<34} {:>12} {:>10} {:>12.5}",
            run.report.subcircuits_executed, run.report.total_shots, d
        );
    }

    println!("\nSIC reaches 4 preparations without golden structure (any circuit),");
    println!("golden reaches 4 preparations *and* 2 measurement settings (designed circuits),");
    println!("and the two compose: golden shrinks the SIC contraction from 4 to 3 Pauli terms.");
}
