//! Shot-allocation policies through the pipeline: the paper's uniform
//! protocol vs an even total-budget split vs usage-weighted budgets —
//! all at the same total device cost, all through `CutExecutor::run`.
//!
//! The weighted policy skews the budget toward the settings more
//! reconstruction terms consume (the upstream `Z` setting feeds both the
//! `I` and `Z` strings; `Z`-basis preparations serve both too), which
//! lowers the estimated reconstruction variance at equal cost.
//!
//! ```text
//! cargo run --release --example shot_allocation
//! ```

use qcut::cutting::allocation::schedule_for_plan;
use qcut::cutting::basis::BasisPlan;
use qcut::cutting::reconstruction::{exact_downstream_tensor, exact_upstream_tensor};
use qcut::cutting::variance::variance_from_schedule;
use qcut::prelude::*;

fn main() {
    let (circuit, cut) = GoldenAnsatz::new(5, 4242).build();
    let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
    let plan = BasisPlan::standard(1);
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let total = 9 * 20_000u64; // 9 settings × the paper's accuracy budget

    println!("shot-allocation policies at a fixed {total}-shot total budget");
    println!("circuit: 5-qubit golden ansatz, standard single-cut plan\n");
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>10}",
        "policy", "min shots", "max shots", "predicted RMS", "TVD"
    );

    let up = exact_upstream_tensor(&frags.upstream, &plan);
    let down = exact_downstream_tensor(&frags.downstream, &plan);

    for (label, policy) in [
        (
            "uniform (paper)",
            ShotAllocation::Uniform {
                shots_per_setting: total / 9,
            },
        ),
        ("total budget (even)", ShotAllocation::TotalBudget { total }),
        (
            "weighted by usage",
            ShotAllocation::WeightedByUsage { total },
        ),
    ] {
        let sched = schedule_for_plan(&plan, policy).expect("budget covers the plan");
        let rms = variance_from_schedule(&frags, &plan, &up, &down, &sched).rms_error();
        let backend = IdealBackend::new(7);
        let run = CutExecutor::new(&backend)
            .run(
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &ExecutionOptions {
                    allocation: Some(policy),
                    ..Default::default()
                },
            )
            .expect("pipeline run");
        let tvd = total_variation_distance(&run.distribution, &truth);
        assert_eq!(run.report.allocation, policy);
        println!(
            "{label:<22} {:>12} {:>12} {rms:>14.6} {tvd:>10.4}",
            sched.min_shots(),
            sched.max_shots(),
        );
    }

    println!("\nall three spend the same total; the weighted split trades shots from");
    println!("the X/Y settings (one consumer each) to the Z settings (two consumers),");
    println!("lowering the variance estimate without touching the reconstruction math.");
    println!("under-sized budgets fail with a typed error instead of a panic:");
    let err = schedule_for_plan(&plan, ShotAllocation::TotalBudget { total: 5 }).unwrap_err();
    println!("  schedule_for_plan(total = 5) -> {err}");
}
