//! Online golden-point detection (the paper's §IV future work): decide
//! from sequential measurement batches — without simulating the circuit —
//! whether the Y basis can be neglected.
//!
//! Runs the detector against a designed-golden circuit (should accept) and
//! a non-golden circuit (should reject), reporting shots-to-decision.
//!
//! ```text
//! cargo run --release --example online_detection
//! ```

use qcut::cutting::golden::{
    simulate_upstream_setting, GoldenVerdict, OnlineConfig, OnlineDetector,
};
use qcut::prelude::*;

fn drive_detector(name: &str, upstream: &qcut::cutting::fragment::Fragment, seed0: u64) {
    let config = OnlineConfig {
        candidate: Pauli::Y,
        epsilon: 0.06,
        delta: 0.01,
        batch_shots: 1000,
        max_shots: 50_000,
    };
    let mut detector = OnlineDetector::new(upstream, 0, 1, config);
    let mut batches = 0u64;
    let verdict = loop {
        match detector.verdict() {
            GoldenVerdict::Undecided if !detector.exhausted() => {
                for setting in detector.required_settings() {
                    let counts = simulate_upstream_setting(
                        upstream,
                        &setting,
                        config.batch_shots,
                        seed0 + batches,
                    );
                    detector.feed(&setting, &counts);
                    batches += 1;
                }
            }
            v => break v,
        }
    };
    println!(
        "{name:<28} verdict = {verdict:?} after {} shots/setting",
        detector.min_shots()
    );
}

fn main() {
    println!("online golden-point detection (paper §IV), candidate basis = Y\n");

    // Designed-golden circuit: real upstream.
    let (golden_circuit, golden_cut) = GoldenAnsatz::new(5, 7).build();
    let golden_frags = Fragmenter::fragment(&golden_circuit, &golden_cut).unwrap();
    drive_detector("golden ansatz (real U1)", &golden_frags.upstream, 10);

    // Non-golden circuit: RX + RZ upstream put information into Y.
    let mut c = Circuit::new(3);
    c.rx(1.1, 0).rx(0.9, 1).cx(0, 1).rz(0.8, 1).cx(1, 2);
    let spec = CutSpec::single(1, 2);
    let frags = Fragmenter::fragment(&c, &spec).unwrap();
    drive_detector("rx/rz circuit (Y informative)", &frags.upstream, 20);

    // Borderline circuit: a *small* RX leak into the upstream — the
    // detector needs more shots the closer the coefficient is to the
    // threshold.
    for leak in [0.30, 0.15] {
        let mut b = Circuit::new(3);
        b.ry(0.7, 0).ry(1.3, 1).cx(0, 1).rx(leak, 1).cx(1, 2);
        let spec = CutSpec::single(1, 2);
        let frags = Fragmenter::fragment(&b, &spec).unwrap();
        drive_detector(
            &format!("leaky circuit (rx {leak:.2})"),
            &frags.upstream,
            30,
        );
    }

    println!("\nsmaller leaks sit closer to epsilon and cost more shots to classify —");
    println!("the error-vs-shots trade-off the paper's §IV anticipates.");

    // End-to-end: when the verdict is NotGolden the detection batches are
    // not wasted — the JobGraph engine seeds them into the main gather, so
    // the Y setting needs fewer fresh shots.
    let backend = IdealBackend::new(55);
    let run = CutExecutor::new(&backend)
        .run(
            &c,
            &spec,
            GoldenPolicy::DetectOnline(OnlineConfig {
                epsilon: 0.05,
                batch_shots: 2000,
                ..OnlineConfig::default()
            }),
            &ExecutionOptions {
                shots_per_setting: 4000,
                ..Default::default()
            },
        )
        .expect("online pipeline run");
    println!(
        "\npipeline on the non-golden circuit: {} detection shots, {} reused \
         by the gather ({} jobs planned, {} executed)",
        run.report.detection_shots,
        run.report.shots_saved,
        run.report.jobs_planned,
        run.report.jobs_executed
    );
    assert!(run.report.shots_saved > 0);
}
