//! A compressed version of the paper's full evaluation on the simulated
//! 5-qubit IBM-like device: accuracy (Fig. 3 arms) and device wall time
//! (Fig. 5 arms) in one run.
//!
//! ```text
//! cargo run --release --example golden_vs_standard
//! ```

use qcut::prelude::*;

fn main() {
    let trials = 5;
    let shots = 2000;
    println!(
        "golden vs standard on the simulated 5q device ({trials} trials, {shots} shots/setting)\n"
    );

    let mut rows = Vec::new();
    for trial in 0..trials {
        let (circuit, cut) = GoldenAnsatz::new(5, 100 + trial).build();
        let truth =
            Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
        let backend = presets::ibm_5q(500 + trial);
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: shots,
            ..Default::default()
        };

        let uncut = executor.run_uncut(&circuit, shots).unwrap();
        let standard = executor
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
            .unwrap();
        let golden = executor
            .run(
                &circuit,
                &cut,
                GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
                &options,
            )
            .unwrap();

        rows.push((
            weighted_distance(&uncut.distribution, &truth),
            weighted_distance(&standard.distribution, &truth),
            weighted_distance(&golden.distribution, &truth),
            standard.report.simulated_device_seconds,
            golden.report.simulated_device_seconds,
        ));
    }

    println!(
        "{:>5}  {:>12} {:>12} {:>12}   {:>12} {:>12}",
        "trial", "d_w uncut", "d_w standard", "d_w golden", "t_std (s)", "t_gold (s)"
    );
    for (i, (du, ds, dg, ts, tg)) in rows.iter().enumerate() {
        println!("{i:>5}  {du:>12.5} {ds:>12.5} {dg:>12.5}   {ts:>12.2} {tg:>12.2}");
    }

    let mean = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| -> f64 {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    let t_std = mean(|r| r.3);
    let t_gold = mean(|r| r.4);
    println!(
        "\nmean device time: standard {:.2} s, golden {:.2} s  ({:.0}% saved — paper: 33%)",
        t_std,
        t_gold,
        100.0 * (1.0 - t_gold / t_std)
    );
    println!(
        "mean accuracy:   d_w(uncut) {:.4}, d_w(standard) {:.4}, d_w(golden) {:.4}",
        mean(|r| r.0),
        mean(|r| r.1),
        mean(|r| r.2)
    );
    println!("golden ≈ standard in accuracy: the neglected basis carried no information.");
}
