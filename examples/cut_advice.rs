//! Cut adviser: rank every wire edge of the paper's Fig. 2 ansatz by
//! the dataflow analysis (stabilizer proofs + light cones + variance
//! surrogate), then execute the advised cut under
//! `GoldenPolicy::ProveStatic` — golden bases proven at compile time,
//! zero detection shots spent.
//!
//! ```text
//! cargo run --release --example cut_advice
//! ```

use qcut::prelude::*;

fn main() {
    let ansatz = GoldenAnsatz::new(5, 4);
    let (circuit, designed) = ansatz.build();
    let designed_loc = designed.cuts()[0];

    println!(
        "The circuit (designed cut marked with ✂ on qubit {}):\n",
        ansatz.cut_qubit()
    );
    println!(
        "{}",
        qcut::circuit::diagram::render_with_cuts(&circuit, Some(&designed))
    );

    // 1. Ask the adviser to rank every wire edge. The report combines
    //    the stabilizer-tableau proof (which bases are golden for free),
    //    the light-cone fragment widths, and the variance surrogate.
    let report = cut_report(&circuit, &AnalysisConfig::default());
    println!(
        "cut adviser report ({} candidates):",
        report.candidates.len()
    );
    for (i, c) in report.candidates.iter().enumerate() {
        if !c.feasible {
            continue;
        }
        let marker = if Some(i) == report.best {
            " <= best"
        } else {
            ""
        };
        println!(
            "  (q{}, pos {}): {} settings, proven {:?}, predicted RMS {}{}",
            c.qubit,
            c.position,
            c.settings,
            c.proven_golden,
            c.predicted_rms
                .map_or_else(|| "n/a".to_string(), |v| format!("{v:.4}")),
            marker
        );
    }

    let best = report.best_candidate().expect("the ansatz is cuttable");
    assert_eq!(
        (best.qubit, best.position),
        (designed_loc.qubit, designed_loc.after_op),
        "the adviser must recover the designed golden cut"
    );
    println!(
        "\nadvised cut: (q{}, pos {}) — matches the designed golden wire",
        best.qubit, best.position
    );

    // 2. Execute the advised cut with statically proven golden bases:
    //    the prover replaces the paper's detection phase entirely, so
    //    the whole budget goes to the reconstruction estimate.
    let spec = CutSpec::single(best.qubit, best.position);
    let backend = IdealBackend::new(42);
    let options = ExecutionOptions {
        shots_per_setting: 10_000,
        ..Default::default()
    };
    let run = CutExecutor::new(&backend)
        .run(&circuit, &spec, GoldenPolicy::ProveStatic, &options)
        .expect("advised cut executes");
    assert_eq!(
        run.report.detection_shots, 0,
        "statically proven bases must not spend detection shots"
    );

    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let tvd = total_variation_distance(&run.distribution, &truth);
    println!(
        "ProveStatic run: neglected {:?}, detection shots {}, {} total shots, TVD to truth {:.4}",
        run.report.neglected, run.report.detection_shots, run.report.total_shots, tvd
    );
    assert!(tvd < 0.05, "reconstruction must track the truth");
}
