//! Parameter sweeps with the cross-run warm-start cache.
//!
//! A sweep varies one circuit parameter while everything else repeats.
//! Attaching a [`WarmCache`] to `ExecutionOptions::cache` makes the
//! pipeline exploit that repetition across *runs*:
//!
//! * **tier 1** — per-node measurement histograms, keyed by
//!   `(structural hash, backend fingerprint, shot discipline)`. The
//!   θ-free upstream fragment is identical at every sweep point, so
//!   after the first point its settings are served from the cache; a
//!   full replay of the sweep executes zero fresh shots and reproduces
//!   the bit-identical distributions.
//! * **tier 2** — simulator fork states (`IdealBackend::with_state_reuse`).
//!   The downstream settings share their pre-θ prefix across points, so
//!   later points resume from cached statevectors and only re-simulate
//!   the divergent suffix.
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use qcut::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// One sweep point: 8 qubits, cut after qubit 3's upstream block; θ only
/// appears in the downstream suffix on the last wire.
fn sweep_circuit(theta: f64) -> (Circuit, CutSpec) {
    const WIDTH: usize = 8;
    const CUT_QUBIT: usize = 3;
    let mut c = Circuit::new(WIDTH);
    for q in 0..=CUT_QUBIT {
        c.ry(0.4 + 0.3 * q as f64, q);
    }
    for q in 0..CUT_QUBIT {
        c.cx(q, q + 1);
    }
    let cut_pos = c
        .instructions()
        .iter()
        .filter(|i| i.acts_on(CUT_QUBIT))
        .count()
        - 1;
    for q in CUT_QUBIT..WIDTH {
        c.rx(0.25 * (q + 1) as f64, q);
    }
    for q in CUT_QUBIT..WIDTH - 1 {
        c.cx(q, q + 1);
    }
    c.rz(theta, WIDTH - 1); // the swept parameter
    (c, CutSpec::single(CUT_QUBIT, cut_pos))
}

fn main() {
    let thetas: Vec<f64> = (0..6).map(|i| 0.5 + 0.9 * i as f64).collect();
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let options = ExecutionOptions {
        shots_per_setting: 10_000,
        cache: Some(cache.clone()),
        ..Default::default()
    };

    // Tier 2 needs a backend that keeps fork states across runs.
    let backend = IdealBackend::new(11).with_state_reuse(32);
    let executor = CutExecutor::new(&backend);

    println!("priming sweep (cache filling as it goes):");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>13} {:>14}",
        "theta", "time", "fresh shots", "cache hits", "shots reused", "states reused"
    );
    let mut cold = Vec::new();
    for (i, &theta) in thetas.iter().enumerate() {
        let (circuit, cut) = sweep_circuit(theta);
        let start = Instant::now();
        let run = executor
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
            .expect("pipeline run");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let r = &run.report;
        println!(
            "{theta:>8.3} {ms:>7.2}ms {:>12} {:>12} {:>13} {:>14}",
            r.total_shots, r.cache_hits, r.cache_shots_reused, r.states_reused
        );
        if i > 0 {
            // Every later point reuses the θ-free upstream histograms.
            assert!(r.cache_hits > 0, "point {i} must hit the cache");
        }
        cold.push(run);
    }

    println!("\nwarm replay of the identical sweep (different backend seed):");
    let replay_backend = IdealBackend::new(5050);
    let replay = CutExecutor::new(&replay_backend);
    for (i, &theta) in thetas.iter().enumerate() {
        let (circuit, cut) = sweep_circuit(theta);
        let start = Instant::now();
        let run = replay
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
            .expect("pipeline run");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let r = &run.report;
        println!(
            "{theta:>8.3} {ms:>7.2}ms {:>12} {:>12} {:>13} {:>14}",
            r.total_shots, r.cache_hits, r.cache_shots_reused, r.states_reused
        );
        assert_eq!(r.total_shots, 0, "a warm replay executes nothing");
        assert_eq!(
            run.distribution.values(),
            cold[i].distribution.values(),
            "warm reconstruction is bit-identical to the priming run"
        );
    }

    println!(
        "\n{} cached entries; the warm replay executed zero fresh shots and\n\
         reproduced every distribution bit for bit. Point the cache at a\n\
         file (CacheConfig::at_path) to carry the histograms across\n\
         processes — see BENCH_warm_cache.json for the sweep speedups.",
        cache.entries()
    );
}
