//! Multi-backend sharding: one cutting run fanned out across a pool of
//! devices.
//!
//! A [`BackendPool`] puts any set of backends — ideal, noisy, flaky —
//! behind the one [`Backend`] facade the pipeline already speaks, and
//! shards every engine submission across the members under a
//! [`PlacementPolicy`]. This example walks the three behaviours that
//! matter in practice:
//!
//! 1. **Makespan sharding** (`RoundRobin` / `LeastLoaded`): the paper's
//!    9-subcircuit standard protocol on IBM-like timing is per-job
//!    overhead bound, so a 4-member pool cuts the gather makespan by the
//!    job-count ratio — the report itemises per-member jobs and
//!    makespans.
//! 2. **Noise-aware placement** (`NoiseAware`): on a mixed fleet, the
//!    noise-sensitive (wide) subcircuits pin to the low-noise tier while
//!    narrow jobs keep every member busy.
//! 3. **Sibling failover**: a member that transiently drops a subcircuit
//!    hands it to a healthy sibling *within the same round* — no shots
//!    lost, no degradation, and the swap is bit-identical to having
//!    pinned the job to the sibling from the start.
//!
//! ```text
//! cargo run --release --example backend_pool
//! ```

use qcut::cutting::tomography::build_upstream_circuit;
use qcut::prelude::*;

fn main() {
    let (circuit, cut) = GoldenAnsatz::new(5, 11).build();
    let truth = Distribution::from_values(5, StateVector::from_circuit(&circuit).probabilities());
    let options = ExecutionOptions {
        shots_per_setting: 2000,
        ..Default::default()
    };

    // -----------------------------------------------------------------
    // 1. Homogeneous sharding: 1 device vs a 4-member pool.
    // -----------------------------------------------------------------
    println!("1. homogeneous sharding, RoundRobin over 4 members");

    let single = IdealBackend::new(1000).with_timing(TimingModel::ibm_like());
    let baseline = CutExecutor::new(&single)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .expect("single-device run");

    let mut pool = BackendPool::new(PlacementPolicy::RoundRobin);
    for seed in 0..4u64 {
        pool =
            pool.with_backend(IdealBackend::new(1000 + seed).with_timing(TimingModel::ibm_like()));
    }
    let sharded = CutExecutor::new(&pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .expect("pool run");

    let makespan = sharded
        .report
        .member_makespan_seconds
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    println!(
        "   single device      : {} jobs, {:.1} s simulated",
        baseline.report.jobs_executed, baseline.report.simulated_device_seconds
    );
    println!(
        "   4-member pool      : jobs per member {:?}, makespan {makespan:.1} s",
        sharded.report.jobs_per_member
    );
    println!(
        "   makespan speedup   : {:.2}x (parallel ratio {:.2})",
        baseline.report.simulated_device_seconds / makespan,
        sharded.report.pool_parallel_ratio
    );
    let d = total_variation_distance(&sharded.distribution, &truth);
    println!("   TVD vs exact truth : {d:.4}\n");

    // -----------------------------------------------------------------
    // 2. Noise-aware placement on a mixed fleet.
    // -----------------------------------------------------------------
    println!("2. noise-aware placement, mixed fleet");

    let mixed = BackendPool::new(PlacementPolicy::NoiseAware)
        .with_backend(presets::very_noisy(7))
        .with_backend(IdealBackend::new(8));
    for info in mixed.member_info() {
        println!(
            "   member {:<12} capacity {:>2}, noise score {:.4}",
            info.name, info.capacity, info.noise_score
        );
    }
    let clean = CutExecutor::new(&mixed)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .expect("noise-aware run");
    println!(
        "   jobs per member    : {:?} (sensitive fragments pin to the clean tier)",
        clean.report.jobs_per_member
    );
    let d = total_variation_distance(&clean.distribution, &truth);
    println!("   TVD vs exact truth : {d:.4}\n");

    // -----------------------------------------------------------------
    // 3. Sibling failover absorbs a transient member fault.
    // -----------------------------------------------------------------
    println!("3. sibling failover, member 0 drops the Y subcircuit once");

    let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
    let y_circuit = build_upstream_circuit(&frags.upstream, &[MeasBasis::Y]);
    let flaky_pool = BackendPool::new(PlacementPolicy::Pinned(vec![0]))
        .with_backend(FaultInjectingBackend::new(IdealBackend::new(3)).fail_circuit(&y_circuit, 1))
        .with_backend(IdealBackend::new(17));
    let saved = CutExecutor::new(&flaky_pool)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
        .expect("failover absorbs the fault");

    println!("   jobs failed over   : {}", saved.report.jobs_failed_over);
    println!("   shots lost         : {}", saved.report.shots_lost);
    println!("   degraded           : {}", saved.report.degraded);
    println!(
        "   jobs per member    : {:?} (the sibling delivered the dropped node)",
        saved.report.jobs_per_member
    );
    let d = total_variation_distance(&saved.distribution, &truth);
    println!("   TVD vs exact truth : {d:.4}");

    assert_eq!(saved.report.jobs_failed_over, 1);
    assert_eq!(saved.report.shots_lost, 0);
    assert!(!saved.report.degraded);
}
