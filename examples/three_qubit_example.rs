//! The paper's §II-A three-qubit example (Fig. 1), reproduced end to end:
//!
//! `ρ = U23 U12 |000><000| U12† U23†`, with the wire of the middle qubit
//! cut between the two blocks.
//!
//! Two workloads are walked through:
//!
//! * **Bell-pair `U12`** — the state the paper uses to illustrate both
//!   golden mechanisms. With the bitstring-projector observable of §III,
//!   the Bell state's X *and* Y upstream coefficients vanish (only the ZZ
//!   correlation is diagonal), so the cut is *doubly* golden: the 16-term
//!   sum of Eq. 7 collapses to 8 terms and 9 subcircuits become 3.
//! * **Generic real `U12`** — the paper's experimental regime: only Y is
//!   negligible, 16 terms become 12 and 9 subcircuits become 6.
//!
//! ```text
//! cargo run --release --example three_qubit_example
//! ```

use qcut::cutting::basis::BasisPlan;
use qcut::cutting::reconstruction::{exact_reconstruct, exact_upstream_tensor};
use qcut::prelude::*;

fn report(case: &str, u12: &Circuit, u23: &Circuit, expect_negligible: &[Pauli]) {
    let (circuit, cut) = three_qubit_example(u12, u23);
    println!("== {case} ==\n{circuit}");

    let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
    let standard = BasisPlan::standard(1);
    let up = exact_upstream_tensor(&frags.upstream, &standard);
    println!("upstream coefficients  max_b1 |A[M][b1]|  (Eq. 9 sums):");
    for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
        println!("  M = {p}: {:.6}", up.max_abs(&[p]));
    }

    // Build the golden plan from what is genuinely negligible.
    let mut golden = BasisPlan::standard(1);
    for &p in expect_negligible {
        assert!(
            up.max_abs(&[p]) < 1e-10,
            "{case}: {p} expected negligible but carries weight"
        );
        golden.neglect(0, p);
    }

    // Term counting: per (b1, b2) pair Eq. 7 has 4 Pauli × 2r × 2s = 16
    // eigenvalue terms; each neglected basis removes 4.
    let term_count = |plan: &BasisPlan| plan.all_recon_strings().len() * 4;
    println!(
        "terms in Eq. 7: standard = {}, golden = {}; subcircuits: {} -> {}",
        term_count(&standard),
        term_count(&golden),
        standard.total_settings(),
        golden.total_settings(),
    );

    // The reduced reconstruction stays exact.
    let truth = Distribution::from_values(3, StateVector::from_circuit(&circuit).probabilities());
    let recon = exact_reconstruct(&frags, &golden);
    let d = qcut::stats::distance::total_variation_distance(&recon, &truth);
    println!("golden reconstruction TVD vs truth: {d:.2e}\n");
    assert!(d < 1e-9);
}

fn main() {
    println!("Three-qubit example (paper Fig. 1)\n");

    // U23: an arbitrary downstream block on (q1, q2).
    let mut u23 = Circuit::new(2);
    u23.ry(0.8, 0).cx(0, 1).rz(0.5, 1).h(0);

    // Case 1: Bell-pair upstream — doubly golden under the projector
    // observable (X and Y both cancel; the Bell coherence |00><11| is
    // invisible to single-qubit off-diagonal operators).
    let mut bell = Circuit::new(2);
    bell.h(1).cx(1, 0);
    report(
        "Bell-pair U12 (paper's §II-A state)",
        &bell,
        &u23,
        &[Pauli::X, Pauli::Y],
    );

    // Case 2: a generic *real* entangler — the experimental regime: only Y
    // cancels (real amplitudes), giving the paper's 16 -> 12 reduction.
    let mut real_u12 = Circuit::new(2);
    real_u12.ry(0.7, 0).ry(1.9, 1).cx(1, 0).ry(0.4, 0);
    report(
        "generic real U12 (paper's §III regime)",
        &real_u12,
        &u23,
        &[Pauli::Y],
    );

    println!("Bell upstream: 16 -> 8 terms (doubly golden).");
    println!("Real upstream: 16 -> 12 terms — the paper's headline single-cut case.");
}
