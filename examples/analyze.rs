//! Static analysis walkthrough: lint workloads before spending a single
//! shot, read coded diagnostics, promote informational lints, and watch
//! the pipeline's deny gate reject a broken workload.
//!
//! ```text
//! cargo run --release --example analyze
//! ```

use qcut::cutting::analysis::{analyze, AnalysisConfig, LintCode, Severity};
use qcut::cutting::error::PipelineError;
use qcut::prelude::*;

fn main() {
    // 1. A healthy workload lints clean under the default configuration.
    let (circuit, cut) = GoldenAnsatz::new(5, 1234).build();
    let options = ExecutionOptions::default();
    let diags = analyze(&circuit, &cut, &options);
    println!("healthy workload: {diags}\n");

    // 2. Promote the informational lints (default Allow) to Warn to see
    //    the structural reports: plan coverage, golden-structure hints,
    //    and the predicted prefix-sharing ratio of the planned job graph.
    let verbose = ExecutionOptions {
        analysis: AnalysisConfig::default()
            .with_override(LintCode::GoldenStructure, Severity::Warn)
            .with_override(LintCode::NeglectCoverage, Severity::Warn)
            .with_override(LintCode::PrefixSharing, Severity::Warn),
        ..Default::default()
    };
    println!("promoted reports:");
    for d in analyze(&circuit, &cut, &verbose).iter() {
        println!("  {d}");
    }
    println!();

    // 3. The dataflow layer (QA6xx) is informational too: promote it to
    //    see light-cone dead gates and statically-provable golden bases
    //    the configured policy is leaving on the table.
    let mut sloppy = circuit.clone();
    sloppy.s(0); // trailing diagonal gate: measure-dead
    let dataflow = ExecutionOptions {
        analysis: AnalysisConfig::default()
            .with_override(LintCode::OutOfConeDeadGate, Severity::Warn)
            .with_override(LintCode::ProvableGoldenUndetected, Severity::Warn),
        ..Default::default()
    };
    println!("dataflow findings:");
    for d in analyze(&sloppy, &cut, &dataflow).iter() {
        println!("  {d}");
    }
    println!();

    // 4. A starved budget: 4 shots fund the fully-golden floor (3
    //    settings for one cut) but starve the 9-setting standard plan —
    //    QA204 warns that only golden detection can save the run.
    let starved = ExecutionOptions::with_allocation(ShotAllocation::TotalBudget { total: 4 });
    println!("starved budget:");
    for d in analyze(&circuit, &cut, &starved).iter() {
        println!("  {d}");
    }
    println!();

    // 5. Deny-level findings gate the pipeline: the run is rejected as a
    //    typed error before any backend interaction.
    let backend = IdealBackend::new(7);
    let executor = CutExecutor::new(&backend);
    let zero_shots = ExecutionOptions {
        shots_per_setting: 0, // QA202: Deny
        ..Default::default()
    };
    match executor.run(&circuit, &cut, GoldenPolicy::Disabled, &zero_shots) {
        Err(PipelineError::Analysis(diags)) => {
            println!("pipeline rejected the workload:");
            for d in diags.deny() {
                println!("  {d}");
            }
        }
        other => panic!("expected an analysis rejection, got {other:?}"),
    }
    println!();

    // 6. The pool layer (QA7xx) lints placement feasibility against the
    //    actual member fleet: a pool of 2-qubit devices can never fit the
    //    3-qubit fragments (QA701, deny), and an oversized fleet leaves
    //    members provably idle (QA703, informational until promoted).
    let cramped = BackendPool::new(PlacementPolicy::RoundRobin)
        .with_backend(IdealBackend::new(1).with_capacity(2))
        .with_backend(IdealBackend::new(2).with_capacity(2));
    println!("cramped pool:");
    for d in analyze_with_backend(&circuit, &cut, &options, &cramped).iter() {
        println!("  {d}");
    }
    let mut oversized = BackendPool::new(PlacementPolicy::LeastLoaded);
    for seed in 0..16u64 {
        oversized = oversized.with_backend(IdealBackend::new(seed));
    }
    let idle_aware = ExecutionOptions {
        analysis: AnalysisConfig::default().with_override(LintCode::PoolIdleMember, Severity::Warn),
        ..Default::default()
    };
    println!("oversized pool (QA703 promoted):");
    for d in analyze_with_backend(&circuit, &cut, &idle_aware, &oversized).iter() {
        println!("  {d}");
    }
    println!();

    // 7. Warnings do not block execution; they ride in the run report.
    let run = executor
        .run(
            &circuit,
            &cut,
            GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
            &ExecutionOptions {
                allocation: Some(ShotAllocation::TotalBudget { total: 8 }),
                ..Default::default()
            },
        )
        .expect("the golden shrink makes 8 shots schedulable");
    println!(
        "run succeeded with {} warning(s):",
        run.report.diagnostics.len()
    );
    for d in &run.report.diagnostics {
        println!("  {d}");
    }
}
