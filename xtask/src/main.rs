//! Workspace automation tasks. The only task today is `lint`: the
//! in-tree source-hygiene linter CI runs as `cargo run -p xtask -- lint`.
//!
//! The lint is a text/line-based pass over the workspace's library
//! sources (`crates/*/src`, the facade `src`, and `xtask/src` itself; the
//! vendored stubs under `vendor/` are exempt). It denies
//!
//! * `.unwrap()`, `panic!(`, `dbg!(`, `todo!(`, and `unimplemented!(`
//!   outside `#[cfg(test)]` code — library paths must return typed errors
//!   or `expect` an invariant, and no placeholder may ship; the justified
//!   remainder is pinned, with an exact count, in `xtask/lint-allow.txt`
//!   (a ratchet: new sites fail, and removing a site without updating the
//!   allowlist fails too, so the list can only shrink deliberately);
//! * crate roots missing `#![forbid(unsafe_code)]`.
//!
//! Doc comments, line comments, and string-literal contents are masked
//! before token search, and `#[cfg(test)]` items are skipped by brace
//! counting, so test helpers and documentation stay unrestricted.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Tokens denied in non-test library code.
const FORBIDDEN: [&str; 5] = [".unwrap()", "panic!(", "dbg!(", "todo!(", "unimplemented!("];

/// The attribute every crate root must carry.
const FORBID_UNSAFE: &str = "#![forbid(unsafe_code)]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root (xtask's manifest dir is `<root>/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut sources: Vec<PathBuf> = Vec::new();
    for dir in source_dirs(&root) {
        collect_rs_files(&dir, &mut sources);
    }
    sources.sort();

    let mut problems: Vec<String> = Vec::new();

    // Token pass: count forbidden tokens per (file, token) and reconcile
    // against the allowlist with exact counts.
    let allow = match load_allowlist(&root.join("xtask/lint-allow.txt")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut found: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for path in &sources {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                problems.push(format!("cannot read {}: {e}", path.display()));
                continue;
            }
        };
        let rel = relative_to(path, &root);
        for (line_no, token) in scan_source(&text) {
            found
                .entry((rel.clone(), token.to_string()))
                .or_default()
                .push(line_no);
        }
    }
    for ((file, token), lines) in &found {
        let allowed = allow
            .get(&(file.clone(), token.clone()))
            .copied()
            .unwrap_or(0);
        if lines.len() > allowed {
            problems.push(format!(
                "{file}: {} `{token}` in non-test code (lines {lines:?}), {allowed} allowed; \
                 return a typed error or `expect` an invariant, or add the site to \
                 xtask/lint-allow.txt with a justification",
                lines.len(),
            ));
        } else if lines.len() < allowed {
            problems.push(format!(
                "{file}: allowlist grants {allowed} `{token}` but only {} remain — \
                 shrink the xtask/lint-allow.txt entry to keep the ratchet tight",
                lines.len(),
            ));
        }
    }
    for ((file, token), allowed) in &allow {
        if *allowed > 0 && !found.contains_key(&(file.clone(), token.clone())) {
            problems.push(format!(
                "{file}: allowlist grants {allowed} `{token}` but none remain — \
                 remove the stale xtask/lint-allow.txt entry",
            ));
        }
    }

    // Crate-root pass: every root must forbid unsafe code.
    for rel in crate_roots(&root) {
        let path = root.join(&rel);
        match fs::read_to_string(&path) {
            Ok(text) if text.contains(FORBID_UNSAFE) => {}
            Ok(_) => problems.push(format!("{rel}: crate root is missing `{FORBID_UNSAFE}`")),
            Err(e) => problems.push(format!("cannot read {rel}: {e}")),
        }
    }

    if problems.is_empty() {
        println!(
            "xtask lint: {} source files clean ({} allowlisted sites)",
            sources.len(),
            allow.values().sum::<usize>()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("xtask lint: {p}");
        }
        eprintln!("xtask lint: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

/// Directories holding library sources to lint (vendored stubs exempt).
fn source_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src"), root.join("xtask/src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    dirs.sort();
    dirs
}

/// Crate roots that must carry the forbid-unsafe attribute.
fn crate_roots(root: &Path) -> Vec<String> {
    let mut roots = vec!["src/lib.rs".to_string(), "xtask/src/main.rs".to_string()];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(relative_to(&lib, root));
            }
        }
    }
    roots.sort();
    roots
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn relative_to(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// One allowlisted remainder: `path:token:count` with exact-count
/// semantics (the ratchet).
#[derive(Debug, PartialEq)]
struct AllowlistError(String);

impl fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed allowlist: {}", self.0)
    }
}

fn load_allowlist(path: &Path) -> Result<BTreeMap<(String, String), usize>, AllowlistError> {
    let mut allow = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return Ok(allow); // no allowlist = nothing allowed
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Rightmost-two-colon split: the token itself contains no ':' but
        // keeps its '!('/'()' suffix, and paths contain no ':' either.
        let mut parts = line.rsplitn(3, ':');
        let (count, token, file) = match (parts.next(), parts.next(), parts.next()) {
            (Some(c), Some(t), Some(f)) => (c, t, f),
            _ => {
                return Err(AllowlistError(format!(
                    "line {}: expected `path:token:count`, got `{line}`",
                    i + 1
                )))
            }
        };
        if !FORBIDDEN.contains(&token) {
            return Err(AllowlistError(format!(
                "line {}: unknown token `{token}`",
                i + 1
            )));
        }
        let count: usize = count
            .parse()
            .map_err(|_| AllowlistError(format!("line {}: `{count}` is not a count", i + 1)))?;
        allow.insert((file.to_string(), token.to_string()), count);
    }
    Ok(allow)
}

/// Scans one source file, returning `(line_number, token)` for every
/// forbidden-token occurrence in non-test, non-comment, non-string code.
/// Line numbers are 1-based.
fn scan_source(text: &str) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    // Test-region skipping: after `#[cfg(test)]`, ignore everything until
    // the braces of the annotated item balance out.
    let mut skipping = false; // inside a #[cfg(test)] item
    let mut pending = false; // saw the attribute, waiting for the first `{`
    let mut depth: i64 = 0;
    let mut in_block_comment = false;
    for (i, raw) in text.lines().enumerate() {
        let (code, still_in_block) = mask_non_code(raw, in_block_comment);
        in_block_comment = still_in_block;
        let trimmed = code.trim();
        if !skipping && !pending && trimmed.starts_with("#[cfg(test)]") {
            pending = true;
            continue;
        }
        if pending || skipping {
            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        pending = false;
                        skipping = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            // An attribute directly on a brace-less item (e.g. a
            // `#[cfg(test)] use …;`) ends at the semicolon.
            if pending && trimmed.ends_with(';') {
                pending = false;
            }
            if skipping && depth <= 0 {
                skipping = false;
                depth = 0;
            }
            continue;
        }
        for token in FORBIDDEN {
            let mut rest = code.as_str();
            while let Some(pos) = rest.find(token) {
                // `panic!(` must not also fire on e.g. `core::panic!(` docs
                // masked already; count every remaining occurrence.
                hits.push((i + 1, token));
                rest = &rest[pos + token.len()..];
            }
        }
    }
    hits
}

/// Masks comments and string/char-literal contents of one line with
/// spaces, so token search only sees real code. Returns the masked line
/// and whether a block comment continues past it.
fn mask_non_code(line: &str, mut in_block: bool) -> (String, bool) {
    let bytes: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if in_block {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                in_block = false;
                out.push_str("  ");
                i += 2;
            } else {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line (or doc) comment: mask the rest of the line.
                for _ in i..bytes.len() {
                    out.push(' ');
                }
                i = bytes.len();
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                in_block = true;
                out.push_str("  ");
                i += 2;
            }
            '"' => {
                // String literal: keep the quotes, mask the contents.
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal (`'x'`, `'\n'`) vs lifetime (`'a`): a
                // closing quote within two characters marks a literal.
                if bytes.get(i + 2) == Some(&'\'') && bytes.get(i + 1) != Some(&'\\') {
                    out.push_str("' '");
                    i += 3;
                } else if bytes.get(i + 1) == Some(&'\\') && bytes.get(i + 3) == Some(&'\'') {
                    out.push_str("'  '");
                    i += 4;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, in_block)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_forbidden_tokens_in_plain_code() {
        let src = "fn f() {\n    let x = y.unwrap();\n    panic!(\"no\");\n    dbg!(x);\n}\n";
        let hits = scan_source(src);
        assert_eq!(hits, vec![(2, ".unwrap()"), (3, "panic!("), (4, "dbg!(")]);
    }

    #[test]
    fn finds_placeholder_macros() {
        let src = "fn f() {\n    todo!(\"later\");\n}\nfn g() {\n    unimplemented!()\n}\n";
        // `unimplemented!()` without arguments still starts with the
        // `unimplemented!(` token.
        let hits = scan_source(src);
        assert_eq!(hits, vec![(2, "todo!("), (5, "unimplemented!(")]);
    }

    #[test]
    fn ignores_comments_and_doc_comments() {
        let src = "/// call .unwrap() here\n// panic!(\"x\")\n/* dbg!(y) */ let a = 1;\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn ignores_string_literal_contents() {
        let src = "let s = \"please don't .unwrap() or panic!(\";\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn ignores_multiline_block_comments() {
        let src = "/*\n x.unwrap()\n panic!(\"y\")\n*/\nlet ok = 1;\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn skips_cfg_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() { y.unwrap(); }\n";
        assert_eq!(scan_source(src), vec![(6, ".unwrap()")]);
    }

    #[test]
    fn skips_cfg_test_functions_with_nested_braces() {
        let src = "#[cfg(test)]\nfn helper() {\n    if a { b.unwrap(); } else { panic!(\"x\"); }\n}\nfn real() { dbg!(z); }\n";
        assert_eq!(scan_source(src), vec![(5, "dbg!(")]);
    }

    #[test]
    fn char_literals_do_not_derail_masking() {
        let src = "let q = '\"';\nlet bad = x.unwrap();\n";
        assert_eq!(scan_source(src), vec![(2, ".unwrap()")]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a T) -> &'a T { x.unwrap() }\n";
        assert_eq!(scan_source(src), vec![(1, ".unwrap()")]);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "let v = x.unwrap_or_else(Vec::new);\nlet w = y.unwrap_or(0);\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("xtask-allow-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join("allow.txt");
        fs::write(&p, "crates/x/src/a.rs:panic!(:2\n# comment\n").expect("write");
        let a = load_allowlist(&p).expect("valid allowlist parses");
        assert_eq!(
            a.get(&("crates/x/src/a.rs".to_string(), "panic!(".to_string())),
            Some(&2)
        );
        fs::write(&p, "nonsense\n").expect("write");
        assert!(load_allowlist(&p).is_err());
        fs::write(&p, "a.rs:unknown!(:1\n").expect("write");
        assert!(load_allowlist(&p).is_err());
    }
}
