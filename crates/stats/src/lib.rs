//! # qcut-stats
//!
//! Statistics toolkit for the `qcut` workspace: bitstring
//! (quasi-)distributions with the post-processing maps reconstruction
//! needs, distribution distances — including the paper's weighted distance
//! `d_w` (Eq. 17) — streaming estimators, Student-t confidence intervals
//! for the figures' error bars, and concentration bounds for online
//! golden-point detection.
//!
//! ```
//! use qcut_stats::prelude::*;
//!
//! let truth = Distribution::from_values(1, vec![0.5, 0.5]);
//! let measured = Distribution::from_counts(1, vec![(0, 520), (1, 480)]);
//! let d = weighted_distance(&measured, &truth);
//! assert!(d < 0.01);
//! ```

#![forbid(unsafe_code)]

pub mod bounds;
pub mod ci;
pub mod distance;
pub mod distribution;
pub mod estimate;

/// Common re-exports.
pub mod prelude {
    pub use crate::bounds::{
        empirical_bernstein_epsilon, hoeffding_epsilon, hoeffding_sample_size, wilson_interval,
    };
    pub use crate::ci::{ci95, ci95_of, t_quantile_975, ConfidenceInterval};
    pub use crate::distance::{
        classical_fidelity, hellinger_distance, kl_divergence, total_variation_distance,
        weighted_distance,
    };
    pub use crate::distribution::Distribution;
    pub use crate::estimate::StreamingStats;
}

pub use prelude::*;
