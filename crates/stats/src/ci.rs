//! Confidence intervals for trial means.
//!
//! Figures 3–5 of the paper show 95 % confidence error bars over 10–1000
//! trials. We use the Student-t interval `mean ± t_{0.975, n−1} · s/√n`,
//! with a tabulated `t` quantile (exact table for small df, normal limit
//! beyond).

use crate::estimate::StreamingStats;
use serde::{Deserialize, Serialize};

/// Two-sided 97.5 % Student-t quantiles for df = 1..=30 (i.e. the factor
/// for a 95 % CI). Values from standard tables.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 97.5 % quantile of the Student-t distribution with `df` degrees of
/// freedom (normal approximation 1.96 + small correction above df = 30).
pub fn t_quantile_975(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_975[(df - 1) as usize],
        // Cornish–Fisher style refinement of the normal limit; accurate to
        // ~1e-3 against tables for df > 30.
        _ => {
            let z = 1.959_964;
            let d = df as f64;
            z + (z * z * z + z) / (4.0 * d)
        }
    }
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Number of samples behind the estimate.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Lower edge.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper edge.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True when `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// True when the intervals overlap (the paper's "not detectable within
    /// 95 % confidence intervals" criterion).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} (n={})",
            self.mean, self.half_width, self.n
        )
    }
}

/// The 95 % Student-t confidence interval for the mean of the accumulated
/// samples. With fewer than 2 samples the half-width is infinite.
pub fn ci95(stats: &StreamingStats) -> ConfidenceInterval {
    let n = stats.count();
    let half_width = if n < 2 {
        f64::INFINITY
    } else {
        t_quantile_975(n - 1) * stats.sem()
    };
    ConfidenceInterval {
        mean: stats.mean(),
        half_width,
        n,
    }
}

/// Convenience: 95 % CI directly from a sample slice.
pub fn ci95_of(samples: &[f64]) -> ConfidenceInterval {
    ci95(&StreamingStats::from_samples(samples.iter().copied()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_quantiles_match_tables() {
        assert!((t_quantile_975(1) - 12.706).abs() < 1e-3);
        assert!((t_quantile_975(9) - 2.262).abs() < 1e-3);
        assert!((t_quantile_975(30) - 2.042).abs() < 1e-3);
        // Large-df limit approaches the normal quantile.
        assert!((t_quantile_975(1000) - 1.962).abs() < 2e-3);
        assert!(t_quantile_975(0).is_infinite());
    }

    #[test]
    fn t_quantile_is_monotone_decreasing() {
        let mut prev = t_quantile_975(1);
        for df in 2..200 {
            let t = t_quantile_975(df);
            assert!(t <= prev + 1e-9, "df={df}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn ci_of_constant_samples_is_degenerate() {
        let ci = ci95_of(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(5.1));
    }

    #[test]
    fn ci_matches_hand_computation() {
        // n=10 trials (the paper's Fig. 3 setting): t_{0.975,9} = 2.262.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ci = ci95_of(&xs);
        let mean = 4.5;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 9.0;
        let want = 2.262 * (var / 10.0).sqrt();
        assert!((ci.mean - mean).abs() < 1e-12);
        assert!((ci.half_width - want).abs() < 1e-9);
    }

    #[test]
    fn singleton_has_infinite_width() {
        let ci = ci95_of(&[1.0]);
        assert!(ci.half_width.is_infinite());
        assert!(ci.contains(1e12));
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 1.0,
            half_width: 0.2,
            n: 10,
        };
        let b = ConfidenceInterval {
            mean: 1.3,
            half_width: 0.2,
            n: 10,
        };
        let c = ConfidenceInterval {
            mean: 2.0,
            half_width: 0.2,
            n: 10,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn coverage_sanity_monte_carlo() {
        // ~95 % of CIs over Bernoulli(0.5) samples should cover 0.5.
        // Deterministic LCG to avoid a rand dev-dependency here.
        let mut state = 0x12345678u64;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64
        };
        let mut covered = 0;
        let trials = 400;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..30)
                .map(|_| if rand01() < 0.5 { 0.0 } else { 1.0 })
                .collect();
            if ci95_of(&xs).contains(0.5) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.88 && rate <= 1.0, "coverage {rate}");
    }
}
