//! Distances between distributions, including the paper's weighted
//! distance (Eq. 17):
//!
//! ```text
//! d_w(p; q) = Σ_{x ∈ X} (p(x) − q(x))² / q(x)
//! ```
//!
//! where `q` is the ground truth and `X` its support. This is the Neyman
//! χ² divergence; the paper chose it because it "penalizes large percentage
//! deviations more than other metrics such as the total variational
//! distance".

use crate::distribution::Distribution;

/// Support threshold: outcomes with `q(x) <= SUPPORT_EPS` are treated as
/// outside the ground-truth support and skipped by [`weighted_distance`].
pub const SUPPORT_EPS: f64 = 1e-12;

/// The paper's weighted distance `d_w(p; q)` (Eq. 17). `q` is the ground
/// truth; the sum runs over the support of `q`.
pub fn weighted_distance(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(p.num_bits(), q.num_bits(), "distribution size mismatch");
    p.values()
        .iter()
        .zip(q.values())
        .filter(|(_, &qv)| qv > SUPPORT_EPS)
        .map(|(&pv, &qv)| {
            let d = pv - qv;
            d * d / qv
        })
        .sum()
}

/// Total variation distance `½ Σ |p − q|`.
pub fn total_variation_distance(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(p.num_bits(), q.num_bits(), "distribution size mismatch");
    0.5 * p
        .values()
        .iter()
        .zip(q.values())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. Terms with `p(x) = 0`
/// contribute zero; `p(x) > 0, q(x) = 0` yields `+∞`.
pub fn kl_divergence(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(p.num_bits(), q.num_bits(), "distribution size mismatch");
    p.values()
        .iter()
        .zip(q.values())
        .map(|(&pv, &qv)| {
            if pv <= 0.0 {
                0.0
            } else if qv <= 0.0 {
                f64::INFINITY
            } else {
                pv * (pv / qv).ln()
            }
        })
        .sum()
}

/// Hellinger distance `√(½ Σ (√p − √q)²)` — bounded in `[0, 1]`.
/// Negative quasi-probability entries are clipped to zero first.
pub fn hellinger_distance(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(p.num_bits(), q.num_bits(), "distribution size mismatch");
    let s: f64 = p
        .values()
        .iter()
        .zip(q.values())
        .map(|(&a, &b)| {
            let d = a.max(0.0).sqrt() - b.max(0.0).sqrt();
            d * d
        })
        .sum();
    (0.5 * s).sqrt()
}

/// Fidelity between distributions: `(Σ √(p q))²` (classical Bhattacharyya
/// fidelity). Equals 1 iff the (clipped) distributions coincide.
pub fn classical_fidelity(p: &Distribution, q: &Distribution) -> f64 {
    assert_eq!(p.num_bits(), q.num_bits(), "distribution size mismatch");
    let s: f64 = p
        .values()
        .iter()
        .zip(q.values())
        .map(|(&a, &b)| (a.max(0.0) * b.max(0.0)).sqrt())
        .sum();
    s * s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(values: Vec<f64>) -> Distribution {
        let n = values.len().trailing_zeros() as usize;
        Distribution::from_values(n, values)
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = dist(vec![0.25, 0.25, 0.25, 0.25]);
        assert_eq!(weighted_distance(&p, &p), 0.0);
        assert_eq!(total_variation_distance(&p, &p), 0.0);
        assert_eq!(kl_divergence(&p, &p), 0.0);
        assert_eq!(hellinger_distance(&p, &p), 0.0);
        assert!((classical_fidelity(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_distance_known_value() {
        let q = dist(vec![0.5, 0.5]);
        let p = dist(vec![0.6, 0.4]);
        // (0.1²/0.5) * 2 = 0.04
        assert!((weighted_distance(&p, &q) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn weighted_distance_skips_zero_support() {
        let q = dist(vec![1.0, 0.0]);
        let p = dist(vec![0.9, 0.1]);
        // Only x=0 is in q's support: (0.1)²/1.0 = 0.01.
        assert!((weighted_distance(&p, &q) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn weighted_distance_penalises_relative_error() {
        // Same absolute error on a small-probability outcome costs more.
        let q = dist(vec![0.9, 0.1]);
        let p_small_outcome = dist(vec![0.85, 0.15]); // error on the 0.1 bin
        let q2 = dist(vec![0.5, 0.5]);
        let p_large_outcome = dist(vec![0.45, 0.55]);
        assert!(weighted_distance(&p_small_outcome, &q) > weighted_distance(&p_large_outcome, &q2));
    }

    #[test]
    fn weighted_distance_is_asymmetric() {
        let p = dist(vec![0.7, 0.3]);
        let q = dist(vec![0.4, 0.6]);
        assert!((weighted_distance(&p, &q) - weighted_distance(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn tvd_known_value_and_bounds() {
        let p = dist(vec![1.0, 0.0]);
        let q = dist(vec![0.0, 1.0]);
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
        let r = dist(vec![0.5, 0.5]);
        assert!((total_variation_distance(&p, &r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_handles_zeros() {
        let p = dist(vec![0.5, 0.5]);
        let q = dist(vec![1.0, 0.0]);
        assert_eq!(kl_divergence(&p, &q), f64::INFINITY);
        assert!(kl_divergence(&q, &p).is_finite());
    }

    #[test]
    fn hellinger_is_bounded_and_symmetric() {
        let p = dist(vec![0.9, 0.1]);
        let q = dist(vec![0.2, 0.8]);
        let h = hellinger_distance(&p, &q);
        assert!(h > 0.0 && h <= 1.0);
        assert!((h - hellinger_distance(&q, &p)).abs() < 1e-12);
        let disjoint_p = dist(vec![1.0, 0.0]);
        let disjoint_q = dist(vec![0.0, 1.0]);
        assert!((hellinger_distance(&disjoint_p, &disjoint_q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_disjoint_supports_is_zero() {
        let p = dist(vec![1.0, 0.0]);
        let q = dist(vec![0.0, 1.0]);
        assert_eq!(classical_fidelity(&p, &q), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let p = dist(vec![1.0, 0.0]);
        let q = dist(vec![0.25, 0.25, 0.25, 0.25]);
        weighted_distance(&p, &q);
    }
}
