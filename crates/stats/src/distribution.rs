//! Bitstring (quasi-)distributions.
//!
//! Reconstruction from circuit fragments produces *quasi*-distributions:
//! real vectors that sum to ≈1 but may carry small negative entries from
//! shot noise. [`Distribution`] stores raw values and offers the
//! post-processing maps used in the literature (clip-and-renormalise,
//! Euclidean simplex projection).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A real-valued vector indexed by bitstrings of `num_bits` bits.
/// Probabilities for proper distributions; possibly-negative quasi-
/// probabilities for reconstruction outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    num_bits: usize,
    values: Vec<f64>,
}

impl Distribution {
    /// The all-zeros distribution on `num_bits` bits.
    pub fn zeros(num_bits: usize) -> Self {
        Distribution {
            num_bits,
            values: vec![0.0; 1 << num_bits],
        }
    }

    /// Wraps a dense value vector; `values.len()` must be `2^num_bits`.
    pub fn from_values(num_bits: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), 1 << num_bits, "length must be 2^num_bits");
        Distribution { num_bits, values }
    }

    /// Builds an empirical distribution from `(bitstring, count)` pairs.
    pub fn from_counts<I: IntoIterator<Item = (u64, u64)>>(num_bits: usize, counts: I) -> Self {
        let mut d = Self::zeros(num_bits);
        let mut total = 0u64;
        let mut acc: Vec<u64> = vec![0; 1 << num_bits];
        for (bits, c) in counts {
            assert!(
                (bits as usize) < (1usize << num_bits),
                "bitstring {bits:#b} out of range for {num_bits} bits"
            );
            acc[bits as usize] += c;
            total += c;
        }
        if total > 0 {
            for (v, c) in d.values.iter_mut().zip(acc) {
                *v = c as f64 / total as f64;
            }
        }
        d
    }

    /// The uniform distribution.
    pub fn uniform(num_bits: usize) -> Self {
        let dim = 1usize << num_bits;
        Distribution {
            num_bits,
            values: vec![1.0 / dim as f64; dim],
        }
    }

    /// A point mass on one bitstring.
    pub fn point_mass(num_bits: usize, bits: u64) -> Self {
        let mut d = Self::zeros(num_bits);
        d.values[bits as usize] = 1.0;
        d
    }

    /// Number of bits.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of outcomes, `2^num_bits`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Value for one bitstring.
    #[inline]
    pub fn get(&self, bits: u64) -> f64 {
        self.values[bits as usize]
    }

    /// Sets the value for one bitstring.
    #[inline]
    pub fn set(&mut self, bits: u64, v: f64) {
        self.values[bits as usize] = v;
    }

    /// Raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sum of all entries.
    pub fn total_mass(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Smallest entry (negative for quasi-distributions).
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// True when all entries are ≥ `-tol` and the mass is within `tol` of 1.
    pub fn is_proper(&self, tol: f64) -> bool {
        self.min_value() >= -tol && (self.total_mass() - 1.0).abs() <= tol
    }

    /// Negative mass `Σ_x max(0, -p(x))` — a standard quasi-distribution
    /// quality metric.
    pub fn negativity(&self) -> f64 {
        self.values.iter().map(|v| (-v).max(0.0)).sum()
    }

    /// Clip negative entries to zero and renormalise. Returns the uniform
    /// distribution if everything clipped to zero.
    pub fn clip_renormalize(&self) -> Distribution {
        let mut values: Vec<f64> = self.values.iter().map(|v| v.max(0.0)).collect();
        let mass: f64 = values.iter().sum();
        if mass <= 0.0 {
            return Distribution::uniform(self.num_bits);
        }
        for v in &mut values {
            *v /= mass;
        }
        Distribution {
            num_bits: self.num_bits,
            values,
        }
    }

    /// Euclidean projection onto the probability simplex (the
    /// maximum-likelihood-flavoured post-processing of Perlin et al.,
    /// algorithm of Held et al. / Duchi et al.).
    pub fn project_to_simplex(&self) -> Distribution {
        let n = self.values.len();
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let mut cum = 0.0;
        let mut theta = 0.0;
        let mut found = false;
        for (i, &v) in sorted.iter().enumerate() {
            cum += v;
            let t = (cum - 1.0) / (i + 1) as f64;
            if i + 1 == n || sorted[i + 1] <= t {
                // check condition v_{i+1} <= t means rho = i+1
                if v > t {
                    theta = t;
                    found = true;
                    break;
                }
            }
        }
        if !found {
            // All mass clipped (pathological input): fall back to uniform.
            return Distribution::uniform(self.num_bits);
        }
        let values = self.values.iter().map(|v| (v - theta).max(0.0)).collect();
        Distribution {
            num_bits: self.num_bits,
            values,
        }
    }

    /// Marginal distribution over the given bit positions (in the order
    /// given: output bit `i` = input bit `positions[i]`).
    pub fn marginal(&self, positions: &[usize]) -> Distribution {
        for &p in positions {
            assert!(p < self.num_bits, "bit position {p} out of range");
        }
        let mut out = Distribution::zeros(positions.len());
        for (idx, &v) in self.values.iter().enumerate() {
            let mut key = 0u64;
            for (i, &p) in positions.iter().enumerate() {
                if idx & (1 << p) != 0 {
                    key |= 1 << i;
                }
            }
            out.values[key as usize] += v;
        }
        out
    }

    /// Iterator over `(bitstring, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values.iter().enumerate().map(|(i, &v)| (i as u64, v))
    }

    /// Most probable outcome `(bitstring, value)`.
    pub fn mode(&self) -> (u64, f64) {
        let (i, v) = self
            .values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("distribution is non-empty");
        (i as u64, *v)
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "distribution over {} bits:", self.num_bits)?;
        for (bits, v) in self.iter() {
            if v.abs() > 1e-6 {
                writeln!(f, "  {:0width$b}: {v:+.6}", bits, width = self.num_bits)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_normalises() {
        let d = Distribution::from_counts(2, vec![(0, 30), (3, 70)]);
        assert!((d.get(0) - 0.3).abs() < 1e-12);
        assert!((d.get(3) - 0.7).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert!(d.is_proper(1e-12));
    }

    #[test]
    fn from_counts_merges_duplicate_keys() {
        let d = Distribution::from_counts(1, vec![(0, 1), (0, 1), (1, 2)]);
        assert!((d.get(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_counts_rejects_oversized_bitstring() {
        Distribution::from_counts(1, vec![(2, 1)]);
    }

    #[test]
    fn uniform_and_point_mass() {
        let u = Distribution::uniform(3);
        assert!((u.get(5) - 0.125).abs() < 1e-12);
        let p = Distribution::point_mass(3, 6);
        assert_eq!(p.get(6), 1.0);
        assert_eq!(p.get(0), 0.0);
        assert_eq!(p.mode(), (6, 1.0));
    }

    #[test]
    fn quasi_distribution_metrics() {
        let d = Distribution::from_values(1, vec![1.1, -0.1]);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert!(!d.is_proper(1e-6));
        assert!((d.negativity() - 0.1).abs() < 1e-12);
        assert_eq!(d.min_value(), -0.1);
    }

    #[test]
    fn clip_renormalize_restores_properness() {
        let d = Distribution::from_values(1, vec![1.1, -0.1]);
        let c = d.clip_renormalize();
        assert!(c.is_proper(1e-12));
        assert_eq!(c.get(0), 1.0);
    }

    #[test]
    fn clip_renormalize_of_all_negative_is_uniform() {
        let d = Distribution::from_values(1, vec![-0.5, -0.5]);
        assert_eq!(d.clip_renormalize(), Distribution::uniform(1));
    }

    #[test]
    fn simplex_projection_is_proper_and_idempotent() {
        let d = Distribution::from_values(2, vec![0.6, -0.2, 0.5, 0.1]);
        let p = d.project_to_simplex();
        assert!(p.is_proper(1e-9), "projection not proper: {p}");
        let pp = p.project_to_simplex();
        for i in 0..4 {
            assert!((p.get(i) - pp.get(i)).abs() < 1e-9, "not idempotent");
        }
    }

    #[test]
    fn simplex_projection_fixes_proper_distributions() {
        let d = Distribution::from_values(2, vec![0.1, 0.2, 0.3, 0.4]);
        let p = d.project_to_simplex();
        for i in 0..4 {
            assert!((p.get(i) - d.get(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_projection_minimises_distance_vs_clip() {
        // Euclidean projection must be at least as close (in L2) as
        // clip+renormalise.
        let d = Distribution::from_values(2, vec![0.7, -0.3, 0.45, 0.15]);
        let proj = d.project_to_simplex();
        let clip = d.clip_renormalize();
        let l2 = |a: &Distribution| -> f64 {
            a.values()
                .iter()
                .zip(d.values())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        assert!(l2(&proj) <= l2(&clip) + 1e-12);
    }

    #[test]
    fn marginal_sums_out_other_bits() {
        // p over 2 bits; marginal on bit 1.
        let d = Distribution::from_values(2, vec![0.1, 0.2, 0.3, 0.4]);
        let m = d.marginal(&[1]);
        assert_eq!(m.num_bits(), 1);
        assert!((m.get(0) - 0.3).abs() < 1e-12); // bits 00 + 01
        assert!((m.get(1) - 0.7).abs() < 1e-12); // bits 10 + 11
    }

    #[test]
    fn marginal_reorders_bits() {
        let mut d = Distribution::zeros(2);
        d.set(0b01, 1.0); // bit0=1, bit1=0
        let m = d.marginal(&[1, 0]); // new bit0 = old bit1, new bit1 = old bit0
        assert_eq!(m.get(0b10), 1.0);
    }

    #[test]
    fn empty_counts_give_zeros() {
        let d = Distribution::from_counts(2, vec![]);
        assert_eq!(d.total_mass(), 0.0);
    }
}
