//! Streaming estimators (Welford's algorithm) for trial statistics.
//!
//! Every figure in the paper reports means over repeated trials with 95 %
//! confidence intervals; [`StreamingStats`] accumulates those without
//! storing samples, in a numerically stable way.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Accumulates an iterator of samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Builds directly from samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (needs ≥ 2 samples, else 0).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by n).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observed sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = StreamingStats::from_samples(xs.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Σ(x-5)² = 32; sample var = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let e = StreamingStats::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.sem(), 0.0);
        let s = StreamingStats::from_samples([3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn sem_shrinks_with_sqrt_n() {
        let a = StreamingStats::from_samples((0..100).map(|i| (i % 2) as f64));
        let b = StreamingStats::from_samples((0..400).map(|i| (i % 2) as f64));
        // Same variance, 4x samples => half the SEM.
        assert!((a.sem() / b.sem() - 2.0).abs() < 0.01);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let (left, right) = xs.split_at(23);
        let mut a = StreamingStats::from_samples(left.iter().copied());
        let b = StreamingStats::from_samples(right.iter().copied());
        a.merge(&b);
        let whole = StreamingStats::from_samples(xs.iter().copied());
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::from_samples([1.0, 2.0]);
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert!((a.mean() - before.mean()).abs() < 1e-15);
        let mut e = StreamingStats::new();
        e.merge(&before);
        assert!((e.mean() - before.mean()).abs() < 1e-15);
    }

    #[test]
    fn numerical_stability_with_large_offset() {
        // Classic catastrophic-cancellation test: huge mean, small variance.
        let base = 1e9;
        let s = StreamingStats::from_samples([base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.variance() - 1.0).abs() < 1e-6);
    }
}
