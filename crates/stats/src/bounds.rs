//! Concentration bounds for sequential decisions.
//!
//! The paper's §IV proposes detecting golden cutting points "online during
//! the execution of the circuit cutting procedure through sequential
//! empirical measurements". Our [`OnlineDetector`](../../qcut_core) builds
//! on the bounds here: Hoeffding for bounded variables, empirical
//! Bernstein when the variance is small (which it is — the tested
//! coefficient is exactly zero at a golden point), and Wilson intervals for
//! binomial proportions.

/// Hoeffding deviation bound: with probability ≥ `1 − delta`, the empirical
/// mean of `n` i.i.d. samples bounded in `[lo, hi]` deviates from the true
/// mean by less than the returned epsilon.
pub fn hoeffding_epsilon(n: u64, delta: f64, lo: f64, hi: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(hi > lo, "invalid range");
    let range = hi - lo;
    range * ((2.0f64 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Empirical Bernstein bound (Audibert–Munos–Szepesvári): deviation bound
/// using the *observed* sample variance. Much tighter than Hoeffding when
/// the variance is small relative to the range.
pub fn empirical_bernstein_epsilon(
    n: u64,
    sample_variance: f64,
    delta: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(n > 1, "need at least two samples");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let range = hi - lo;
    let log_term = (3.0f64 / delta).ln();
    (2.0 * sample_variance.max(0.0) * log_term / n as f64).sqrt()
        + 3.0 * range * log_term / n as f64
}

/// Wilson score interval for a binomial proportion: returns `(lo, hi)` such
/// that the true success probability lies inside with ≈ the confidence of
/// the supplied normal quantile `z` (1.96 for 95 %).
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    assert!(n > 0, "need at least one trial");
    assert!(successes <= n, "more successes than trials");
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let centre = (p + z2 / (2.0 * nf)) / denom;
    let half = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Number of samples sufficient (per Hoeffding) to estimate a `[lo, hi]`-
/// bounded mean within `epsilon` at confidence `1 − delta`.
pub fn hoeffding_sample_size(epsilon: f64, delta: f64, lo: f64, hi: f64) -> u64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let range = hi - lo;
    ((range * range) * (2.0f64 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_shrinks_with_samples() {
        let e100 = hoeffding_epsilon(100, 0.05, -1.0, 1.0);
        let e400 = hoeffding_epsilon(400, 0.05, -1.0, 1.0);
        assert!((e100 / e400 - 2.0).abs() < 1e-9, "sqrt(n) scaling");
        assert!(e100 > 0.0);
    }

    #[test]
    fn hoeffding_known_value() {
        // range 1, n = 200, delta = 0.05: eps = sqrt(ln(40)/400).
        let e = hoeffding_epsilon(200, 0.05, 0.0, 1.0);
        assert!((e - ((40.0f64).ln() / 400.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_sample_size_inverts_epsilon() {
        let n = hoeffding_sample_size(0.05, 0.05, 0.0, 1.0);
        let e = hoeffding_epsilon(n, 0.05, 0.0, 1.0);
        assert!(e <= 0.05 + 1e-12, "{n} samples give eps {e}");
        // One fewer sample should not satisfy the target.
        let e_less = hoeffding_epsilon(n - 1, 0.05, 0.0, 1.0);
        assert!(e_less > 0.05 - 1e-6);
    }

    #[test]
    fn bernstein_beats_hoeffding_for_tiny_variance() {
        // A golden coefficient: samples in [-1,1] but variance ~ 0.001.
        let n = 2000;
        let h = hoeffding_epsilon(n, 0.05, -1.0, 1.0);
        let b = empirical_bernstein_epsilon(n, 0.001, 0.05, -1.0, 1.0);
        assert!(b < h, "Bernstein {b} should beat Hoeffding {h}");
    }

    #[test]
    fn bernstein_degrades_gracefully_for_large_variance() {
        let n = 2000;
        let b = empirical_bernstein_epsilon(n, 1.0, 0.05, -1.0, 1.0);
        assert!(b.is_finite() && b > 0.0);
    }

    #[test]
    fn wilson_contains_point_estimate_and_stays_in_unit_interval() {
        let (lo, hi) = wilson_interval(7, 10, 1.96);
        assert!(lo <= 0.7 && 0.7 <= hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn wilson_extreme_counts() {
        let (lo0, hi0) = wilson_interval(0, 20, 1.96);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.3);
        let (lo1, hi1) = wilson_interval(20, 20, 1.96);
        assert_eq!(hi1, 1.0);
        assert!(lo1 > 0.7);
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let (lo_a, hi_a) = wilson_interval(50, 100, 1.96);
        let (lo_b, hi_b) = wilson_interval(500, 1000, 1.96);
        assert!(hi_b - lo_b < hi_a - lo_a);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn hoeffding_rejects_zero_samples() {
        hoeffding_epsilon(0, 0.05, 0.0, 1.0);
    }
}
