//! ASCII circuit diagrams, with optional cut markers.
//!
//! Rendering is column-per-instruction (no gate packing) — simple, always
//! correct, and good enough for the example binaries and debugging output.

use crate::circuit::Circuit;
use crate::cut::CutSpec;

/// Renders a circuit as an ASCII diagram. One column per instruction; wires
/// run left to right, qubit 0 on top.
pub fn render(circuit: &Circuit) -> String {
    render_with_cuts(circuit, None)
}

/// Renders a circuit with `✂` markers at the cut locations.
pub fn render_with_cuts(circuit: &Circuit, cuts: Option<&CutSpec>) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }

    // Per-qubit op counters to locate cut positions while scanning.
    let mut ops_seen = vec![0usize; n];
    // (qubit -> set of positions to mark)
    let mut cut_marks: Vec<Vec<usize>> = vec![Vec::new(); n];
    if let Some(spec) = cuts {
        for c in spec.cuts() {
            if c.qubit < n {
                cut_marks[c.qubit].push(c.after_op);
            }
        }
    }

    let mut rows: Vec<String> = (0..n).map(|q| format!("q{q:<2}: ")).collect();

    for inst in circuit.instructions() {
        let label = inst.gate.name();
        let width = label.len().max(3) + 2;
        for (q, row) in rows.iter_mut().enumerate() {
            let cell = if inst.qubits.len() == 1 && inst.qubits[0] == q {
                center(&format!("[{label}]"), width + 2)
            } else if inst.qubits.len() == 2 && inst.qubits[0] == q {
                center(&format!("({label}",), width + 2)
                    .replace('(', "●")
                    .replacen('●', "●─", 1)
            } else if inst.qubits.len() == 2 && inst.qubits[1] == q {
                center(&format!("[{label}]"), width + 2)
            } else {
                "─".repeat(width + 2)
            };
            row.push_str(&cell);
        }
        // Advance wire counters and inject cut markers.
        for &q in &inst.qubits {
            if cut_marks[q].contains(&ops_seen[q]) {
                rows[q].push_str("─✂─");
                for (other, row) in rows.iter_mut().enumerate() {
                    if other != q && !inst.qubits.contains(&other) {
                        // keep columns aligned on other wires
                        row.push_str("───");
                    } else if other != q {
                        row.push_str("───");
                    }
                }
            }
            ops_seen[q] += 1;
        }
    }

    let mut out = String::new();
    for r in rows {
        out.push_str(&r);
        out.push('\n');
    }
    out
}

fn center(s: &str, width: usize) -> String {
    if s.len() >= width {
        return s.to_string();
    }
    let pad = width - s.len();
    let left = pad / 2;
    let right = pad - left;
    format!("{}{}{}", "─".repeat(left), s, "─".repeat(right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::CutSpec;

    #[test]
    fn renders_one_row_per_qubit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.5, 2);
        let d = render(&c);
        assert_eq!(d.lines().count(), 3);
        assert!(d.contains("[h]"));
        assert!(d.contains("q0"));
        assert!(d.contains("q2"));
    }

    #[test]
    fn marks_cut_position() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let spec = CutSpec::single(1, 0);
        let d = render_with_cuts(&c, Some(&spec));
        assert!(d.contains('✂'), "diagram missing cut marker:\n{d}");
    }

    #[test]
    fn empty_circuit_renders_bare_wires() {
        let c = Circuit::new(2);
        let d = render(&c);
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    fn two_qubit_gate_shows_control_dot() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let d = render(&c);
        assert!(d.contains('●'), "control dot missing:\n{d}");
    }
}
