//! # qcut-circuit
//!
//! Quantum circuit IR for the `qcut` workspace: gates, circuits, wire-level
//! dependency analysis, cut specifications, random circuit generation
//! (mirroring Qiskit's `random_circuit()`), and the paper's circuit
//! families — the Fig. 1 three-qubit example, the Fig. 2 golden ansatz, and
//! a multi-cut extension.
//!
//! Conventions used across the workspace:
//!
//! * **Little-endian qubits** — qubit 0 is the least-significant bit of a
//!   computational-basis index.
//! * All qubits start in `|0>`; backends measure every qubit in the
//!   computational basis at the end.
//! * A *cut* severs the wire segment after the `k`-th instruction on one
//!   qubit's timeline ([`cut::CutLocation`]).
//!
//! ```
//! use qcut_circuit::prelude::*;
//!
//! // The paper's 5-qubit golden ansatz (Fig. 2).
//! let (circuit, cut) = GoldenAnsatz::new(5, 42).build();
//! assert_eq!(circuit.num_qubits(), 5);
//! cut.validate(&circuit).expect("designed to be cuttable");
//! ```

#![forbid(unsafe_code)]

pub mod ansatz;
pub mod circuit;
pub mod cone;
pub mod cut;
pub mod dag;
pub mod diagram;
pub mod gate;
pub mod qasm;
pub mod random;
pub mod tableau;

/// Common re-exports.
pub mod prelude {
    pub use crate::ansatz::{three_qubit_example, GoldenAnsatz, MultiCutAnsatz};
    pub use crate::circuit::{Circuit, Instruction};
    pub use crate::cone::{dead_instructions, DeadGate, DeadGateKind, LightCones};
    pub use crate::cut::{CutError, CutLocation, CutSpec};
    pub use crate::dag::{CircuitDag, WireEdge};
    pub use crate::diagram::{render, render_with_cuts};
    pub use crate::gate::{CliffordAction, Gate};
    pub use crate::qasm::{to_qasm, QasmError};
    pub use crate::random::{
        random_circuit, random_real_circuit, rx_layer, ry_layer, RandomCircuitConfig,
    };
    pub use crate::tableau::{StabilizerGenerator, StabilizerTableau};
}

pub use prelude::*;
