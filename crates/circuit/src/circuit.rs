//! The circuit IR: an ordered list of gate applications on `n` qubits.
//!
//! Deliberately simple — cutting operates on the instruction list and on
//! per-wire timelines (see [`crate::dag`]), and the simulators consume the
//! instruction stream directly.

use crate::gate::Gate;
use qcut_math::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One gate application: a gate plus the qubits it acts on.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Instruction {
    /// The gate.
    pub gate: Gate,
    /// Qubit operands; `qubits.len() == gate.arity()`. For controlled gates
    /// the first entry is the control.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates an instruction, validating arity.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {gate} expects {} qubits, got {}",
            gate.arity(),
            qubits.len()
        );
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate on identical qubits");
        }
        Instruction { gate, qubits }
    }

    /// True if this instruction touches `qubit`.
    pub fn acts_on(&self, qubit: usize) -> bool {
        self.qubits.contains(&qubit)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q{q}")).collect();
        write!(f, "{}", qs.join(", "))
    }
}

/// A quantum circuit: `num_qubits` wires and an ordered instruction list.
/// All qubits start in `|0>`; measurement is implicit (the simulators and
/// backends measure every qubit in the computational basis at the end).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The instruction list in program order.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the circuit has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a gate application.
    ///
    /// # Panics
    /// Panics if any operand is out of range or the arity is wrong.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        for &q in qubits {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.num_qubits
            );
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        self
    }

    /// Builds a circuit from raw instructions **without** operand
    /// validation — the import seam for externally produced IR (QASM
    /// bridges, fuzzers) where malformed operands must surface as analyzer
    /// diagnostics (`qcut_core::analysis`, lint `QA001`) instead of a
    /// panic. [`Circuit::push`] remains the validating builder; circuits
    /// assembled here should be analyzed before execution.
    pub fn from_instructions_unchecked(num_qubits: usize, instructions: Vec<Instruction>) -> Self {
        Circuit {
            num_qubits,
            instructions,
        }
    }

    // ------------------------------------------------------------------
    // Builder conveniences (chainable).
    // ------------------------------------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q])
    }
    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q])
    }
    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, &[q])
    }
    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, &[q])
    }
    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S, &[q])
    }
    /// S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg, &[q])
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T, &[q])
    }
    /// RX rotation on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rx(theta), &[q])
    }
    /// RY rotation on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Ry(theta), &[q])
    }
    /// RZ rotation on `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rz(theta), &[q])
    }
    /// CNOT with `control`, `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx, &[control, target])
    }
    /// CZ on `(a, b)`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz, &[a, b])
    }
    /// SWAP on `(a, b)`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, &[a, b])
    }
    /// Arbitrary 1-qubit unitary on `q`.
    pub fn unitary1(&mut self, m: Matrix, q: usize) -> &mut Self {
        assert!(m.is_unitary(1e-8), "unitary1 matrix is not unitary");
        self.push(Gate::Unitary1(m), &[q])
    }
    /// Arbitrary 2-qubit unitary on `(a, b)` (a = bit 0 of the matrix index).
    pub fn unitary2(&mut self, m: Matrix, a: usize, b: usize) -> &mut Self {
        assert!(m.is_unitary(1e-8), "unitary2 matrix is not unitary");
        self.push(Gate::Unitary2(m), &[a, b])
    }

    // ------------------------------------------------------------------
    // Composition and transformation.
    // ------------------------------------------------------------------

    /// Appends all instructions of `other` (same qubit indices).
    ///
    /// # Panics
    /// Panics if `other` uses more qubits than `self`.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.num_qubits,
            other.num_qubits
        );
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// Appends `other` with all its qubit indices shifted by `offset`.
    pub fn extend_shifted(&mut self, other: &Circuit, offset: usize) -> &mut Self {
        assert!(
            other.num_qubits + offset <= self.num_qubits,
            "shifted circuit does not fit"
        );
        for inst in &other.instructions {
            let qubits: Vec<usize> = inst.qubits.iter().map(|q| q + offset).collect();
            self.instructions
                .push(Instruction::new(inst.gate.clone(), qubits));
        }
        self
    }

    /// Appends `other` with qubits remapped through `map` (`map[i]` = new
    /// index of `other`'s qubit `i`).
    pub fn extend_mapped(&mut self, other: &Circuit, map: &[usize]) -> &mut Self {
        assert_eq!(map.len(), other.num_qubits, "qubit map length mismatch");
        for inst in &other.instructions {
            let qubits: Vec<usize> = inst.qubits.iter().map(|q| map[*q]).collect();
            for &q in &qubits {
                assert!(q < self.num_qubits, "mapped qubit {q} out of range");
            }
            self.instructions
                .push(Instruction::new(inst.gate.clone(), qubits));
        }
        self
    }

    /// The adjoint circuit (reversed instruction order, each gate inverted).
    pub fn adjoint(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            out.instructions
                .push(Instruction::new(inst.gate.adjoint(), inst.qubits.clone()));
        }
        out
    }

    /// Full unitary matrix of the circuit (`2^n × 2^n`). Intended for tests
    /// and small fragments only — O(4^n) memory.
    pub fn unitary(&self) -> Matrix {
        let dim = 1usize << self.num_qubits;
        let mut u = Matrix::identity(dim);
        for inst in &self.instructions {
            let g = inst.gate.matrix();
            let full = match inst.qubits.len() {
                1 => Matrix::embed_one_qubit(&g, self.num_qubits, inst.qubits[0]),
                2 => Matrix::embed_two_qubit(&g, self.num_qubits, inst.qubits[0], inst.qubits[1]),
                _ => unreachable!("gates are 1- or 2-qubit"),
            };
            u = full.matmul(&u);
        }
        u
    }

    /// A structural fingerprint of the circuit: two circuits hash equal iff
    /// they have the same width and the same instruction list (gate kinds,
    /// exact parameter bits, operand order). Used by the execution engine to
    /// deduplicate identical subcircuit jobs before they reach a backend;
    /// callers must still confirm with `==` on a hash match (FNV-1a over the
    /// instruction stream — collisions are unlikely but possible).
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.num_qubits as u64);
        for inst in &self.instructions {
            hash_instruction(inst, &mut h);
        }
        h.finish()
    }

    /// Structural hashes of every instruction prefix: `chain[p]`
    /// fingerprints the circuit width plus the first `p` instructions, so
    /// `chain[len()]` equals [`Circuit::structural_hash`] and two circuits
    /// of equal width share `chain[p]` iff their first `p` instructions are
    /// structurally identical (up to FNV collisions — confirm with `==` on
    /// the instructions, as the prefix-sharing trie does). Built in one
    /// pass over the same FNV-1a stream as the full hash.
    pub fn prefix_hash_chain(&self) -> Vec<u64> {
        let mut h = Fnv1a::new();
        h.write_u64(self.num_qubits as u64);
        let mut chain = Vec::with_capacity(self.instructions.len() + 1);
        chain.push(h.finish());
        for inst in &self.instructions {
            hash_instruction(inst, &mut h);
            chain.push(h.finish());
        }
        chain
    }

    /// Length of the longest common instruction prefix with `other`
    /// (0 when the widths differ — prefixes of different-width circuits
    /// are never interchangeable).
    pub fn shared_prefix_len(&self, other: &Circuit) -> usize {
        if self.num_qubits != other.num_qubits {
            return 0;
        }
        self.instructions
            .iter()
            .zip(&other.instructions)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Circuit depth: the longest chain of instructions sharing wires.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for inst in &self.instructions {
            let l = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// Number of two-qubit instructions.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.qubits.len() == 2)
            .count()
    }

    /// Per-wire instruction indices: `timeline[q]` lists the indices of
    /// instructions acting on qubit `q`, in program order.
    pub fn wire_timelines(&self) -> Vec<Vec<usize>> {
        let mut tl = vec![Vec::new(); self.num_qubits];
        for (i, inst) in self.instructions.iter().enumerate() {
            for &q in &inst.qubits {
                tl[q].push(i);
            }
        }
        tl
    }

    /// True when every gate in the circuit has a real matrix (the circuit
    /// then maps real states to real states — the golden-Y mechanism).
    pub fn is_real(&self) -> bool {
        self.instructions.iter().all(|i| i.gate.is_real())
    }

    /// Qubits with at least one instruction.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut active = vec![false; self.num_qubits];
        for inst in &self.instructions {
            for &q in &inst.qubits {
                if q < self.num_qubits {
                    active[q] = true;
                }
            }
        }
        (0..self.num_qubits).filter(|&q| active[q]).collect()
    }

    /// Qubits without any instruction (the complement of
    /// [`Circuit::active_qubits`]) — the wires the idle-qubit lint and
    /// [`crate::cut::CutSpec::validate`]'s bipartition check care about.
    pub fn idle_qubits(&self) -> Vec<usize> {
        let active = self.active_qubits();
        (0..self.num_qubits)
            .filter(|q| !active.contains(q))
            .collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates):",
            self.num_qubits,
            self.len()
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

/// 64-bit FNV-1a accumulator for [`Circuit::structural_hash`]. A tiny local
/// hasher (rather than `std::hash`) because `Gate` carries `f64` parameters
/// and `Matrix` payloads, neither of which implement `Hash`.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Feeds one instruction (gate + operands) into the hash stream.
fn hash_instruction(inst: &Instruction, h: &mut Fnv1a) {
    hash_gate(&inst.gate, h);
    for &q in &inst.qubits {
        h.write_u64(q as u64);
    }
}

/// Feeds a gate's variant tag plus its exact parameter bits into the hash.
fn hash_gate(gate: &Gate, h: &mut Fnv1a) {
    let mut matrix = None;
    let (tag, params): (u64, &[f64]) = match gate {
        Gate::I => (0, &[]),
        Gate::H => (1, &[]),
        Gate::X => (2, &[]),
        Gate::Y => (3, &[]),
        Gate::Z => (4, &[]),
        Gate::S => (5, &[]),
        Gate::Sdg => (6, &[]),
        Gate::T => (7, &[]),
        Gate::Tdg => (8, &[]),
        Gate::Sx => (9, &[]),
        Gate::Rx(t) => (10, std::slice::from_ref(t)),
        Gate::Ry(t) => (11, std::slice::from_ref(t)),
        Gate::Rz(t) => (12, std::slice::from_ref(t)),
        Gate::Phase(t) => (13, std::slice::from_ref(t)),
        Gate::U3(_, _, _) => (14, &[]),
        Gate::Unitary1(m) => {
            matrix = Some(m);
            (15, &[])
        }
        Gate::Cx => (16, &[]),
        Gate::Cy => (17, &[]),
        Gate::Cz => (18, &[]),
        Gate::Ch => (19, &[]),
        Gate::Swap => (20, &[]),
        Gate::Crx(t) => (21, std::slice::from_ref(t)),
        Gate::Cry(t) => (22, std::slice::from_ref(t)),
        Gate::Crz(t) => (23, std::slice::from_ref(t)),
        Gate::CPhase(t) => (24, std::slice::from_ref(t)),
        Gate::Unitary2(m) => {
            matrix = Some(m);
            (25, &[])
        }
    };
    h.write_u64(tag);
    if let Gate::U3(theta, phi, lambda) = gate {
        h.write_f64(*theta);
        h.write_f64(*phi);
        h.write_f64(*lambda);
    }
    for &p in params {
        h.write_f64(p);
    }
    if let Some(m) = matrix {
        for c in m.as_slice() {
            h.write_f64(c.re);
            h.write_f64(c.im);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_math::{c64, TOL_STRICT};

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.depth(), 4); // h -> cx01 -> cx12 -> rz (all chained on shared wires)
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_qubit() {
        Circuit::new(2).h(2);
    }

    #[test]
    #[should_panic(expected = "identical qubits")]
    fn push_rejects_duplicate_operands() {
        Circuit::new(2).cx(1, 1);
    }

    #[test]
    fn bell_circuit_unitary() {
        use qcut_math::Complex;
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = c.unitary();
        // U|00> = (|00> + |11>)/√2
        let v = u.matvec(&[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(c64(s, 0.0), TOL_STRICT));
        assert!(v[3].approx_eq(c64(s, 0.0), TOL_STRICT));
        assert!(v[1].abs() < TOL_STRICT && v[2].abs() < TOL_STRICT);
    }

    #[test]
    fn adjoint_composes_to_identity() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cx(0, 1).rz(0.37, 0).s(1);
        let mut both = c.clone();
        both.extend(&c.adjoint());
        let u = both.unitary();
        assert!(u.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn extend_shifted_remaps_qubits() {
        let mut inner = Circuit::new(2);
        inner.cx(0, 1);
        let mut outer = Circuit::new(4);
        outer.extend_shifted(&inner, 2);
        assert_eq!(outer.instructions()[0].qubits, vec![2, 3]);
    }

    #[test]
    fn extend_mapped_remaps_arbitrarily() {
        let mut inner = Circuit::new(2);
        inner.cx(0, 1).h(0);
        let mut outer = Circuit::new(3);
        outer.extend_mapped(&inner, &[2, 0]);
        assert_eq!(outer.instructions()[0].qubits, vec![2, 0]);
        assert_eq!(outer.instructions()[1].qubits, vec![2]);
    }

    #[test]
    fn unitary_respects_gate_order() {
        // X then H differs from H then X.
        let mut xh = Circuit::new(1);
        xh.x(0).h(0);
        let mut hx = Circuit::new(1);
        hx.h(0).x(0);
        assert!(xh.unitary().max_abs_diff(&hx.unitary()) > 0.1);
        // And matches the matrix product H * X (applied right-to-left).
        let want = Gate::H.matrix().matmul(&Gate::X.matrix());
        assert!(xh.unitary().approx_eq(&want, TOL_STRICT));
    }

    #[test]
    fn wire_timelines_track_instruction_indices() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(1);
        let tl = c.wire_timelines();
        assert_eq!(tl[0], vec![0, 1]);
        assert_eq!(tl[1], vec![1, 2, 3]);
        assert_eq!(tl[2], vec![2]);
    }

    #[test]
    fn is_real_classification() {
        let mut real = Circuit::new(2);
        real.h(0).ry(0.4, 1).cx(0, 1).cz(0, 1);
        assert!(real.is_real());
        let mut complex = real.clone();
        complex.rx(0.1, 0);
        assert!(!complex.is_real());
    }

    #[test]
    fn active_qubits_skips_idle_wires() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 2);
        assert_eq!(c.active_qubits(), vec![0, 2]);
    }

    #[test]
    fn depth_of_parallel_gates_is_one() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn display_lists_instructions() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let text = c.to_string();
        assert!(text.contains("h q0"));
        assert!(text.contains("cx q0, q1"));
    }

    #[test]
    fn structural_hash_matches_iff_structurally_equal() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).rz(0.5, 2);
        let b = a.clone();
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Different parameter, operand order, gate, or width all change it.
        let mut param = Circuit::new(3);
        param.h(0).cx(0, 1).rz(0.5000001, 2);
        assert_ne!(a.structural_hash(), param.structural_hash());
        let mut flipped = Circuit::new(3);
        flipped.h(0).cx(1, 0).rz(0.5, 2);
        assert_ne!(a.structural_hash(), flipped.structural_hash());
        let mut gate = Circuit::new(3);
        gate.h(0).cz(0, 1).rz(0.5, 2);
        assert_ne!(a.structural_hash(), gate.structural_hash());
        let mut wider = Circuit::new(4);
        wider.h(0).cx(0, 1).rz(0.5, 2);
        assert_ne!(a.structural_hash(), wider.structural_hash());
    }

    #[test]
    fn prefix_hash_chain_extends_the_structural_hash() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.5, 2).cx(1, 2);
        let chain = c.prefix_hash_chain();
        assert_eq!(chain.len(), c.len() + 1);
        // The last link is the full structural hash.
        assert_eq!(chain[c.len()], c.structural_hash());
        // Every link is the structural hash of the truncated circuit.
        for (p, &link) in chain.iter().enumerate() {
            let mut prefix = Circuit::new(3);
            for inst in &c.instructions()[..p] {
                prefix.push(inst.gate.clone(), &inst.qubits);
            }
            assert_eq!(link, prefix.structural_hash(), "prefix {p}");
        }
    }

    #[test]
    fn prefix_hash_chain_diverges_where_circuits_do() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).s(1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).t(1);
        let (ca, cb) = (a.prefix_hash_chain(), b.prefix_hash_chain());
        assert_eq!(&ca[..3], &cb[..3], "shared prefix must share hashes");
        assert_ne!(ca[3], cb[3], "divergent instruction must change the hash");
        assert_eq!(a.shared_prefix_len(&b), 2);
    }

    #[test]
    fn shared_prefix_len_is_zero_across_widths() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(3);
        b.h(0);
        assert_eq!(a.shared_prefix_len(&b), 0);
        assert_eq!(a.shared_prefix_len(&a.clone()), 1);
    }

    #[test]
    fn structural_hash_distinguishes_parametrised_variants() {
        // Gate-kind tags keep Rx(t) and Ry(t) apart even with equal angles,
        // and unitary payload bits participate in the hash.
        let mut rx = Circuit::new(1);
        rx.rx(0.3, 0);
        let mut ry = Circuit::new(1);
        ry.ry(0.3, 0);
        assert_ne!(rx.structural_hash(), ry.structural_hash());

        let mut u_h = Circuit::new(1);
        u_h.unitary1(Gate::H.matrix(), 0);
        let mut u_x = Circuit::new(1);
        u_x.unitary1(Gate::X.matrix(), 0);
        assert_ne!(u_h.structural_hash(), u_x.structural_hash());
        let mut u_h2 = Circuit::new(1);
        u_h2.unitary1(Gate::H.matrix(), 0);
        assert_eq!(u_h.structural_hash(), u_h2.structural_hash());
    }
}
