//! Cut specifications: *where* a circuit is cut.
//!
//! A [`CutLocation`] names one severed wire segment — "the wire of qubit
//! `q`, after the `after_op`-th instruction touching that wire". A
//! [`CutSpec`] is a set of such locations that together must bipartition the
//! circuit (validated here via [`CircuitDag::bipartition`]). The machinery
//! that *uses* cuts (fragment extraction, tomography, reconstruction) lives
//! in `qcut-core`; this module only defines and validates locations so the
//! ansatz generators can return them alongside the circuits they build.

use crate::circuit::Circuit;
use crate::dag::{CircuitDag, WireEdge};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One wire cut: after the `after_op`-th (0-based) instruction on `qubit`'s
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CutLocation {
    /// The qubit whose wire is severed.
    pub qubit: usize,
    /// 0-based index into the wire's instruction timeline; the cut sits
    /// between this instruction and the next one on the same wire.
    pub after_op: usize,
}

impl CutLocation {
    /// Convenience constructor.
    pub fn new(qubit: usize, after_op: usize) -> Self {
        CutLocation { qubit, after_op }
    }
}

impl fmt::Display for CutLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cut(q{} after op #{})", self.qubit, self.after_op)
    }
}

/// A set of cuts that bipartitions a circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutSpec {
    cuts: Vec<CutLocation>,
}

/// Why a [`CutSpec`] failed validation against a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutError {
    /// The spec has no cuts.
    Empty,
    /// Two cuts target the same wire; a bipartition severs each wire at
    /// most once.
    DuplicateWire(usize),
    /// No wire edge exists at the named location (qubit idle, or position
    /// past the last instruction on the wire).
    NoSuchEdge(CutLocation),
    /// Removing the cut edges does not produce a clean upstream/downstream
    /// split (still connected, a component plays both roles, or a component
    /// touches no cut).
    NotABipartition,
}

impl fmt::Display for CutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CutError::Empty => write!(f, "cut specification is empty"),
            CutError::DuplicateWire(q) => {
                write!(f, "wire of qubit {q} is cut more than once; a bipartition cuts each wire at most once")
            }
            CutError::NoSuchEdge(loc) => write!(
                f,
                "{loc}: no wire segment there (qubit idle or position past the wire's last gate)"
            ),
            CutError::NotABipartition => write!(
                f,
                "cuts do not bipartition the circuit into an upstream and a downstream side \
                 (check connectivity and cut positions)"
            ),
        }
    }
}

impl std::error::Error for CutError {}

impl CutSpec {
    /// A spec with a single cut.
    pub fn single(qubit: usize, after_op: usize) -> Self {
        CutSpec {
            cuts: vec![CutLocation::new(qubit, after_op)],
        }
    }

    /// A spec from explicit locations.
    pub fn new(cuts: Vec<CutLocation>) -> Self {
        CutSpec { cuts }
    }

    /// The cut locations, in the order given (this order defines the cut
    /// index `k ∈ [K]` used by tomography and reconstruction).
    pub fn cuts(&self) -> &[CutLocation] {
        &self.cuts
    }

    /// Number of cuts, `K`.
    pub fn num_cuts(&self) -> usize {
        self.cuts.len()
    }

    /// Resolves the locations to wire edges and checks they bipartition the
    /// circuit. Returns `(edges, upstream_mask)` with one mask entry per
    /// instruction (`true` = upstream fragment).
    pub fn validate(&self, circuit: &Circuit) -> Result<(Vec<WireEdge>, Vec<bool>), CutError> {
        if self.cuts.is_empty() {
            return Err(CutError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for loc in &self.cuts {
            if !seen.insert(loc.qubit) {
                return Err(CutError::DuplicateWire(loc.qubit));
            }
        }
        let dag = CircuitDag::new(circuit);
        let mut edges = Vec::with_capacity(self.cuts.len());
        for loc in &self.cuts {
            let edge = dag
                .edge_at(loc.qubit, loc.after_op)
                .ok_or(CutError::NoSuchEdge(*loc))?;
            edges.push(edge);
        }
        let mask = dag.bipartition(&edges).ok_or(CutError::NotABipartition)?;
        Ok((edges, mask))
    }
}

impl fmt::Display for CutSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CutSpec[")?;
        for (i, c) in self.cuts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        c
    }

    #[test]
    fn valid_single_cut() {
        let spec = CutSpec::single(1, 0);
        let (edges, mask) = spec.validate(&chain()).unwrap();
        assert_eq!(edges.len(), 1);
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn empty_spec_rejected() {
        let spec = CutSpec::new(vec![]);
        assert_eq!(spec.validate(&chain()), Err(CutError::Empty));
    }

    #[test]
    fn duplicate_wire_rejected() {
        let spec = CutSpec::new(vec![CutLocation::new(1, 0), CutLocation::new(1, 1)]);
        assert_eq!(spec.validate(&chain()), Err(CutError::DuplicateWire(1)));
    }

    #[test]
    fn missing_edge_rejected() {
        let spec = CutSpec::single(0, 5);
        assert_eq!(
            spec.validate(&chain()),
            Err(CutError::NoSuchEdge(CutLocation::new(0, 5)))
        );
    }

    #[test]
    fn non_bipartition_rejected() {
        // Extra (0,2) gate keeps the halves connected after the cut.
        let mut c = chain();
        c.cx(0, 2);
        let spec = CutSpec::single(1, 0);
        assert_eq!(spec.validate(&c), Err(CutError::NotABipartition));
    }

    #[test]
    fn display_is_informative() {
        let spec = CutSpec::single(2, 3);
        let s = spec.to_string();
        assert!(s.contains("q2"));
        assert!(s.contains("#3"));
    }

    #[test]
    fn error_messages_are_actionable() {
        assert!(CutError::DuplicateWire(4).to_string().contains("qubit 4"));
        assert!(CutError::NotABipartition
            .to_string()
            .contains("bipartition"));
    }
}
