//! Gate definitions.
//!
//! The gate alphabet covers what Qiskit's `random_circuit()` draws from
//! (1-qubit Cliffords, rotations, U3, and the common 2-qubit entanglers)
//! plus arbitrary `Unitary1`/`Unitary2` matrices so fragments can carry
//! Haar-random blocks.
//!
//! Qubit-ordering convention (used across the whole workspace): **qubit 0 is
//! the least-significant bit** of a computational basis index. A 2-qubit
//! gate applied to `(a, b)` uses `a` as bit 0 and `b` as bit 1 of its 4×4
//! matrix index.

use qcut_math::{c64, Complex, Matrix, Pauli, PauliString};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantum gate. Rotation angles are in radians.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Gate {
    /// Identity (useful as an explicit no-op / barrier marker in tests).
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// T† gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Rotation about X: `e^{-iθX/2}`.
    Rx(f64),
    /// Rotation about Y: `e^{-iθY/2}` (real matrix).
    Ry(f64),
    /// Rotation about Z: `e^{-iθZ/2}`.
    Rz(f64),
    /// Phase rotation `diag(1, e^{iθ})`.
    Phase(f64),
    /// General single-qubit gate `U3(θ, φ, λ)` (Qiskit convention).
    U3(f64, f64, f64),
    /// Arbitrary single-qubit unitary.
    Unitary1(#[serde(skip, default = "identity2")] Matrix),
    /// Controlled-X (CNOT). Control = first qubit of the instruction.
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled-H.
    Ch,
    /// SWAP.
    Swap,
    /// Controlled RX.
    Crx(f64),
    /// Controlled RY.
    Cry(f64),
    /// Controlled RZ.
    Crz(f64),
    /// Controlled phase.
    CPhase(f64),
    /// Arbitrary two-qubit unitary.
    Unitary2(#[serde(skip, default = "identity4")] Matrix),
}

// Referenced by the `#[serde(default = ...)]` attributes above; the
// vendored serde stub ignores helper attributes, so these are unused until
// real serde is restored.
#[allow(dead_code)]
fn identity2() -> Matrix {
    Matrix::identity(2)
}

#[allow(dead_code)]
fn identity4() -> Matrix {
    Matrix::identity(4)
}

impl Gate {
    /// Number of qubits this gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U3(..)
            | Gate::Unitary1(_) => 1,
            _ => 2,
        }
    }

    /// The gate's unitary matrix (2×2 or 4×4 depending on arity).
    ///
    /// For controlled gates, the control is bit 0 and the target bit 1,
    /// matching the `(control, target)` argument order of the circuit
    /// builder methods.
    pub fn matrix(&self) -> Matrix {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            Gate::I => Matrix::identity(2),
            Gate::H => Matrix::from_real(2, 2, &[s, s, s, -s]),
            Gate::X => Matrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]),
            Gate::Y => {
                Matrix::two_by_two(Complex::ZERO, c64(0.0, -1.0), c64(0.0, 1.0), Complex::ZERO)
            }
            Gate::Z => Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]),
            Gate::S => Matrix::two_by_two(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::I),
            Gate::Sdg => {
                Matrix::two_by_two(Complex::ONE, Complex::ZERO, Complex::ZERO, c64(0.0, -1.0))
            }
            Gate::T => Matrix::two_by_two(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4),
            ),
            Gate::Tdg => Matrix::two_by_two(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_polar(1.0, -std::f64::consts::FRAC_PI_4),
            ),
            Gate::Sx => Matrix::from_rows(
                2,
                2,
                vec![c64(0.5, 0.5), c64(0.5, -0.5), c64(0.5, -0.5), c64(0.5, 0.5)],
            ),
            Gate::Rx(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::two_by_two(c64(c, 0.0), c64(0.0, -sn), c64(0.0, -sn), c64(c, 0.0))
            }
            Gate::Ry(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_real(2, 2, &[c, -sn, sn, c])
            }
            Gate::Rz(t) => Matrix::two_by_two(
                Complex::from_polar(1.0, -t / 2.0),
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_polar(1.0, t / 2.0),
            ),
            Gate::Phase(t) => Matrix::two_by_two(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_polar(1.0, *t),
            ),
            Gate::U3(theta, phi, lam) => {
                let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Matrix::from_rows(
                    2,
                    2,
                    vec![
                        c64(ct, 0.0),
                        -Complex::from_polar(st, *lam),
                        Complex::from_polar(st, *phi),
                        Complex::from_polar(ct, phi + lam),
                    ],
                )
            }
            Gate::Unitary1(m) => m.clone(),
            Gate::Cx => controlled(&Gate::X.matrix()),
            Gate::Cy => controlled(&Gate::Y.matrix()),
            Gate::Cz => controlled(&Gate::Z.matrix()),
            Gate::Ch => controlled(&Gate::H.matrix()),
            Gate::Swap => Matrix::from_real(
                4,
                4,
                &[
                    1.0, 0.0, 0.0, 0.0, //
                    0.0, 0.0, 1.0, 0.0, //
                    0.0, 1.0, 0.0, 0.0, //
                    0.0, 0.0, 0.0, 1.0,
                ],
            ),
            Gate::Crx(t) => controlled(&Gate::Rx(*t).matrix()),
            Gate::Cry(t) => controlled(&Gate::Ry(*t).matrix()),
            Gate::Crz(t) => controlled(&Gate::Rz(*t).matrix()),
            Gate::CPhase(t) => controlled(&Gate::Phase(*t).matrix()),
            Gate::Unitary2(m) => m.clone(),
        }
    }

    /// The inverse gate (adjoint).
    pub fn adjoint(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Unitary1(Gate::Sx.matrix().adjoint()),
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::U3(theta, phi, lam) => Gate::U3(-theta, -lam, -phi),
            Gate::Unitary1(m) => Gate::Unitary1(m.adjoint()),
            Gate::Crx(t) => Gate::Crx(-t),
            Gate::Cry(t) => Gate::Cry(-t),
            Gate::Crz(t) => Gate::Crz(-t),
            Gate::CPhase(t) => Gate::CPhase(-t),
            Gate::Unitary2(m) => Gate::Unitary2(m.adjoint()),
            // Self-inverse gates.
            g => g.clone(),
        }
    }

    /// Whether the gate's matrix has purely real entries. Circuits made
    /// entirely of real gates produce real-amplitude states, which is the
    /// mechanism behind the paper's designed golden cutting point (the Y
    /// expectation of any real state vanishes identically).
    pub fn is_real(&self) -> bool {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Z
            | Gate::Ry(_)
            | Gate::Cx
            | Gate::Cz
            | Gate::Ch
            | Gate::Swap
            | Gate::Cry(_) => true,
            Gate::Unitary1(m) | Gate::Unitary2(m) => m.is_real(1e-12),
            _ => false,
        }
    }

    /// Whether applying the gate leaves every input state unchanged up to
    /// global phase — dead weight a transpiler could drop, flagged by the
    /// analyzer's identity-gate lint. Exact for the parameterless gates;
    /// parameterised families check their identity criterion to `1e-9`:
    ///
    /// * `Rx/Ry/Rz(θ)` and `Phase(θ)`: `sin(θ/2) = 0` (at `θ = 2π` the
    ///   rotation is `−I` — a global phase, unobservable when uncontrolled);
    /// * `CPhase(θ)`: `θ ≡ 0 (mod 2π)` (same criterion — `CPhase(2π)` is
    ///   exactly the identity);
    /// * `Crx/Cry/Crz(θ)`: `θ ≡ 0 (mod 4π)` — at `θ = 2π` the controlled
    ///   block applies `−I`, a *relative* phase (`Z` on the control) that
    ///   is observable, so the weaker criterion would be wrong here;
    /// * `U3`/`Unitary1`/`Unitary2`: matrix distance from the exact
    ///   identity (identity-up-to-phase unitaries are deliberately not
    ///   flagged — conservative for a lint).
    pub fn is_effective_identity(&self) -> bool {
        const EPS: f64 = 1e-9;
        match self {
            Gate::I => true,
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) | Gate::CPhase(t) => {
                (t / 2.0).sin().abs() < EPS
            }
            Gate::Crx(t) | Gate::Cry(t) | Gate::Crz(t) => {
                (t / 2.0).sin().abs() < EPS && (t / 2.0).cos() > 0.0
            }
            Gate::U3(_, _, _) | Gate::Unitary1(_) => {
                self.matrix().max_abs_diff(&Matrix::identity(2)) < EPS
            }
            Gate::Unitary2(m) => m.max_abs_diff(&Matrix::identity(4)) < EPS,
            _ => false,
        }
    }

    /// Whether the gate's matrix is diagonal in the computational basis.
    /// Diagonal gates commute with each other and with computational-basis
    /// measurement, and act on `|0…0>` only by a global phase — the facts
    /// behind the dataflow pass's dead-gate detection. Structural for the
    /// parameterless/rotation families; a numeric off-diagonal check
    /// (tolerance `1e-9`) for `U3`/`Unitary1`/`Unitary2`.
    pub fn is_diagonal(&self) -> bool {
        match self {
            Gate::I
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::Cz
            | Gate::Crz(_)
            | Gate::CPhase(_) => true,
            Gate::U3(..) | Gate::Unitary1(_) | Gate::Unitary2(_) => {
                matrix_is_diagonal(&self.matrix(), 1e-9)
            }
            _ => false,
        }
    }

    /// The gate's action on Hermitian Pauli strings by conjugation, if it
    /// is a Clifford gate: `Some(action)` with `U P U† = ±P'` tabulated for
    /// every string `P` over the operands, `None` otherwise.
    ///
    /// Computed numerically (tolerance `1e-9`): each conjugated string is
    /// decomposed over the Pauli basis via `tr(Q·UPU†)/2^n`, and the gate
    /// qualifies only when every image has exactly one `±1` coefficient.
    /// This keeps parameterised gates honest — `Rz(π/2)` is recognised as
    /// Clifford just like `S`, while `Rz(0.3)` is not. The stabilizer
    /// tableau widens over gates that return `None`.
    pub fn clifford_action(&self) -> Option<CliffordAction> {
        const TOL: f64 = 1e-9;
        let n = self.arity();
        let u = self.matrix();
        let udag = u.adjoint();
        let dim = f64::from(1 << n);
        let strings: Vec<PauliString> = PauliString::enumerate(n).collect();
        let mut images = Vec::with_capacity(strings.len());
        for p in &strings {
            let m = u.matmul(&p.matrix()).matmul(&udag);
            // Hermitian image ⟹ real coefficients; a Clifford image has
            // exactly one of magnitude 1 and the rest 0.
            let mut hit: Option<(bool, Vec<Pauli>)> = None;
            for q in &strings {
                let c = q.matrix().trace_product(&m);
                let (re, im) = (c.re / dim, c.im / dim);
                if im.abs() > TOL {
                    return None;
                }
                if (re.abs() - 1.0).abs() < TOL {
                    if hit.is_some() {
                        return None;
                    }
                    hit = Some((re < 0.0, q.paulis().to_vec()));
                } else if re.abs() > TOL {
                    return None;
                }
            }
            images.push(hit?);
        }
        Some(CliffordAction { arity: n, images })
    }

    /// Short mnemonic for diagrams and reports.
    pub fn name(&self) -> String {
        match self {
            Gate::I => "i".into(),
            Gate::H => "h".into(),
            Gate::X => "x".into(),
            Gate::Y => "y".into(),
            Gate::Z => "z".into(),
            Gate::S => "s".into(),
            Gate::Sdg => "sdg".into(),
            Gate::T => "t".into(),
            Gate::Tdg => "tdg".into(),
            Gate::Sx => "sx".into(),
            Gate::Rx(t) => format!("rx({t:.3})"),
            Gate::Ry(t) => format!("ry({t:.3})"),
            Gate::Rz(t) => format!("rz({t:.3})"),
            Gate::Phase(t) => format!("p({t:.3})"),
            Gate::U3(a, b, c) => format!("u3({a:.3},{b:.3},{c:.3})"),
            Gate::Unitary1(_) => "u1q".into(),
            Gate::Cx => "cx".into(),
            Gate::Cy => "cy".into(),
            Gate::Cz => "cz".into(),
            Gate::Ch => "ch".into(),
            Gate::Swap => "swap".into(),
            Gate::Crx(t) => format!("crx({t:.3})"),
            Gate::Cry(t) => format!("cry({t:.3})"),
            Gate::Crz(t) => format!("crz({t:.3})"),
            Gate::CPhase(t) => format!("cp({t:.3})"),
            Gate::Unitary2(_) => "u2q".into(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The conjugation action of a Clifford gate on Hermitian Pauli strings,
/// tabulated over all `4^arity` inputs. Since the inputs and outputs are
/// signed Hermitian strings (`±⊗_j W_j` with `W_j ∈ {I,X,Y,Z}`), there is
/// no residual `i^k` phase to track: [`CliffordAction::image`] returns a
/// sign bit and the image string, nothing more. Built by
/// [`Gate::clifford_action`].
#[derive(Clone, Debug, PartialEq)]
pub struct CliffordAction {
    arity: usize,
    /// `images[idx]` is `(negative, paulis)` for the input string with
    /// index `idx = Σ_j 4^j · code(p_j)` (`code`: I=0, X=1, Y=2, Z=3 —
    /// the [`PauliString::enumerate`] order).
    images: Vec<(bool, Vec<Pauli>)>,
}

impl CliffordAction {
    /// Number of operand qubits (1 or 2).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Image of the Hermitian string `⊗_j paulis[j]` under conjugation:
    /// `U (⊗ paulis) U† = sign · (⊗ image)` with `sign = -1` iff the
    /// returned flag is true. `paulis[j]` is the factor on operand `j`.
    pub fn image(&self, paulis: &[Pauli]) -> (bool, Vec<Pauli>) {
        assert_eq!(paulis.len(), self.arity, "operand count mismatch");
        let idx = paulis
            .iter()
            .enumerate()
            .fold(0usize, |acc, (j, p)| acc + (pauli_code(*p) << (2 * j)));
        self.images[idx].clone()
    }
}

fn pauli_code(p: Pauli) -> usize {
    match p {
        Pauli::I => 0,
        Pauli::X => 1,
        Pauli::Y => 2,
        Pauli::Z => 3,
    }
}

/// Whether every off-diagonal entry of `m` is below `tol` in magnitude.
fn matrix_is_diagonal(m: &Matrix, tol: f64) -> bool {
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            if i != j && m[(i, j)].abs() > tol {
                return false;
            }
        }
    }
    true
}

/// Builds `|0><0| ⊗ I + |1><1| ⊗ U` with control = bit 0, target = bit 1.
fn controlled(u: &Matrix) -> Matrix {
    let mut m = Matrix::identity(4);
    // Basis index = (target_bit << 1) | control_bit. Control active on
    // indices 1 (t=0,c=1) and 3 (t=1,c=1).
    m[(1, 1)] = u[(0, 0)];
    m[(1, 3)] = u[(0, 1)];
    m[(3, 1)] = u[(1, 0)];
    m[(3, 3)] = u[(1, 1)];
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_math::TOL_STRICT;

    fn all_fixed_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.5),
            Gate::Phase(0.4),
            Gate::U3(0.3, 1.1, -0.8),
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Ch,
            Gate::Swap,
            Gate::Crx(0.9),
            Gate::Cry(1.4),
            Gate::Crz(-0.6),
            Gate::CPhase(2.2),
        ]
    }

    #[test]
    fn every_gate_is_unitary() {
        for g in all_fixed_gates() {
            assert!(g.matrix().is_unitary(TOL_STRICT), "{g} not unitary");
        }
    }

    #[test]
    fn arity_matches_matrix_dimension() {
        for g in all_fixed_gates() {
            let m = g.matrix();
            assert_eq!(m.rows(), 1 << g.arity(), "{g}");
        }
    }

    #[test]
    fn adjoint_inverts() {
        for g in all_fixed_gates() {
            let prod = g.matrix().matmul(&g.adjoint().matrix());
            let id = Matrix::identity(prod.rows());
            assert!(prod.approx_eq(&id, TOL_STRICT), "{g}");
        }
    }

    #[test]
    fn hadamard_conjugates_z_to_x() {
        let h = Gate::H.matrix();
        let hzh = h.matmul(&Gate::Z.matrix()).matmul(&h);
        assert!(hzh.approx_eq(&Gate::X.matrix(), TOL_STRICT));
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s2 = Gate::S.matrix().pow(2);
        assert!(s2.approx_eq(&Gate::Z.matrix(), TOL_STRICT));
        let t2 = Gate::T.matrix().pow(2);
        assert!(t2.approx_eq(&Gate::S.matrix(), TOL_STRICT));
    }

    #[test]
    fn sx_squared_is_x() {
        let sx2 = Gate::Sx.matrix().pow(2);
        assert!(sx2.approx_eq(&Gate::X.matrix(), TOL_STRICT));
    }

    #[test]
    fn rotations_at_pi_match_paulis_up_to_phase() {
        // R_a(π) = -i σ_a
        for (rot, pauli) in [
            (Gate::Rx(std::f64::consts::PI), Gate::X),
            (Gate::Ry(std::f64::consts::PI), Gate::Y),
            (Gate::Rz(std::f64::consts::PI), Gate::Z),
        ] {
            let want = pauli.matrix().scale(c64(0.0, -1.0));
            assert!(rot.matrix().approx_eq(&want, TOL_STRICT), "{rot}");
        }
    }

    #[test]
    fn u3_special_cases() {
        // U3(θ, -π/2, π/2) = RX(θ); U3(θ, 0, 0) = RY(θ).
        let th = 0.83;
        let rx = Gate::U3(
            th,
            -std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_2,
        );
        assert!(rx.matrix().approx_eq(&Gate::Rx(th).matrix(), TOL_STRICT));
        let ry = Gate::U3(th, 0.0, 0.0);
        assert!(ry.matrix().approx_eq(&Gate::Ry(th).matrix(), TOL_STRICT));
    }

    #[test]
    fn cx_truth_table() {
        let cx = Gate::Cx.matrix();
        // index = target<<1 | control
        // control=0 states unchanged:
        assert_eq!(cx[(0, 0)], Complex::ONE); // |00> -> |00>
        assert_eq!(cx[(2, 2)], Complex::ONE); // t=1,c=0 unchanged
                                              // control=1 flips target:
        assert_eq!(cx[(3, 1)], Complex::ONE); // c=1,t=0 -> c=1,t=1
        assert_eq!(cx[(1, 3)], Complex::ONE);
    }

    #[test]
    fn swap_exchanges_bits() {
        let sw = Gate::Swap.matrix();
        // |01> (idx 1) <-> |10> (idx 2)
        assert_eq!(sw[(2, 1)], Complex::ONE);
        assert_eq!(sw[(1, 2)], Complex::ONE);
        assert_eq!(sw[(0, 0)], Complex::ONE);
        assert_eq!(sw[(3, 3)], Complex::ONE);
    }

    #[test]
    fn real_gate_classification() {
        assert!(Gate::H.is_real());
        assert!(Gate::Ry(0.3).is_real());
        assert!(Gate::Cx.is_real());
        assert!(!Gate::Rx(0.3).is_real());
        assert!(!Gate::S.is_real());
        assert!(!Gate::Y.is_real());
        assert!(Gate::Unitary1(Matrix::identity(2)).is_real());
    }

    #[test]
    fn real_gates_have_real_matrices() {
        for g in all_fixed_gates() {
            if g.is_real() {
                assert!(g.matrix().is_real(1e-12), "{g} claims real but is not");
            }
        }
    }

    #[test]
    fn clifford_action_exists_exactly_for_clifford_gates() {
        let cliffords = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::Sx,
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Swap,
            Gate::Rz(std::f64::consts::FRAC_PI_2), // S up to phase
        ];
        for g in cliffords {
            assert!(g.clifford_action().is_some(), "{g} should be Clifford");
        }
        let non_cliffords = [
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.3),
            Gate::Ry(0.3),
            Gate::Rz(0.3),
            Gate::Ch,
            Gate::Crz(0.7),
            Gate::CPhase(1.1),
        ];
        for g in non_cliffords {
            assert!(g.clifford_action().is_none(), "{g} should not be Clifford");
        }
    }

    #[test]
    fn clifford_action_matches_textbook_conjugations() {
        let h = Gate::H.clifford_action().expect("H is Clifford");
        assert_eq!(h.image(&[Pauli::Z]), (false, vec![Pauli::X]));
        assert_eq!(h.image(&[Pauli::X]), (false, vec![Pauli::Z]));
        assert_eq!(h.image(&[Pauli::Y]), (true, vec![Pauli::Y]));

        let s = Gate::S.clifford_action().expect("S is Clifford");
        assert_eq!(s.image(&[Pauli::X]), (false, vec![Pauli::Y]));
        assert_eq!(s.image(&[Pauli::Y]), (true, vec![Pauli::X]));
        assert_eq!(s.image(&[Pauli::Z]), (false, vec![Pauli::Z]));

        let x = Gate::X.clifford_action().expect("X is Clifford");
        assert_eq!(x.image(&[Pauli::Z]), (true, vec![Pauli::Z]));
        assert_eq!(x.image(&[Pauli::X]), (false, vec![Pauli::X]));

        // CX with control = operand 0, target = operand 1:
        // Z⊗I ↦ Z⊗I, X⊗I ↦ X⊗X, I⊗X ↦ I⊗X, I⊗Z ↦ Z⊗Z.
        let cx = Gate::Cx.clifford_action().expect("CX is Clifford");
        assert_eq!(
            cx.image(&[Pauli::Z, Pauli::I]),
            (false, vec![Pauli::Z, Pauli::I])
        );
        assert_eq!(
            cx.image(&[Pauli::X, Pauli::I]),
            (false, vec![Pauli::X, Pauli::X])
        );
        assert_eq!(
            cx.image(&[Pauli::I, Pauli::X]),
            (false, vec![Pauli::I, Pauli::X])
        );
        assert_eq!(
            cx.image(&[Pauli::I, Pauli::Z]),
            (false, vec![Pauli::Z, Pauli::Z])
        );
    }

    #[test]
    fn clifford_action_identity_string_is_fixed() {
        for g in all_fixed_gates() {
            if let Some(a) = g.clifford_action() {
                let id = vec![Pauli::I; a.arity()];
                assert_eq!(a.image(&id), (false, id.clone()), "{g}");
            }
        }
    }

    #[test]
    fn diagonal_gate_classification() {
        assert!(Gate::Z.is_diagonal());
        assert!(Gate::S.is_diagonal());
        assert!(Gate::T.is_diagonal());
        assert!(Gate::Rz(0.3).is_diagonal());
        assert!(Gate::Cz.is_diagonal());
        assert!(Gate::Crz(0.8).is_diagonal());
        assert!(Gate::CPhase(1.2).is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::X.is_diagonal());
        assert!(!Gate::Cx.is_diagonal());
        assert!(!Gate::Swap.is_diagonal());
        // Numeric fallback: U3(0, φ, λ) is diagonal, generic U3 is not.
        assert!(Gate::U3(0.0, 0.4, 1.3).is_diagonal());
        assert!(!Gate::U3(0.5, 0.4, 1.3).is_diagonal());
        assert!(Gate::Unitary2(Gate::Cz.matrix()).is_diagonal());
    }

    #[test]
    fn diagonal_gates_have_diagonal_matrices() {
        for g in all_fixed_gates() {
            let m = g.matrix();
            let structurally_diagonal =
                (0..m.rows()).all(|i| (0..m.cols()).all(|j| i == j || m[(i, j)].abs() < 1e-12));
            assert_eq!(g.is_diagonal(), structurally_diagonal, "{g}");
        }
    }

    #[test]
    fn cz_is_symmetric_in_its_qubits() {
        let cz = Gate::Cz.matrix();
        // CZ = diag(1,1,1,-1) regardless of which qubit is "control".
        let want = Matrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, -1.0,
            ],
        );
        assert!(cz.approx_eq(&want, TOL_STRICT));
    }
}
