//! Random circuit generation, mirroring Qiskit's `random_circuit()` which
//! the paper uses for the `U1`/`U2` blocks of its ansatz (§III).
//!
//! Two flavours:
//!
//! * [`random_circuit`] — unrestricted gate alphabet (rotations, Cliffords,
//!   T, controlled gates), like Qiskit's generator;
//! * [`random_real_circuit`] — only gates with real matrices (H, X, Z, RY,
//!   CX, CZ, CRY, SWAP). Circuits from this family map real states to real
//!   states, which *designs in* a golden cutting point for the Y basis:
//!   `tr((Π_b ⊗ Y) ρ) = 0` for every real ρ (paper §II-A mechanism (ii)).

use crate::circuit::Circuit;
use crate::gate::Gate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the random circuit generators.
#[derive(Debug, Clone, Copy)]
pub struct RandomCircuitConfig {
    /// Number of layers; each layer covers all qubits with a random mix of
    /// 1- and 2-qubit gates.
    pub depth: usize,
    /// Probability that a pair of adjacent free qubits receives a 2-qubit
    /// gate within a layer.
    pub two_qubit_prob: f64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            depth: 3,
            two_qubit_prob: 0.5,
        }
    }
}

/// Generates a Qiskit-style random circuit on `num_qubits` qubits.
///
/// Layer structure: qubits are visited in a random order; with probability
/// `two_qubit_prob` a qubit is paired with another free qubit for a 2-qubit
/// gate, otherwise it receives a random 1-qubit gate.
pub fn random_circuit(num_qubits: usize, config: RandomCircuitConfig, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    random_circuit_with(num_qubits, config, &mut rng)
}

/// Like [`random_circuit`] but drawing from a caller-supplied RNG.
pub fn random_circuit_with<R: Rng + ?Sized>(
    num_qubits: usize,
    config: RandomCircuitConfig,
    rng: &mut R,
) -> Circuit {
    build_layers(num_qubits, config, rng, &one_qubit_gate, &two_qubit_gate)
}

/// Generates a random circuit using only real-matrix gates.
pub fn random_real_circuit(num_qubits: usize, config: RandomCircuitConfig, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    random_real_circuit_with(num_qubits, config, &mut rng)
}

/// Like [`random_real_circuit`] but drawing from a caller-supplied RNG.
pub fn random_real_circuit_with<R: Rng + ?Sized>(
    num_qubits: usize,
    config: RandomCircuitConfig,
    rng: &mut R,
) -> Circuit {
    build_layers(
        num_qubits,
        config,
        rng,
        &one_qubit_real_gate,
        &two_qubit_real_gate,
    )
}

/// A layer of RX rotations with angles drawn uniformly from `[0, 6.28]` —
/// the "collections of RX gates" in the paper's §III workload.
pub fn rx_layer<R: Rng + ?Sized>(circuit: &mut Circuit, qubits: &[usize], rng: &mut R) {
    for &q in qubits {
        // The paper specifies the interval [0, 6.28] literally (§III); keep
        // it rather than substituting TAU.
        #[allow(clippy::approx_constant)]
        circuit.rx(rng.gen_range(0.0..6.28), q);
    }
}

/// A layer of RY rotations (the real-gate analogue of [`rx_layer`], used on
/// the upstream side of the golden ansatz so real amplitudes are preserved).
pub fn ry_layer<R: Rng + ?Sized>(circuit: &mut Circuit, qubits: &[usize], rng: &mut R) {
    for &q in qubits {
        // Same literal interval as the paper's RX layer.
        #[allow(clippy::approx_constant)]
        circuit.ry(rng.gen_range(0.0..6.28), q);
    }
}

fn build_layers<R: Rng + ?Sized>(
    num_qubits: usize,
    config: RandomCircuitConfig,
    rng: &mut R,
    one_q: &dyn Fn(&mut R) -> Gate,
    two_q: &dyn Fn(&mut R) -> Gate,
) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    for _ in 0..config.depth {
        // Random visitation order (Fisher–Yates).
        let mut order: Vec<usize> = (0..num_qubits).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut used = vec![false; num_qubits];
        let mut idx = 0;
        while idx < order.len() {
            let q = order[idx];
            idx += 1;
            if used[q] {
                continue;
            }
            // Try to pair with the next unused qubit in the order.
            let partner = order[idx..].iter().copied().find(|&p| !used[p]);
            if let Some(p) = partner {
                if num_qubits > 1 && rng.gen_bool(config.two_qubit_prob) {
                    used[q] = true;
                    used[p] = true;
                    circuit.push(two_q(rng), &[q, p]);
                    continue;
                }
            }
            used[q] = true;
            circuit.push(one_q(rng), &[q]);
        }
    }
    circuit
}

fn one_qubit_gate<R: Rng + ?Sized>(rng: &mut R) -> Gate {
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    match rng.gen_range(0..10) {
        0 => Gate::H,
        1 => Gate::X,
        2 => Gate::Y,
        3 => Gate::Z,
        4 => Gate::S,
        5 => Gate::T,
        6 => Gate::Rx(theta),
        7 => Gate::Ry(theta),
        8 => Gate::Rz(theta),
        _ => Gate::U3(
            theta,
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.0..std::f64::consts::TAU),
        ),
    }
}

fn two_qubit_gate<R: Rng + ?Sized>(rng: &mut R) -> Gate {
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    match rng.gen_range(0..6) {
        0 => Gate::Cx,
        1 => Gate::Cz,
        2 => Gate::Swap,
        3 => Gate::Crx(theta),
        4 => Gate::Crz(theta),
        _ => Gate::CPhase(theta),
    }
}

fn one_qubit_real_gate<R: Rng + ?Sized>(rng: &mut R) -> Gate {
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    match rng.gen_range(0..5) {
        0 => Gate::H,
        1 => Gate::X,
        2 => Gate::Z,
        _ => Gate::Ry(theta),
    }
}

fn two_qubit_real_gate<R: Rng + ?Sized>(rng: &mut R) -> Gate {
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    match rng.gen_range(0..4) {
        0 => Gate::Cx,
        1 => Gate::Cz,
        2 => Gate::Cry(theta),
        _ => Gate::Swap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_depth() {
        let c = random_circuit(
            4,
            RandomCircuitConfig {
                depth: 5,
                two_qubit_prob: 0.5,
            },
            1,
        );
        // Every layer touches every qubit, so depth >= requested layers is
        // not guaranteed (gates can commute visually) but instruction count
        // is at least ceil(n/2) per layer and at most n per layer.
        assert!(c.len() >= 5 * 2 && c.len() <= 5 * 4);
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let cfg = RandomCircuitConfig::default();
        let a = random_circuit(5, cfg, 99);
        let b = random_circuit(5, cfg, 99);
        assert_eq!(a, b);
        let c = random_circuit(5, cfg, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn circuits_are_unitary() {
        for seed in 0..5 {
            let c = random_circuit(3, RandomCircuitConfig::default(), seed);
            assert!(c.unitary().is_unitary(1e-9), "seed {seed}");
        }
    }

    #[test]
    fn real_circuits_are_real() {
        for seed in 0..10 {
            let c = random_real_circuit(4, RandomCircuitConfig::default(), seed);
            assert!(c.is_real(), "seed {seed} produced a non-real gate");
            assert!(c.unitary().is_real(1e-12), "seed {seed} unitary not real");
        }
    }

    #[test]
    fn unrestricted_circuits_eventually_use_complex_gates() {
        let found_complex = (0..20).any(|seed| {
            !random_circuit(
                4,
                RandomCircuitConfig {
                    depth: 6,
                    two_qubit_prob: 0.3,
                },
                seed,
            )
            .is_real()
        });
        assert!(found_complex, "20 seeds never produced a complex gate");
    }

    #[test]
    fn two_qubit_prob_zero_gives_only_single_qubit_gates() {
        let c = random_circuit(
            4,
            RandomCircuitConfig {
                depth: 4,
                two_qubit_prob: 0.0,
            },
            3,
        );
        assert_eq!(c.two_qubit_gate_count(), 0);
        assert_eq!(c.len(), 16); // every qubit gets a 1q gate per layer
    }

    #[test]
    fn two_qubit_prob_one_maximises_pairs() {
        let c = random_circuit(
            4,
            RandomCircuitConfig {
                depth: 1,
                two_qubit_prob: 1.0,
            },
            4,
        );
        assert_eq!(c.two_qubit_gate_count(), 2); // 4 qubits = 2 pairs
    }

    #[test]
    fn rx_layer_targets_given_qubits() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Circuit::new(5);
        rx_layer(&mut c, &[1, 3], &mut rng);
        assert_eq!(c.len(), 2);
        assert_eq!(c.instructions()[0].qubits, vec![1]);
        assert_eq!(c.instructions()[1].qubits, vec![3]);
        assert!(matches!(c.instructions()[0].gate, Gate::Rx(_)));
    }

    #[test]
    fn ry_layer_is_real() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Circuit::new(3);
        ry_layer(&mut c, &[0, 1, 2], &mut rng);
        assert!(c.is_real());
    }

    #[test]
    fn single_qubit_circuit_generation_works() {
        let c = random_circuit(
            1,
            RandomCircuitConfig {
                depth: 3,
                two_qubit_prob: 0.9,
            },
            5,
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }
}
