//! Stabilizer tableau abstract domain.
//!
//! A [`StabilizerTableau`] tracks a set of *stabilizer generators* of the
//! state produced by a circuit prefix: signed Hermitian Pauli strings
//! `±W_1⊗…⊗W_n` with `g|ψ> = |ψ>`. The initial state `|0…0>` is stabilized
//! by `Z_q` on every qubit. Clifford instructions transform generators
//! exactly via [`crate::gate::Gate::clifford_action`]; non-Clifford instructions
//! **widen**: every generator whose support touches the instruction's
//! operands is dropped. The surviving set is always a sound
//! under-approximation — each remaining generator really does stabilize
//! the concrete state, because its support is disjoint from every widened
//! region (the non-Clifford unitary acts on other qubits and commutes with
//! it).
//!
//! The dataflow pass in `qcut-core` consumes the tableau at each cut to
//! *prove* Pauli coefficients zero: any Pauli string `Q` that anticommutes
//! with a surviving stabilizer has `<Q> = 0` exactly.
//!
//! Masks are `u64`, so the domain supports circuits up to 64 qubits —
//! far beyond anything the statevector paths here can touch.

use crate::circuit::{Circuit, Instruction};
use qcut_math::Pauli;

/// Maximum width the bit-mask representation supports.
pub const MAX_TABLEAU_QUBITS: usize = 64;

/// One stabilizer generator `sign · ⊗_q W_q`: qubit `q` carries `X` iff
/// bit `q` of `x` is set, `Z` iff bit `q` of `z` is set, `Y` iff both,
/// `I` iff neither. `negative` is the sign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StabilizerGenerator {
    /// X-component bit mask (bit `q` = qubit `q`).
    pub x: u64,
    /// Z-component bit mask.
    pub z: u64,
    /// True for a `-1` sign.
    pub negative: bool,
}

impl StabilizerGenerator {
    /// The Pauli factor on qubit `q`.
    pub fn pauli_at(&self, q: usize) -> Pauli {
        match ((self.x >> q) & 1, (self.z >> q) & 1) {
            (0, 0) => Pauli::I,
            (1, 0) => Pauli::X,
            (1, 1) => Pauli::Y,
            _ => Pauli::Z,
        }
    }

    /// Whether the generator acts non-trivially on any qubit in `mask`.
    pub fn touches(&self, mask: u64) -> bool {
        (self.x | self.z) & mask != 0
    }
}

/// The abstract state: a (possibly depleted) stabilizer generator set.
///
/// Invariant: generators always commute pairwise and are independent —
/// both properties are preserved by Clifford conjugation and by dropping
/// generators, the only two transformers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabilizerTableau {
    num_qubits: usize,
    gens: Vec<StabilizerGenerator>,
    widened: bool,
}

impl StabilizerTableau {
    /// The tableau of `|0…0>` on `n` qubits: one `Z_q` generator per qubit.
    ///
    /// # Panics
    /// If `n` exceeds [`MAX_TABLEAU_QUBITS`].
    pub fn new(n: usize) -> Self {
        assert!(
            n <= MAX_TABLEAU_QUBITS,
            "stabilizer tableau supports at most {MAX_TABLEAU_QUBITS} qubits"
        );
        StabilizerTableau {
            num_qubits: n,
            gens: (0..n)
                .map(|q| StabilizerGenerator {
                    x: 0,
                    z: 1u64 << q,
                    negative: false,
                })
                .collect(),
            widened: false,
        }
    }

    /// Propagates the whole circuit from `|0…0>`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut t = StabilizerTableau::new(circuit.num_qubits());
        for inst in circuit.instructions() {
            t.apply(inst);
        }
        t
    }

    /// Number of qubits the tableau describes.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The surviving generators.
    pub fn generators(&self) -> &[StabilizerGenerator] {
        &self.gens
    }

    /// Whether any widening happened (the set may be incomplete). When
    /// false, the generator set is a *full-rank* description of the state —
    /// the prover can then argue exactness, not just soundness.
    pub fn is_widened(&self) -> bool {
        self.widened
    }

    /// Abstract transformer for one instruction: exact Clifford
    /// conjugation when [`crate::gate::Gate::clifford_action`] exists, otherwise
    /// widening over the operand qubits.
    pub fn apply(&mut self, inst: &Instruction) {
        let Some(action) = inst.gate.clifford_action() else {
            self.widen(&inst.qubits);
            return;
        };
        for g in &mut self.gens {
            let locals: Vec<Pauli> = inst.qubits.iter().map(|&q| g.pauli_at(q)).collect();
            if locals.iter().all(|p| *p == Pauli::I) {
                continue;
            }
            let (neg, image) = action.image(&locals);
            g.negative ^= neg;
            for (&q, p) in inst.qubits.iter().zip(&image) {
                let bit = 1u64 << q;
                let (xb, zb) = match p {
                    Pauli::I => (0, 0),
                    Pauli::X => (bit, 0),
                    Pauli::Y => (bit, bit),
                    Pauli::Z => (0, bit),
                };
                g.x = (g.x & !bit) | xb;
                g.z = (g.z & !bit) | zb;
            }
        }
    }

    /// Widening (⊤ on the given qubits): drops every generator whose
    /// support intersects `qubits`. Sound because the unknown unitary is
    /// supported on `qubits` only, so it commutes with — and preserves —
    /// every disjoint-support generator.
    pub fn widen(&mut self, qubits: &[usize]) {
        let mask = qubits.iter().fold(0u64, |m, &q| m | (1u64 << q));
        let before = self.gens.len();
        self.gens.retain(|g| !g.touches(mask));
        if self.gens.len() < before || !qubits.is_empty() {
            self.widened = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_of(t: &StabilizerTableau, i: usize) -> StabilizerGenerator {
        t.generators()[i]
    }

    #[test]
    fn initial_state_is_all_z() {
        let t = StabilizerTableau::new(3);
        assert_eq!(t.generators().len(), 3);
        for (q, g) in t.generators().iter().enumerate() {
            assert_eq!(g.pauli_at(q), Pauli::Z);
            assert!(!g.negative);
            assert_eq!(g.x, 0);
        }
        assert!(!t.is_widened());
    }

    #[test]
    fn hadamard_turns_z_into_x() {
        let mut c = Circuit::new(2);
        c.h(0);
        let t = StabilizerTableau::from_circuit(&c);
        assert_eq!(gen_of(&t, 0).pauli_at(0), Pauli::X);
        assert_eq!(gen_of(&t, 1).pauli_at(1), Pauli::Z);
        assert!(!t.is_widened());
    }

    #[test]
    fn ghz_state_has_the_textbook_stabilizers() {
        // H(0); CX(0,1); CX(1,2) → stabilizers XXX, ZZI, IZZ.
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let t = StabilizerTableau::from_circuit(&c);
        let labels: Vec<String> = t
            .generators()
            .iter()
            .map(|g| (0..3).map(|q| g.pauli_at(q).label()).collect())
            .collect();
        assert!(labels.contains(&"XXX".to_string()), "{labels:?}");
        assert_eq!(
            t.generators().iter().filter(|g| g.x == 0).count(),
            2,
            "two pure-Z generators: {labels:?}"
        );
        for g in t.generators() {
            assert!(!g.negative);
        }
    }

    #[test]
    fn x_flips_the_sign_of_z() {
        let mut c = Circuit::new(1);
        c.x(0);
        let t = StabilizerTableau::from_circuit(&c);
        assert_eq!(gen_of(&t, 0).pauli_at(0), Pauli::Z);
        assert!(gen_of(&t, 0).negative, "X|0> = |1> is stabilized by -Z");
    }

    #[test]
    fn non_clifford_gate_widens_only_its_support() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.t(0);
        let t = StabilizerTableau::from_circuit(&c);
        assert!(t.is_widened());
        assert_eq!(t.generators().len(), 2, "X_0 dropped, Z_1 and Z_2 live");
        for g in t.generators() {
            assert_eq!(g.pauli_at(0), Pauli::I);
        }
    }

    #[test]
    fn widening_is_transitive_through_entanglement() {
        // CX entangles 0-1, then T on qubit 1 kills both joint generators.
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.t(1);
        let t = StabilizerTableau::from_circuit(&c);
        // After CX: XX and ZZ — both touch qubit 1, both dropped.
        assert!(t.generators().is_empty());
        assert!(t.is_widened());
    }

    #[test]
    fn clifford_only_circuits_stay_full_rank() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.s(2);
        c.cz(2, 3);
        c.x(3);
        let t = StabilizerTableau::from_circuit(&c);
        assert_eq!(t.generators().len(), 4);
        assert!(!t.is_widened());
    }
}
