//! Light-cone abstract domain: instruction reachability over wire edges.
//!
//! The forward cone of instruction `i` is every instruction its output
//! wires can influence (including `i` itself); the backward cone is every
//! instruction that can influence its inputs. Wire edges always point from
//! a lower instruction index to a higher one ([`CircuitDag`] builds them
//! from consecutive timeline entries), so each cone family is computed in
//! a single pass over the instruction list.
//!
//! On top of the cones, [`dead_instructions`] derives two whole-circuit
//! dead-gate facts a single-gate identity check cannot see:
//!
//! * **prep-dead** — a diagonal gate whose relevant operands are still in
//!   their initial `|0>` state acts only by a global phase;
//! * **measure-dead** — a diagonal gate whose entire strict forward cone
//!   is diagonal commutes to the end of the circuit, where diagonal
//!   unitaries cannot change computational-basis outcome probabilities.

use crate::circuit::{Circuit, Instruction};
use crate::dag::CircuitDag;

/// Forward/backward instruction-reachability sets for one circuit.
#[derive(Clone, Debug)]
pub struct LightCones {
    forward: Vec<Vec<bool>>,
    backward: Vec<Vec<bool>>,
}

impl LightCones {
    /// Computes both cone families from a wire-edge DAG.
    pub fn new(dag: &CircuitDag) -> Self {
        let n = dag.num_instructions();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in dag.wire_edges() {
            successors[e.from].push(e.to);
            predecessors[e.to].push(e.from);
        }
        // Edges point strictly forward, so a right-to-left pass closes the
        // forward relation and a left-to-right pass closes the backward one.
        let mut forward = vec![vec![false; n]; n];
        for i in (0..n).rev() {
            forward[i][i] = true;
            for &t in &successors[i] {
                let (head, tail) = forward.split_at_mut(t);
                let (dst, src) = (&mut head[i], &tail[0]);
                for (d, &v) in dst.iter_mut().zip(src.iter()) {
                    *d |= v;
                }
            }
        }
        let mut backward = vec![vec![false; n]; n];
        for i in 0..n {
            backward[i][i] = true;
            for &t in &predecessors[i] {
                let (head, tail) = backward.split_at_mut(i);
                let (src, dst) = (&head[t], &mut tail[0]);
                for (d, &v) in dst.iter_mut().zip(src.iter()) {
                    *d |= v;
                }
            }
        }
        LightCones { forward, backward }
    }

    /// Convenience constructor straight from a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        LightCones::new(&CircuitDag::new(circuit))
    }

    /// The forward cone of instruction `i` as a membership vector
    /// (`cone[j]` — can `i` influence `j`?). Contains `i` itself.
    pub fn forward(&self, i: usize) -> &[bool] {
        &self.forward[i]
    }

    /// The backward cone of instruction `i` (`cone[j]` — can `j`
    /// influence `i`?). Contains `i` itself.
    pub fn backward(&self, i: usize) -> &[bool] {
        &self.backward[i]
    }

    /// Whether instruction `i` can influence instruction `j`.
    pub fn reaches(&self, i: usize, j: usize) -> bool {
        self.forward[i][j]
    }
}

/// Why an instruction is dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadGateKind {
    /// Acts by a global phase because its relevant operands are still in
    /// the initial `|0>` state.
    PrepDead,
    /// Diagonal with an all-diagonal strict forward cone: commutes to the
    /// final computational-basis measurement, which it cannot affect.
    MeasureDead,
}

/// One dead-instruction fact: the instruction index and the argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadGate {
    /// Instruction index in program order.
    pub index: usize,
    /// Which argument proves it dead.
    pub kind: DeadGateKind,
}

/// Finds instructions that provably cannot affect the final
/// computational-basis distribution, by the prep-side freshness argument
/// and the measure-side all-diagonal-cone argument. Single-gate effective
/// identities ([`crate::gate::Gate::is_effective_identity`]) are also dead,
/// of course — callers that want only the *whole-circuit* facts should
/// filter those out.
pub fn dead_instructions(circuit: &Circuit) -> Vec<DeadGate> {
    let cones = LightCones::from_circuit(circuit);
    let insts = circuit.instructions();
    let mut dead = Vec::new();

    // Prep side: track which qubits are still exactly |0>. Diagonal gates
    // preserve freshness (they never move amplitude off the fresh branch);
    // anything else consumes it.
    let mut fresh = vec![true; circuit.num_qubits()];
    for (i, inst) in insts.iter().enumerate() {
        if inst.gate.is_diagonal() {
            if prep_dead(inst, &fresh) {
                dead.push(DeadGate {
                    index: i,
                    kind: DeadGateKind::PrepDead,
                });
            }
        } else {
            for &q in &inst.qubits {
                fresh[q] = false;
            }
        }
    }

    // Measure side: a diagonal gate whose strict forward cone is all
    // diagonal commutes to the end.
    for (i, inst) in insts.iter().enumerate() {
        if !inst.gate.is_diagonal() {
            continue;
        }
        let cone = cones.forward(i);
        let all_diagonal = insts
            .iter()
            .enumerate()
            .skip(i + 1)
            .all(|(j, other)| !cone[j] || other.gate.is_diagonal());
        if all_diagonal && !dead.iter().any(|d| d.index == i) {
            dead.push(DeadGate {
                index: i,
                kind: DeadGateKind::MeasureDead,
            });
        }
    }
    dead.sort_by_key(|d| d.index);
    dead
}

/// Whether a *diagonal* instruction acts as a global phase given the
/// freshness map. A 1-qubit diagonal gate on a fresh qubit always does.
/// A 2-qubit diagonal gate with a fresh operand does iff its diagonal,
/// restricted to that operand's `|0>` subspace, is proportional to the
/// identity — e.g. `Cz` is dead when either operand is fresh, `Crz` only
/// when its control is.
fn prep_dead(inst: &Instruction, fresh: &[bool]) -> bool {
    const TOL: f64 = 1e-9;
    match inst.qubits.len() {
        1 => fresh[inst.qubits[0]],
        2 => {
            let m = inst.gate.matrix();
            for (op, other) in [(0usize, 1usize), (1, 0)] {
                if !fresh[inst.qubits[op]] {
                    continue;
                }
                // Diagonal indices with operand `op`'s bit clear; the
                // remaining 2×2 block acts on the other operand.
                let (a, b) = if op == 0 { (0, 2) } else { (0, 1) };
                if (m[(a, a)] - m[(b, b)]).abs() < TOL {
                    return true;
                }
                // Keep the stronger fact when only `other` is fresh too.
                let _ = other;
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn cones_follow_wire_edges_transitively() {
        // 0: h q0, 1: cx q0 q1, 2: x q2, 3: cx q1 q2
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.x(2);
        c.cx(1, 2);
        let cones = LightCones::from_circuit(&c);
        assert!(cones.reaches(0, 1));
        assert!(cones.reaches(0, 3), "transitively via the first CX");
        assert!(!cones.reaches(0, 2), "X on q2 is causally disconnected");
        assert!(cones.reaches(2, 3));
        assert!(!cones.reaches(1, 0), "forward cones never point back");
        assert!(cones.backward(3)[0]);
        assert!(cones.backward(3)[2]);
        assert!(!cones.backward(1)[2]);
    }

    #[test]
    fn cones_contain_self() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let cones = LightCones::from_circuit(&c);
        for i in 0..2 {
            assert!(cones.reaches(i, i));
            assert!(cones.backward(i)[i]);
        }
    }

    #[test]
    fn s_on_fresh_qubit_is_prep_dead() {
        let mut c = Circuit::new(2);
        c.s(0);
        c.h(0);
        c.h(1);
        let dead = dead_instructions(&c);
        assert!(dead
            .iter()
            .any(|d| d.index == 0 && d.kind == DeadGateKind::PrepDead));
        assert!(!dead.iter().any(|d| d.index == 1 || d.index == 2));
    }

    #[test]
    fn s_after_h_is_not_prep_dead() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.s(0);
        c.h(0);
        let dead = dead_instructions(&c);
        assert!(dead.is_empty(), "{dead:?}");
    }

    #[test]
    fn cz_is_dead_when_either_operand_is_fresh_but_crz_needs_its_control() {
        // q0 made non-fresh by H; q1 stays fresh.
        let mut c = Circuit::new(2);
        c.h(0);
        c.push(Gate::Cz, &[0, 1]);
        c.push(Gate::Crz(0.7), &[0, 1]); // control q0 not fresh
        c.push(Gate::Crz(0.7), &[1, 0]); // control q1 fresh
        c.h(1);
        c.h(0);
        let dead = dead_instructions(&c);
        let prep: Vec<usize> = dead
            .iter()
            .filter(|d| d.kind == DeadGateKind::PrepDead)
            .map(|d| d.index)
            .collect();
        assert_eq!(prep, vec![1, 3], "{dead:?}");
    }

    #[test]
    fn trailing_diagonal_gates_are_measure_dead() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.s(0);
        c.rz(0.4, 1);
        c.push(Gate::Cz, &[0, 1]);
        let dead = dead_instructions(&c);
        let measure: Vec<usize> = dead
            .iter()
            .filter(|d| d.kind == DeadGateKind::MeasureDead)
            .map(|d| d.index)
            .collect();
        assert_eq!(measure, vec![2, 3, 4], "{dead:?}");
    }

    #[test]
    fn diagonal_gate_before_a_hadamard_is_not_measure_dead() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.s(0);
        c.h(0);
        assert!(dead_instructions(&c).is_empty());
    }
}
