//! Wire-level dependency analysis.
//!
//! Cutting a circuit means severing a *wire segment* — the edge between two
//! consecutive instructions on one qubit. This module exposes the circuit as
//! per-wire timelines plus an instruction-level dependency graph so the
//! fragmenter (in `qcut-core`) can check that a set of cuts really
//! bipartitions the circuit with all severed edges pointing downstream.

use crate::circuit::Circuit;

/// Dependency view of a circuit: per-wire timelines and instruction edges.
#[derive(Debug, Clone)]
pub struct CircuitDag {
    num_qubits: usize,
    num_instructions: usize,
    /// `timelines[q]` = instruction indices touching qubit `q`, in order.
    timelines: Vec<Vec<usize>>,
    /// Wire edges `(qubit, from_instruction, to_instruction)` between
    /// consecutive instructions on the same wire.
    wire_edges: Vec<WireEdge>,
}

/// An edge between two consecutive instructions on one wire. `position` is
/// the index of `from` within the wire's timeline, i.e. the edge sits
/// *after* the `position`-th instruction on that qubit (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireEdge {
    /// The qubit whose wire carries this edge.
    pub qubit: usize,
    /// Upstream instruction index.
    pub from: usize,
    /// Downstream instruction index.
    pub to: usize,
    /// Position of `from` in the wire timeline of `qubit`.
    pub position: usize,
}

impl CircuitDag {
    /// Builds the dependency view of `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let timelines = circuit.wire_timelines();
        let mut wire_edges = Vec::new();
        for (q, tl) in timelines.iter().enumerate() {
            for (pos, w) in tl.windows(2).enumerate() {
                wire_edges.push(WireEdge {
                    qubit: q,
                    from: w[0],
                    to: w[1],
                    position: pos,
                });
            }
        }
        CircuitDag {
            num_qubits: circuit.num_qubits(),
            num_instructions: circuit.len(),
            timelines,
            wire_edges,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions.
    pub fn num_instructions(&self) -> usize {
        self.num_instructions
    }

    /// Per-wire instruction timelines.
    pub fn timelines(&self) -> &[Vec<usize>] {
        &self.timelines
    }

    /// All wire edges.
    pub fn wire_edges(&self) -> &[WireEdge] {
        &self.wire_edges
    }

    /// The wire edge sitting after the `position`-th instruction on `qubit`,
    /// if any.
    pub fn edge_at(&self, qubit: usize, position: usize) -> Option<WireEdge> {
        self.wire_edges
            .iter()
            .copied()
            .find(|e| e.qubit == qubit && e.position == position)
    }

    /// Partitions instruction indices into connected components of the
    /// dependency graph **after removing the given wire edges**. Returns a
    /// component id per instruction (ids are arbitrary but contiguous
    /// starting at 0).
    pub fn components_without(&self, removed: &[WireEdge]) -> Vec<usize> {
        let n = self.num_instructions;
        let mut dsu = DisjointSet::new(n);
        for e in &self.wire_edges {
            if !removed.contains(e) {
                dsu.union(e.from, e.to);
            }
        }
        dsu.component_ids()
    }

    /// Bipartition check: with the given wire edges removed, can the
    /// remaining connected components be split into an *upstream* and a
    /// *downstream* side such that every removed edge points upstream →
    /// downstream?
    ///
    /// Multiple components per side are allowed — a product-structured
    /// upstream (several disconnected real blocks, one per cut) is exactly
    /// what makes several cuts *independently* golden. A component is
    /// upstream if it contains a `from` endpoint, downstream if it contains
    /// a `to` endpoint; a component containing both kinds, or touching no
    /// removed edge at all, makes the split ill-defined and yields `None`.
    ///
    /// Returns a per-instruction mask (`true` = upstream) on success.
    pub fn bipartition(&self, removed: &[WireEdge]) -> Option<Vec<bool>> {
        if removed.is_empty() {
            return None;
        }
        let comp = self.components_without(removed);
        let num_comp = comp.iter().copied().max().map_or(0, |m| m + 1);
        // Side per component: None = unassigned, Some(true) = upstream.
        let mut side: Vec<Option<bool>> = vec![None; num_comp];
        for e in removed {
            for (inst, want_up) in [(e.from, true), (e.to, false)] {
                let c = comp[inst];
                match side[c] {
                    None => side[c] = Some(want_up),
                    Some(s) if s != want_up => return None, // both roles
                    _ => {}
                }
            }
        }
        if side.iter().any(|s| s.is_none()) {
            return None; // a component touches no cut — side is ambiguous
        }
        Some(comp.iter().map(|&c| side[c] == Some(true)).collect())
    }
}

/// Minimal union-find with path halving.
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Contiguous component ids in first-appearance order.
    fn component_ids(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut ids = vec![usize::MAX; n];
        let mut next = 0;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let r = self.find(i);
            if ids[r] == usize::MAX {
                ids[r] = next;
                next += 1;
            }
            out.push(ids[r]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    /// The paper's Fig. 1 shape: U12 on (0,1), U23 on (1,2); the wire of
    /// qubit 1 between them is the cut.
    fn three_qubit_chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.cx(0, 1); // inst 0 = "U12"
        c.cx(1, 2); // inst 1 = "U23"
        c
    }

    #[test]
    fn wire_edges_enumerate_consecutive_pairs() {
        let dag = CircuitDag::new(&three_qubit_chain());
        assert_eq!(dag.wire_edges().len(), 1);
        let e = dag.wire_edges()[0];
        assert_eq!((e.qubit, e.from, e.to, e.position), (1, 0, 1, 0));
    }

    #[test]
    fn edge_at_finds_position() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).h(0);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.edge_at(0, 0).unwrap().from, 0);
        assert_eq!(dag.edge_at(0, 1).unwrap().from, 1);
        assert!(dag.edge_at(0, 2).is_none());
        assert!(dag.edge_at(1, 0).is_none());
    }

    #[test]
    fn removing_the_cut_edge_bipartitions() {
        let dag = CircuitDag::new(&three_qubit_chain());
        let cut = dag.edge_at(1, 0).unwrap();
        let part = dag.bipartition(&[cut]).unwrap();
        assert_eq!(part, vec![true, false]); // inst 0 upstream, inst 1 downstream
    }

    #[test]
    fn connected_circuit_without_cuts_is_single_component() {
        let dag = CircuitDag::new(&three_qubit_chain());
        let comp = dag.components_without(&[]);
        assert!(comp.iter().all(|&c| c == comp[0]));
    }

    #[test]
    fn bipartition_fails_when_not_disconnecting() {
        // Two gates on (0,1) and (1,2) plus another (0,2) gate that keeps
        // the halves connected even after cutting wire 1.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 2);
        let dag = CircuitDag::new(&c);
        let cut = dag.edge_at(1, 0).unwrap();
        assert!(dag.bipartition(&[cut]).is_none());
    }

    #[test]
    fn bipartition_fails_on_back_and_forth_cuts() {
        // Cutting both edges of a three-gate chain on one wire creates three
        // components — not a bipartition.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(1, 0);
        let dag = CircuitDag::new(&c);
        let e0 = dag.edge_at(1, 0).unwrap();
        let e1 = dag.edge_at(1, 1).unwrap();
        assert!(dag.bipartition(&[e0, e1]).is_none());
    }

    #[test]
    fn two_cut_bipartition_succeeds() {
        // f1 = gates on (0,1); f2 = gates on (2,3); wires 0 and 1 both cross.
        let mut c = Circuit::new(4);
        c.cx(0, 1); // upstream
        c.cx(2, 3); // downstream-only gate
        c.cx(0, 2); // downstream, pulls wire 0 across
        c.cx(1, 3); // downstream, pulls wire 1 across
        let dag = CircuitDag::new(&c);
        let c0 = dag.edge_at(0, 0).unwrap();
        let c1 = dag.edge_at(1, 0).unwrap();
        let part = dag.bipartition(&[c0, c1]).unwrap();
        assert_eq!(part, vec![true, false, false, false]);
    }

    #[test]
    fn disconnected_pair_without_removed_edges_is_not_bipartition() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let dag = CircuitDag::new(&c);
        assert!(dag.bipartition(&[]).is_none());
    }

    #[test]
    fn product_structured_upstream_is_accepted() {
        // Two independent upstream blocks (0,1) and (2,3), each feeding one
        // cut into a common downstream block — the independently-golden
        // multi-cut layout.
        let mut c = Circuit::new(4);
        c.cx(0, 1); // upstream block A (inst 0)
        c.cx(2, 3); // upstream block B (inst 1)
        c.cx(1, 3); // downstream joins both cut wires (inst 2)
        let dag = CircuitDag::new(&c);
        let cut_a = dag.edge_at(1, 0).unwrap();
        let cut_b = dag.edge_at(3, 0).unwrap();
        let part = dag.bipartition(&[cut_a, cut_b]).unwrap();
        assert_eq!(part, vec![true, true, false]);
    }

    #[test]
    fn component_with_both_roles_is_rejected() {
        // One component is both the source of cut 1 and the sink of cut 2.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).h(0).h(1);
        let dag = CircuitDag::new(&c);
        // Cut wire 0 after inst 0 (edge 0->2) and wire 1 after inst 2
        // (edge 2->4): the middle component {2} would be downstream of the
        // first cut and upstream of the second.
        let e0 = dag.edge_at(0, 0).unwrap();
        let e1 = dag.edge_at(1, 1).unwrap();
        assert!(dag.bipartition(&[e0, e1]).is_none());
    }

    #[test]
    fn free_component_is_rejected() {
        // Qubit 2's lone H belongs to neither side of the cut.
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.h(1);
        c.h(2);
        let dag = CircuitDag::new(&c);
        let cut = dag.edge_at(1, 0).unwrap();
        assert!(dag.bipartition(&[cut]).is_none());
    }
}
