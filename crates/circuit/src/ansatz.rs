//! Circuit families from the paper.
//!
//! * [`three_qubit_example`] — the §II-A example: `ρ = U23 U12 |000><000| …`
//!   with a cut on the middle wire between the two blocks (paper Fig. 1).
//! * [`GoldenAnsatz`] — the §III experimental workload (paper Fig. 2): an
//!   odd-width circuit split into an upstream block `U1` and a downstream
//!   block `U2` sharing one wire, with rotation layers of random angles in
//!   `[0, 6.28]`, *designed* so the shared wire is a golden cutting point
//!   for the Pauli-Y basis.
//! * [`MultiCutAnsatz`] — our extension for the multi-cut scaling ablation:
//!   `K` independent real upstream blocks, each feeding one cut into a
//!   common downstream block, making every cut independently golden.
//!
//! ## How the golden point is designed in
//!
//! The paper states (§III) that its ansatz makes "the contribution of the
//! first fragment … conditioned on observing each eigenstate of the Pauli Y
//! operator" cancel. The concrete mechanism we use (documented in
//! DESIGN.md): the upstream block contains only gates with **real**
//! matrices, so the pre-cut state has real amplitudes; for any real state ρ
//! and real observable Π, `tr((Π ⊗ Y) ρ) = 0` identically because `Π ⊗ Y`
//! is purely imaginary and Hermitian (hence antisymmetric). The paper's RX
//! layers (complex matrices) are kept on the downstream side, where they
//! cannot disturb the upstream cancellation.

use crate::circuit::Circuit;
use crate::cut::{CutLocation, CutSpec};
use crate::random::{
    random_circuit_with, random_real_circuit_with, rx_layer, ry_layer, RandomCircuitConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's three-qubit example (Fig. 1): `U12` on qubits (0, 1), `U23`
/// on qubits (1, 2), cut on the wire of qubit 1 between them.
///
/// Returns `(circuit, cut)`. `u12` and `u23` are appended as arbitrary
/// 2-qubit blocks; pass e.g. Haar-random unitaries or structured circuits.
pub fn three_qubit_example(u12: &Circuit, u23: &Circuit) -> (Circuit, CutSpec) {
    assert_eq!(u12.num_qubits(), 2, "U12 must be a 2-qubit circuit");
    assert_eq!(u23.num_qubits(), 2, "U23 must be a 2-qubit circuit");
    assert!(
        u12.instructions().iter().any(|i| i.acts_on(1)),
        "U12 must touch the shared qubit"
    );
    assert!(
        u23.instructions().iter().any(|i| i.acts_on(0)),
        "U23 must touch the shared qubit"
    );
    let mut c = Circuit::new(3);
    c.extend_mapped(u12, &[0, 1]);
    let ops_on_shared_wire = c.instructions().iter().filter(|i| i.acts_on(1)).count();
    c.extend_mapped(u23, &[1, 2]);
    let cut = CutSpec::single(1, ops_on_shared_wire - 1);
    (c, cut)
}

/// The paper's Fig. 2 workload family: odd width `n`, upstream fragment on
/// qubits `0..=n/2` (sizes 3 for n=5, 4 for n=7), downstream fragment on
/// qubits `n/2..n`, single cut on the shared qubit `n/2`.
#[derive(Debug, Clone, Copy)]
pub struct GoldenAnsatz {
    /// Total circuit width (odd, ≥ 3). The paper uses 5 and 7.
    pub width: usize,
    /// Workload seed — each seed is one random "trial" circuit.
    pub seed: u64,
    /// Depth of the random blocks `U1` and `U2`.
    pub block_depth: usize,
}

impl GoldenAnsatz {
    /// Standard configuration matching the paper's circuits ("only a few
    /// gates in each", §III-A).
    pub fn new(width: usize, seed: u64) -> Self {
        assert!(width >= 3 && width % 2 == 1, "width must be odd and >= 3");
        GoldenAnsatz {
            width,
            seed,
            block_depth: 2,
        }
    }

    /// The qubit whose wire is cut (the one shared by `U1` and `U2`).
    pub fn cut_qubit(&self) -> usize {
        self.width / 2
    }

    /// Qubits of the upstream fragment (including the cut qubit).
    pub fn upstream_qubits(&self) -> Vec<usize> {
        (0..=self.cut_qubit()).collect()
    }

    /// Qubits of the downstream fragment (including the cut qubit).
    pub fn downstream_qubits(&self) -> Vec<usize> {
        (self.cut_qubit()..self.width).collect()
    }

    /// Builds the circuit and its cut.
    ///
    /// Layout (little-endian qubit order, cut qubit `m = width/2`):
    ///
    /// ```text
    /// q0   ─[RY]─┐        ┌──────────
    /// ...        │ U1real │              (upstream: real gates only)
    /// qm   ─[RY]─┘        └──✂──[RX]─┐        ┌───
    /// ...                            │ U2rand │     (downstream: any gates)
    /// qn-1 ──────────────────[RX]────┘        └───
    /// ```
    pub fn build(&self) -> (Circuit, CutSpec) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let m = self.cut_qubit();
        let up = self.upstream_qubits();
        let down = self.downstream_qubits();
        let mut c = Circuit::new(self.width);

        // Upstream: RY layer (real analogue of the paper's rotation layer)
        // then an entangling chain (guarantees the fragment is connected)
        // then a random real block U1.
        ry_layer(&mut c, &up, &mut rng);
        for w in up.windows(2) {
            c.cx(w[0], w[1]);
        }
        let u1 = random_real_circuit_with(
            up.len(),
            RandomCircuitConfig {
                depth: self.block_depth,
                two_qubit_prob: 0.5,
            },
            &mut rng,
        );
        c.extend_mapped(&u1, &up);

        // The cut sits after the last upstream instruction on wire m.
        let cut_pos = c.instructions().iter().filter(|i| i.acts_on(m)).count() - 1;

        // Downstream: the paper's RX layer with θ ~ U[0, 6.28], an
        // entangling chain, and a random (unrestricted) block U2.
        rx_layer(&mut c, &down, &mut rng);
        for w in down.windows(2) {
            c.cx(w[0], w[1]);
        }
        let u2 = random_circuit_with(
            down.len(),
            RandomCircuitConfig {
                depth: self.block_depth,
                two_qubit_prob: 0.5,
            },
            &mut rng,
        );
        c.extend_mapped(&u2, &down);

        (c, CutSpec::single(m, cut_pos))
    }
}

/// Multi-cut extension: `K` independent upstream blocks, each real and each
/// feeding exactly one cut wire into a shared downstream block. Because the
/// upstream state is a tensor product of real blocks, *every* cut is
/// independently golden for the Y basis — any Pauli string with a Y at any
/// cut position has vanishing upstream coefficient.
#[derive(Debug, Clone, Copy)]
pub struct MultiCutAnsatz {
    /// Number of cuts `K ≥ 1`.
    pub num_cuts: usize,
    /// Qubits per upstream block (each block's last qubit is its cut wire).
    pub block_width: usize,
    /// Extra downstream-only qubits (fresh wires).
    pub downstream_extra: usize,
    /// Workload seed.
    pub seed: u64,
    /// Depth of the random sub-blocks.
    pub block_depth: usize,
    /// When `false`, upstream blocks use unrestricted gates — no golden
    /// structure. Useful as the negative control in detection tests.
    pub golden: bool,
}

impl MultiCutAnsatz {
    /// A compact default: blocks of 2 qubits, one fresh downstream qubit.
    pub fn new(num_cuts: usize, seed: u64) -> Self {
        assert!(num_cuts >= 1, "need at least one cut");
        MultiCutAnsatz {
            num_cuts,
            block_width: 2,
            downstream_extra: 1,
            seed,
            block_depth: 2,
            golden: true,
        }
    }

    /// Total circuit width.
    pub fn width(&self) -> usize {
        self.num_cuts * self.block_width + self.downstream_extra
    }

    /// The cut qubits, one per upstream block, in cut-index order.
    pub fn cut_qubits(&self) -> Vec<usize> {
        (0..self.num_cuts)
            .map(|k| k * self.block_width + self.block_width - 1)
            .collect()
    }

    /// Builds the circuit and its cuts.
    pub fn build(&self) -> (Circuit, CutSpec) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.width();
        let mut c = Circuit::new(n);
        let cfg = RandomCircuitConfig {
            depth: self.block_depth,
            two_qubit_prob: 0.5,
        };

        let mut cuts = Vec::with_capacity(self.num_cuts);
        for k in 0..self.num_cuts {
            let base = k * self.block_width;
            let qubits: Vec<usize> = (base..base + self.block_width).collect();
            ry_layer(&mut c, &qubits, &mut rng);
            for w in qubits.windows(2) {
                c.cx(w[0], w[1]);
            }
            let block = if self.golden {
                random_real_circuit_with(qubits.len(), cfg, &mut rng)
            } else {
                random_circuit_with(qubits.len(), cfg, &mut rng)
            };
            c.extend_mapped(&block, &qubits);
            let cut_wire = qubits[self.block_width - 1];
            let pos = c
                .instructions()
                .iter()
                .filter(|i| i.acts_on(cut_wire))
                .count()
                - 1;
            cuts.push(CutLocation::new(cut_wire, pos));
        }

        // Downstream block: the K cut wires plus the fresh qubits.
        let mut down: Vec<usize> = self.cut_qubits();
        down.extend(self.num_cuts * self.block_width..n);
        rx_layer(&mut c, &down, &mut rng);
        for w in down.windows(2) {
            c.cx(w[0], w[1]);
        }
        let u2 = random_circuit_with(down.len(), cfg, &mut rng);
        c.extend_mapped(&u2, &down);

        (c, CutSpec::new(cuts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_math::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn haar_block(seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(2);
        c.unitary2(haar_unitary(4, &mut rng), 0, 1);
        c
    }

    #[test]
    fn three_qubit_example_is_valid() {
        let (c, cut) = three_qubit_example(&haar_block(1), &haar_block(2));
        assert_eq!(c.num_qubits(), 3);
        let (edges, mask) = cut.validate(&c).unwrap();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].qubit, 1);
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn golden_ansatz_five_qubits_validates() {
        for seed in 0..10 {
            let a = GoldenAnsatz::new(5, seed);
            let (c, cut) = a.build();
            assert_eq!(c.num_qubits(), 5);
            let (edges, mask) = cut.validate(&c).expect("ansatz must be cuttable");
            assert_eq!(edges[0].qubit, 2);
            // Upstream instructions are exactly those acting only on 0..=2.
            for (i, inst) in c.instructions().iter().enumerate() {
                let all_up = inst.qubits.iter().all(|&q| q <= 2);
                let any_down = inst.qubits.iter().any(|&q| q > 2);
                if mask[i] {
                    assert!(all_up, "upstream instruction {i} uses a downstream qubit");
                } else {
                    // Downstream instructions touch only qubits >= 2.
                    assert!(
                        inst.qubits.iter().all(|&q| q >= 2),
                        "downstream instruction {i} reaches back upstream"
                    );
                }
                let _ = any_down;
            }
        }
    }

    #[test]
    fn golden_ansatz_seven_qubits_validates() {
        let a = GoldenAnsatz::new(7, 3);
        assert_eq!(a.cut_qubit(), 3);
        assert_eq!(a.upstream_qubits(), vec![0, 1, 2, 3]);
        assert_eq!(a.downstream_qubits(), vec![3, 4, 5, 6]);
        let (c, cut) = a.build();
        cut.validate(&c).expect("7-qubit ansatz must be cuttable");
    }

    #[test]
    fn golden_ansatz_upstream_is_real() {
        // Every instruction on the upstream side must have a real matrix —
        // the designed golden-Y mechanism.
        for seed in 0..10 {
            let (c, cut) = GoldenAnsatz::new(5, seed).build();
            let (_, mask) = cut.validate(&c).unwrap();
            for (i, inst) in c.instructions().iter().enumerate() {
                if mask[i] {
                    assert!(
                        inst.gate.is_real(),
                        "upstream gate {} is complex",
                        inst.gate
                    );
                }
            }
        }
    }

    #[test]
    fn golden_ansatz_downstream_uses_rx() {
        let (c, cut) = GoldenAnsatz::new(5, 0).build();
        let (_, mask) = cut.validate(&c).unwrap();
        let has_rx_downstream = c
            .instructions()
            .iter()
            .enumerate()
            .any(|(i, inst)| !mask[i] && matches!(inst.gate, crate::gate::Gate::Rx(_)));
        assert!(has_rx_downstream, "paper's RX layer missing downstream");
    }

    #[test]
    fn golden_ansatz_is_seed_deterministic() {
        let (a1, _) = GoldenAnsatz::new(5, 7).build();
        let (a2, _) = GoldenAnsatz::new(5, 7).build();
        assert_eq!(a1, a2);
        let (b, _) = GoldenAnsatz::new(5, 8).build();
        assert_ne!(a1, b);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_width_rejected() {
        GoldenAnsatz::new(4, 0);
    }

    #[test]
    fn multi_cut_ansatz_validates_for_various_k() {
        for k in 1..=3 {
            let (c, cut) = MultiCutAnsatz::new(k, 11).build();
            assert_eq!(cut.num_cuts(), k);
            let (edges, _) = cut
                .validate(&c)
                .unwrap_or_else(|e| panic!("multi-cut ansatz K={k} failed validation: {e}"));
            assert_eq!(edges.len(), k);
        }
    }

    #[test]
    fn multi_cut_upstream_blocks_are_real_when_golden() {
        let (c, cut) = MultiCutAnsatz::new(2, 5).build();
        let (_, mask) = cut.validate(&c).unwrap();
        for (i, inst) in c.instructions().iter().enumerate() {
            if mask[i] {
                assert!(inst.gate.is_real());
            }
        }
    }

    #[test]
    fn non_golden_multi_cut_still_validates() {
        let mut a = MultiCutAnsatz::new(2, 5);
        a.golden = false;
        let (c, cut) = a.build();
        cut.validate(&c)
            .expect("non-golden variant must still bipartition");
    }

    #[test]
    fn multi_cut_geometry() {
        let a = MultiCutAnsatz {
            num_cuts: 3,
            block_width: 2,
            downstream_extra: 2,
            seed: 0,
            block_depth: 1,
            golden: true,
        };
        assert_eq!(a.width(), 8);
        assert_eq!(a.cut_qubits(), vec![1, 3, 5]);
    }
}
