//! OpenQASM 2.0 export.
//!
//! Lets circuits (and cut fragments) leave the workspace for inspection in
//! standard tooling. Only export is provided — the library generates its
//! own workloads, so an importer would be dead code; arbitrary `Unitary1/2`
//! gates have no faithful QASM 2.0 spelling and are rejected with a clear
//! error.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Errors raised during export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QasmError {
    /// The circuit contains a raw-matrix gate with no QASM 2.0 spelling.
    UnsupportedGate {
        /// Instruction index.
        index: usize,
        /// Gate mnemonic.
        gate: String,
    },
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::UnsupportedGate { index, gate } => write!(
                f,
                "instruction #{index} ({gate}) has no OpenQASM 2.0 representation; \
                 decompose raw-matrix gates before exporting"
            ),
        }
    }
}

impl std::error::Error for QasmError {}

/// Serialises a circuit to OpenQASM 2.0 with a final full-register
/// measurement (the workspace's implicit measurement convention).
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    let n = circuit.num_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{n}];\ncreg c[{n}];");

    for (index, inst) in circuit.instructions().iter().enumerate() {
        let q = &inst.qubits;
        let line = match &inst.gate {
            Gate::I => format!("id q[{}];", q[0]),
            Gate::H => format!("h q[{}];", q[0]),
            Gate::X => format!("x q[{}];", q[0]),
            Gate::Y => format!("y q[{}];", q[0]),
            Gate::Z => format!("z q[{}];", q[0]),
            Gate::S => format!("s q[{}];", q[0]),
            Gate::Sdg => format!("sdg q[{}];", q[0]),
            Gate::T => format!("t q[{}];", q[0]),
            Gate::Tdg => format!("tdg q[{}];", q[0]),
            Gate::Sx => format!("sx q[{}];", q[0]),
            Gate::Rx(a) => format!("rx({a}) q[{}];", q[0]),
            Gate::Ry(a) => format!("ry({a}) q[{}];", q[0]),
            Gate::Rz(a) => format!("rz({a}) q[{}];", q[0]),
            Gate::Phase(a) => format!("p({a}) q[{}];", q[0]),
            Gate::U3(t, p, l) => format!("u3({t},{p},{l}) q[{}];", q[0]),
            Gate::Cx => format!("cx q[{}],q[{}];", q[0], q[1]),
            Gate::Cy => format!("cy q[{}],q[{}];", q[0], q[1]),
            Gate::Cz => format!("cz q[{}],q[{}];", q[0], q[1]),
            Gate::Ch => format!("ch q[{}],q[{}];", q[0], q[1]),
            Gate::Swap => format!("swap q[{}],q[{}];", q[0], q[1]),
            Gate::Crx(a) => format!("crx({a}) q[{}],q[{}];", q[0], q[1]),
            Gate::Cry(a) => format!("cry({a}) q[{}],q[{}];", q[0], q[1]),
            Gate::Crz(a) => format!("crz({a}) q[{}],q[{}];", q[0], q[1]),
            Gate::CPhase(a) => format!("cp({a}) q[{}],q[{}];", q[0], q[1]),
            Gate::Unitary1(_) | Gate::Unitary2(_) => {
                return Err(QasmError::UnsupportedGate {
                    index,
                    gate: inst.gate.name(),
                })
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    let _ = writeln!(out, "measure q -> c;");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_math::Matrix;

    #[test]
    fn exports_common_gates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.5, 2).swap(1, 2).t(0);
        let qasm = to_qasm(&c).unwrap();
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("h q[0];"));
        assert!(qasm.contains("cx q[0],q[1];"));
        assert!(qasm.contains("rz(0.5) q[2];"));
        assert!(qasm.contains("swap q[1],q[2];"));
        assert!(qasm.ends_with("measure q -> c;\n"));
    }

    #[test]
    fn gate_count_matches_line_count() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).sdg(0).cx(0, 1).cz(1, 0);
        let qasm = to_qasm(&c).unwrap();
        // header (2) + qreg + creg + 5 gates + measure = 10 lines.
        assert_eq!(qasm.lines().count(), 10);
    }

    #[test]
    fn raw_unitary_rejected_with_index() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.unitary1(Matrix::identity(2), 0);
        let err = to_qasm(&c).unwrap_err();
        assert_eq!(
            err,
            QasmError::UnsupportedGate {
                index: 1,
                gate: "u1q".into()
            }
        );
        assert!(err.to_string().contains("#1"));
    }

    #[test]
    fn ansatz_exports_cleanly() {
        // The golden ansatz uses only named gates, so it round-trips to
        // QASM (useful for cross-checking against Qiskit).
        use crate::ansatz::GoldenAnsatz;
        let (c, _) = GoldenAnsatz::new(5, 3).build();
        let qasm = to_qasm(&c).unwrap();
        assert!(qasm.contains("qreg q[5];"));
        assert!(qasm.contains("rx("));
        assert!(qasm.contains("ry("));
    }
}
