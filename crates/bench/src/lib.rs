//! # qcut-bench
//!
//! Benchmark harness regenerating every figure of the paper's evaluation
//! (§III) plus the ablations listed in DESIGN.md. Binaries:
//!
//! * `fig3_accuracy` — weighted distance of uncut-on-device vs
//!   golden-cut-on-device against the noiseless ground truth (Fig. 3);
//! * `fig4_runtime` — simulator wall time with vs without the golden
//!   optimisation (Fig. 4);
//! * `fig5_hardware` — simulated device wall time and shot counts,
//!   standard vs golden (Fig. 5);
//! * `scaling_table` — multi-cut scaling of settings/terms (§II-B claims).
//!
//! Criterion benches live under `benches/`. All binaries take
//! `--trials N --shots N` style flags; defaults reproduce the paper's
//! parameters.

#![forbid(unsafe_code)]

use qcut_stats::ci::{ci95_of, ConfidenceInterval};
use std::collections::HashMap;

/// Minimal command-line flag parser: `--key value` pairs after the binary
/// name. Unknown keys are rejected so typos fail loudly.
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args`, allowing only the given keys.
    pub fn parse(allowed: &[&str]) -> Args {
        let mut values = HashMap::new();
        let mut argv = std::env::args().skip(1);
        while let Some(key) = argv.next() {
            let name = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got {key}"));
            assert!(
                allowed.contains(&name),
                "unknown flag --{name}; allowed: {allowed:?}"
            );
            let value = argv
                .next()
                .unwrap_or_else(|| panic!("flag --{name} needs a value"));
            values.insert(name.to_string(), value);
        }
        Args { values }
    }

    /// Integer flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer"))
            })
            .unwrap_or(default)
    }

    /// Float flag with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be a number"))
            })
            .unwrap_or(default)
    }

    /// Boolean flag (`true`/`false`) with default.
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be true/false"))
            })
            .unwrap_or(default)
    }
}

/// Formats a confidence interval the way the figures label bars.
pub fn fmt_ci(ci: &ConfidenceInterval) -> String {
    if ci.half_width.is_finite() {
        format!("{:>10.4} ± {:<8.4}", ci.mean, ci.half_width)
    } else {
        format!("{:>10.4} ± inf     ", ci.mean)
    }
}

/// Mean ± 95 % CI of a sample vector, formatted.
pub fn summarize(samples: &[f64]) -> (ConfidenceInterval, String) {
    let ci = ci95_of(samples);
    let s = fmt_ci(&ci);
    (ci, s)
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Workspace-root path for a `BENCH_*.json` artifact. Cargo runs bench
/// binaries with the *package* directory as cwd, so a bare relative write
/// would land in `crates/bench/` — CI's schema checks (and the README's
/// "written to the repo root" contract) expect the workspace root.
pub fn artifact_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ci_handles_finite_and_infinite() {
        let (_, s) = summarize(&[1.0, 2.0, 3.0]);
        assert!(s.contains('±'));
        let (ci, s1) = summarize(&[5.0]);
        assert!(ci.half_width.is_infinite());
        assert!(s1.contains("inf"));
    }
}
