//! Ablation A: multi-cut scaling of the golden reduction (§II-B claims).
//!
//! The paper states that with `K = K_r + K_g` cuts the reconstruction
//! contraction has `O(4^{K_r} 3^{K_g})` terms and the protocol needs
//! `O(6^{K_r} 4^{K_g})` downstream circuit evaluations. This table prints
//! measured counts and exact-reconstruction contraction times for
//! `K = 1..=max_cuts`, all-regular vs all-golden, on the multi-cut ansatz
//! (whose product-structured upstream makes every cut independently
//! golden).
//!
//! ```text
//! cargo run -p qcut-bench --release --bin scaling_table
//! cargo run -p qcut-bench --release --bin scaling_table -- --max-cuts 5
//! ```

use qcut_bench::{rule, Args};
use qcut_circuit::ansatz::MultiCutAnsatz;
use qcut_core::basis::BasisPlan;
use qcut_core::fragment::Fragmenter;
use qcut_core::reconstruction::exact_reconstruct;
use qcut_core::tomography::ExperimentPlan;
use qcut_math::Pauli;
use qcut_sim::statevector::StateVector;
use qcut_stats::distance::total_variation_distance;
use qcut_stats::distribution::Distribution;
use std::time::Instant;

fn main() {
    let args = Args::parse(&["max-cuts", "seed"]);
    let max_cuts = args.get_u64("max-cuts", 4) as usize;
    let seed = args.get_u64("seed", 3);

    println!("Ablation A — multi-cut scaling (paper §II-B complexity claims)");
    rule(108);
    println!(
        "{:>2} {:>8} | {:>9} {:>9} {:>7} {:>12} | {:>9} {:>9} {:>7} {:>12} | {:>10}",
        "K",
        "qubits",
        "meas",
        "preps",
        "terms",
        "recon ms",
        "meas*",
        "preps*",
        "terms*",
        "recon ms*",
        "tvd check"
    );
    println!(
        "{:>11} | {:^41} | {:^41} |",
        "", "standard", "all cuts golden (Y)"
    );
    rule(108);

    for k in 1..=max_cuts {
        let (circuit, spec) = MultiCutAnsatz::new(k, seed).build();
        let frags = Fragmenter::fragment(&circuit, &spec).expect("ansatz must fragment");
        let truth = Distribution::from_values(
            circuit.num_qubits(),
            StateVector::from_circuit(&circuit).probabilities(),
        );

        let standard = BasisPlan::standard(k);
        let golden = BasisPlan::with_neglected(vec![Some(Pauli::Y); k]);

        let mut row: Vec<String> = vec![format!("{k:>2} {:>8}", circuit.num_qubits())];
        let mut tvds = Vec::new();
        for plan in [&standard, &golden] {
            let experiment = ExperimentPlan::build(&frags, plan);
            let started = Instant::now();
            let recon = exact_reconstruct(&frags, plan);
            let ms = started.elapsed().as_secs_f64() * 1000.0;
            tvds.push(total_variation_distance(&recon, &truth));
            row.push(format!(
                "{:>9} {:>9} {:>7} {:>12.3}",
                experiment.upstream.len(),
                experiment.downstream.len(),
                plan.all_recon_strings().len(),
                ms
            ));
        }
        println!(
            "{} | {} | {} | {:>10.2e}",
            row[0],
            row[1],
            row[2],
            tvds.iter().fold(0.0f64, |a, &b| a.max(b))
        );

        // Verify the paper's exponents exactly.
        assert_eq!(
            BasisPlan::standard(k).all_prep_settings().len(),
            6usize.pow(k as u32)
        );
        assert_eq!(golden.all_prep_settings().len(), 4usize.pow(k as u32));
        assert_eq!(golden.all_recon_strings().len(), 3usize.pow(k as u32));
    }
    rule(108);
    println!("columns marked * use the golden plan; tvd check = max reconstruction error vs truth");
    println!("expected exponents: meas 3^K→2^K, preps 6^K→4^K, terms 4^K→3^K (paper §II-B)");
}
