//! Regenerates **Figure 3**: reconstruction accuracy on (simulated)
//! quantum hardware.
//!
//! For each device size (5 qubits split 3+3, 7 qubits split 4+4) and each
//! trial circuit, compares two arms against the noiseless ground-truth
//! distribution using the paper's weighted distance `d_w` (Eq. 17):
//!
//! * **uncut** — the full circuit executed on the noisy device;
//! * **golden cut** — fragments executed on the same device, reconstructed
//!   with the Y basis neglected.
//!
//! Paper parameters: 10 trials, 10 000 shots per (sub)circuit, 95 % CI.
//! Paper finding: the two arms are statistically indistinguishable — the
//! golden method "performs as well as full circuit execution … in terms of
//! outputting the correct bitstring distribution".
//!
//! ```text
//! cargo run -p qcut-bench --release --bin fig3_accuracy
//! cargo run -p qcut-bench --release --bin fig3_accuracy -- --trials 20 --shots 5000
//! ```

use qcut_bench::{rule, summarize, Args};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
use qcut_device::presets;
use qcut_math::Pauli;
use qcut_sim::statevector::StateVector;
use qcut_stats::distance::{total_variation_distance, weighted_distance};
use qcut_stats::distribution::Distribution;

fn main() {
    let args = Args::parse(&["trials", "shots", "seed"]);
    let trials = args.get_u64("trials", 10);
    let shots = args.get_u64("shots", 10_000);
    let base_seed = args.get_u64("seed", 1);

    println!("Figure 3 — weighted distance d_w to noiseless ground truth");
    println!("trials = {trials}, shots per (sub)circuit = {shots}, error bars = 95% CI");
    println!("(d_w is the paper's chi-square-style metric, Eq. 17; it is dominated by");
    println!(" low-probability ground-truth outcomes, hence the wide CIs the paper also");
    println!(" reports. TVD columns are included for a bounded companion view.)");
    rule(120);
    println!(
        "{:<26} {:>22} {:>22} {:>22} {:>22}",
        "configuration", "d_w uncut", "d_w golden cut", "tvd uncut", "tvd golden cut"
    );
    rule(120);

    for (width, label) in [
        (5usize, "5q device (3+3 split)"),
        (7, "7q device (4+4 split)"),
    ] {
        let mut uncut_dw = Vec::new();
        let mut golden_dw = Vec::new();
        let mut uncut_tvd = Vec::new();
        let mut golden_tvd = Vec::new();

        for trial in 0..trials {
            let seed = base_seed + trial;
            let (circuit, cut) = GoldenAnsatz::new(width, seed).build();
            let truth = Distribution::from_values(
                width,
                StateVector::from_circuit(&circuit).probabilities(),
            );

            // Fresh device per trial so RNG streams are independent.
            let backend: Box<dyn qcut_device::backend::Backend> = if width == 5 {
                Box::new(presets::ibm_5q(1000 + seed))
            } else {
                Box::new(presets::ibm_7q(2000 + seed))
            };
            let executor = CutExecutor::new(backend.as_ref());

            let uncut = executor
                .run_uncut(&circuit, shots)
                .expect("uncut run failed");
            uncut_dw.push(weighted_distance(&uncut.distribution, &truth));
            uncut_tvd.push(total_variation_distance(&uncut.distribution, &truth));

            let options = ExecutionOptions {
                shots_per_setting: shots,
                ..Default::default()
            };
            let golden = executor
                .run(
                    &circuit,
                    &cut,
                    GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
                    &options,
                )
                .expect("golden run failed");
            golden_dw.push(weighted_distance(&golden.distribution, &truth));
            golden_tvd.push(total_variation_distance(&golden.distribution, &truth));
        }

        let (uncut_ci, uncut_s) = summarize(&uncut_dw);
        let (golden_ci, golden_s) = summarize(&golden_dw);
        let (_, uncut_tvd_s) = summarize(&uncut_tvd);
        let (_, golden_tvd_s) = summarize(&golden_tvd);
        println!("{label:<26} {uncut_s:>22} {golden_s:>22} {uncut_tvd_s:>22} {golden_tvd_s:>22}");
        let overlap = if uncut_ci.overlaps(&golden_ci) {
            "overlapping CIs: no detectable accuracy loss (paper's finding)"
        } else if golden_ci.mean < uncut_ci.mean {
            "golden arm measurably closer to truth"
        } else {
            "uncut arm measurably closer to truth"
        };
        println!("{:<26} -> {overlap}", "");
    }
    rule(120);
    println!("paper reference: Fig. 3 shows both arms within each other's 95% CIs.");
}
