//! Regenerates **Figure 4**: algorithm runtime on the simulator, with and
//! without the golden cutting point optimisation.
//!
//! Measures host wall time for *gathering fragment data + reconstruction*
//! per trial (the quantity the paper records: "the time taken for
//! gathering fragment data and reconstructing them on a randomly generated
//! circuit", §III-B), assuming the golden cutting point is known a priori.
//!
//! Paper parameters: 1000 trials × 1000 shots per (sub)circuit.
//! Paper finding: the golden arm is ≈ ⅓ faster (6 vs 9 subcircuits).
//!
//! ```text
//! cargo run -p qcut-bench --release --bin fig4_runtime
//! cargo run -p qcut-bench --release --bin fig4_runtime -- --trials 200 --width 7
//! ```

use qcut_bench::{rule, summarize, Args};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
use qcut_device::ideal::IdealBackend;
use qcut_math::Pauli;

fn main() {
    let args = Args::parse(&["trials", "shots", "width", "seed", "parallel"]);
    let trials = args.get_u64("trials", 1000);
    let shots = args.get_u64("shots", 1000);
    let width = args.get_u64("width", 5) as usize;
    let base_seed = args.get_u64("seed", 1);
    let parallel = args.get_bool("parallel", false); // paper: sequential device

    println!("Figure 4 — simulator runtime with vs without golden cutting point");
    println!(
        "width = {width}, trials = {trials}, shots per (sub)circuit = {shots}, \
         parallel fragment execution = {parallel}"
    );
    rule(78);

    let mut standard_secs = Vec::with_capacity(trials as usize);
    let mut golden_secs = Vec::with_capacity(trials as usize);

    for trial in 0..trials {
        let seed = base_seed + trial;
        let (circuit, cut) = GoldenAnsatz::new(width, seed).build();
        let backend = IdealBackend::new(5000 + seed);
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: shots,
            parallel,
            ..Default::default()
        };

        let standard = executor
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
            .expect("standard run failed");
        standard_secs.push(standard.report.total_host_seconds());

        let golden = executor
            .run(
                &circuit,
                &cut,
                GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
                &options,
            )
            .expect("golden run failed");
        golden_secs.push(golden.report.total_host_seconds());
    }

    let (std_ci, std_s) = summarize(&standard_secs);
    let (gold_ci, gold_s) = summarize(&golden_secs);
    println!("{:<34} {:>28}  (seconds/trial)", "method", "mean ± 95% CI");
    rule(78);
    println!("{:<34} {std_s:>28}", "standard reconstruction [18]");
    println!("{:<34} {gold_s:>28}", "golden cutting point (ours)");
    rule(78);
    let speedup = 1.0 - gold_ci.mean / std_ci.mean;
    println!(
        "relative runtime reduction: {:.1}%  (paper reports ≈33% from 9 → 6 subcircuits)",
        100.0 * speedup
    );
}
