//! Regenerates **Figure 5**: circuit-cutting runtime on (simulated) IBM
//! quantum devices, with and without the golden cutting point.
//!
//! The reported quantity is *device wall time*: the simulated occupation
//! time of the QPU (job overhead + shot time, summed over subcircuit
//! jobs — a single QPU executes them sequentially), which is what the
//! paper measured through the IBM Quantum Experience.
//!
//! Paper parameters: 50 trials × 1000 shots per (sub)circuit.
//! Paper findings:
//!   standard method: 18.84 s mean,  golden method: 12.61 s mean (−33 %);
//!   total circuit executions drop 4.5×10⁵ → 3.0×10⁵.
//!
//! ```text
//! cargo run -p qcut-bench --release --bin fig5_hardware
//! cargo run -p qcut-bench --release --bin fig5_hardware -- --trials 10
//! ```

use qcut_bench::{rule, summarize, Args};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
use qcut_device::presets;
use qcut_math::Pauli;

fn main() {
    let args = Args::parse(&["trials", "shots", "width", "seed"]);
    let trials = args.get_u64("trials", 50);
    let shots = args.get_u64("shots", 1000);
    let width = args.get_u64("width", 5) as usize;
    let base_seed = args.get_u64("seed", 1);

    println!("Figure 5 — circuit cutting runtime on simulated IBM devices");
    println!("width = {width}, trials = {trials}, shots per (sub)circuit = {shots}");
    rule(78);

    let mut standard_secs = Vec::new();
    let mut golden_secs = Vec::new();
    let mut standard_shots_total = 0u64;
    let mut golden_shots_total = 0u64;

    for trial in 0..trials {
        let seed = base_seed + trial;
        let (circuit, cut) = GoldenAnsatz::new(width, seed).build();
        let backend = if width == 5 {
            presets::ibm_5q(7000 + seed)
        } else {
            presets::ibm_7q(8000 + seed)
        };
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: shots,
            ..Default::default()
        };

        let standard = executor
            .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
            .expect("standard run failed");
        standard_secs.push(standard.report.simulated_device_seconds);
        standard_shots_total += standard.report.total_shots;

        let golden = executor
            .run(
                &circuit,
                &cut,
                GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
                &options,
            )
            .expect("golden run failed");
        golden_secs.push(golden.report.simulated_device_seconds);
        golden_shots_total += golden.report.total_shots;
    }

    let (std_ci, std_s) = summarize(&standard_secs);
    let (gold_ci, gold_s) = summarize(&golden_secs);
    println!(
        "{:<34} {:>28}  (device seconds/trial)",
        "method", "mean ± 95% CI"
    );
    rule(78);
    println!("{:<34} {std_s:>28}", "standard reconstruction [18]");
    println!("{:<34} {gold_s:>28}", "golden cutting point (ours)");
    rule(78);
    println!(
        "total circuit executions: standard = {standard_shots_total}  golden = {golden_shots_total}"
    );
    println!(
        "reduction: {:.1}% wall time, {:.1}% shots  \
         (paper: 18.84 s → 12.61 s, 4.5e5 → 3.0e5 shots, both −33%)",
        100.0 * (1.0 - gold_ci.mean / std_ci.mean),
        100.0 * (1.0 - golden_shots_total as f64 / standard_shots_total as f64),
    );
}
