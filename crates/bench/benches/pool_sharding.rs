//! Multi-backend sharding: single device vs a 4-member homogeneous pool.
//!
//! The workload is the paper's 5-qubit golden ansatz under the standard
//! (9-subcircuit) protocol on IBM-like timing, where per-job overhead
//! dominates — exactly the regime of Fig. 5, so the gather makespan is
//! proportional to the per-device job count. A 4-member pool shards the
//! 9-job fan-out round-robin (3/2/2/2), so its makespan — the slowest
//! member's simulated device time — must undercut the single device's
//! total by the job-count ratio (≈ 3x here).
//!
//! Writes `BENCH_pool_sharding.json` and asserts the acceptance bar —
//! sharded makespan speedup ≥ 2 at 4 homogeneous members — at bench
//! time so the CI smoke run (`cargo bench -- --test`) trips regressions.

use criterion::{criterion_group, Criterion};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, CutRun, ExecutionOptions};
use qcut_device::ideal::IdealBackend;
use qcut_device::pool::{BackendPool, PlacementPolicy};
use qcut_device::timing::TimingModel;

const MEMBERS: usize = 4;
const SHOTS_PER_SETTING: u64 = 1000;
/// The acceptance bar: the pool's sharded makespan must be ≥ 2x shorter.
const MIN_SPEEDUP: f64 = 2.0;

fn options() -> ExecutionOptions {
    ExecutionOptions {
        shots_per_setting: SHOTS_PER_SETTING,
        ..Default::default()
    }
}

fn member(seed: u64) -> IdealBackend {
    IdealBackend::new(seed).with_timing(TimingModel::ibm_like())
}

fn pool(members: usize) -> BackendPool {
    let mut p = BackendPool::new(PlacementPolicy::RoundRobin);
    for seed in 0..members as u64 {
        p = p.with_backend(member(1000 + seed));
    }
    p
}

fn run_single() -> CutRun {
    let (circuit, cut) = GoldenAnsatz::new(5, 11).build();
    let backend = member(1000);
    CutExecutor::new(&backend)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options())
        .unwrap()
}

fn run_pool(members: usize) -> CutRun {
    let (circuit, cut) = GoldenAnsatz::new(5, 11).build();
    let p = pool(members);
    CutExecutor::new(&p)
        .run(&circuit, &cut, GoldenPolicy::Disabled, &options())
        .unwrap()
}

/// Criterion microbench: host-side cost of the sharded gather vs the
/// single-device gather (the simulated makespan numbers come from
/// `write_summary`).
fn bench_pool_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_sharding");
    group.sample_size(10);
    group.bench_function("single_device", |b| {
        b.iter(|| run_single().report.total_shots)
    });
    group.bench_function("pool_4_members", |b| {
        b.iter(|| run_pool(MEMBERS).report.total_shots)
    });
    group.finish();
}

criterion_group!(benches, bench_pool_sharding);

/// Writes the machine-readable summary the acceptance gate reads.
fn write_summary() {
    let single = run_single();
    let sharded = run_pool(MEMBERS);

    // The pool must not change the physics or the shot bill.
    assert_eq!(
        sharded.report.total_shots, single.report.total_shots,
        "sharding must not change the executed shot total"
    );
    assert_eq!(sharded.report.jobs_executed, single.report.jobs_executed);
    assert_eq!(
        sharded.report.jobs_per_member.iter().sum::<u64>(),
        sharded.report.jobs_executed as u64,
        "per-member deliveries must sum to the executed jobs"
    );

    // Makespans: the single device serialises every job; the pool's
    // wall-clock is its slowest member.
    let makespan_single = single.report.simulated_device_seconds;
    let makespan_pool = sharded
        .report
        .member_makespan_seconds
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    assert!(makespan_pool > 0.0, "pool accounting must be populated");
    let speedup = makespan_single / makespan_pool;
    assert!(
        speedup >= MIN_SPEEDUP,
        "sharded makespan speedup {speedup:.2}x at {MEMBERS} members is below \
         the {MIN_SPEEDUP}x bar (single {makespan_single:.2}s, pool {makespan_pool:.2}s, \
         jobs per member {:?})",
        sharded.report.jobs_per_member
    );

    let per_member: Vec<String> = sharded
        .report
        .jobs_per_member
        .iter()
        .zip(&sharded.report.member_makespan_seconds)
        .map(|(jobs, secs)| format!("    {{\"jobs\": {jobs}, \"makespan_s\": {secs:.3}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pool_sharding\",\n  \"workload\": \
         \"5-qubit golden ansatz, standard 9-subcircuit protocol, {SHOTS_PER_SETTING} \
         shots/setting on IBM-like timing; single device vs a {MEMBERS}-member \
         homogeneous round-robin pool\",\n  \
         \"metric\": \"simulated gather makespan: single device total vs slowest pool member\",\n  \
         \"members\": {MEMBERS},\n  \
         \"jobs_total\": {},\n  \
         \"makespan_single_s\": {makespan_single:.3},\n  \
         \"makespan_pool_s\": {makespan_pool:.3},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"min_speedup\": {MIN_SPEEDUP},\n  \
         \"pool_parallel_ratio\": {:.2},\n  \
         \"per_member\": [\n{}\n  ]\n}}\n",
        sharded.report.jobs_executed,
        sharded.report.pool_parallel_ratio,
        per_member.join(",\n")
    );
    let path = qcut_bench::artifact_path("BENCH_pool_sharding.json");
    std::fs::write(&path, &json).expect("write bench summary");
    println!("wrote {}:\n{json}", path.display());
}

fn main() {
    benches();
    write_summary();
}
