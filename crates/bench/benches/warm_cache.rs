//! Cross-run warm-start cache: cold vs warm parameter sweeps.
//!
//! The workload is the cache's target scenario: a 10-qubit cut circuit
//! swept over 8 values of a parameter θ that only appears in the
//! *downstream suffix*. Two passes over the same sweep:
//!
//! 1. **Cold** — a priming sweep with the cache attached (timed honestly,
//!    store-back costs included) on a backend with tier-2 fork-state
//!    reuse enabled. The θ-free upstream fragment repeats across points,
//!    so even the priming pass starts hitting tier 1 after point 0, and
//!    the downstream settings share their pre-θ prefix, so tier 2 reuses
//!    simulator states across points.
//! 2. **Warm** — the identical sweep replayed against the populated
//!    cache on a *different-seed* backend: every node is fully served,
//!    zero shots execute, and each reconstruction is bit-identical to
//!    the cold pass (checked per point).
//!
//! Writes `BENCH_warm_cache.json` and asserts the ISSUE 7 acceptance
//! bar — median per-point cold/warm wall-clock ratio ≥ 5 — at bench
//! time so the CI smoke run (`cargo bench -- --test`) trips regressions.

use criterion::{criterion_group, Criterion};
use qcut_cache::{CacheConfig, WarmCache};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
use qcut_device::ideal::IdealBackend;
use std::sync::Arc;
use std::time::Instant;

const WIDTH: usize = 10;
const CUT_QUBIT: usize = 4;
const SHOTS_PER_SETTING: u64 = 20_000;
const POINTS: usize = 8;
/// The acceptance bar: warm sweep points must be ≥ 5x faster (median).
const MIN_MEDIAN_SPEEDUP: f64 = 5.0;

/// The swept parameter values — fixed, evenly spread over [0, 2π).
fn thetas() -> [f64; POINTS] {
    let mut t = [0.0; POINTS];
    for (i, theta) in t.iter_mut().enumerate() {
        *theta = 0.35 + i as f64 * std::f64::consts::TAU / POINTS as f64;
    }
    t
}

/// One sweep point: upstream (qubits 0..=4) is θ-free and identical at
/// every point; downstream (qubits 4..10) shares a deep entangling
/// prefix and diverges only in the final θ-dependent suffix on the last
/// wire.
fn sweep_circuit(theta: f64) -> (Circuit, CutSpec) {
    let mut c = Circuit::new(WIDTH);
    // Upstream block: RY layer + entangling chain + a second layer.
    for q in 0..=CUT_QUBIT {
        c.ry(0.3 + 0.41 * q as f64, q);
    }
    for q in 0..CUT_QUBIT {
        c.cx(q, q + 1);
    }
    for q in 0..=CUT_QUBIT {
        c.ry(1.1 - 0.17 * q as f64, q);
    }
    // The cut sits after the last upstream instruction on the shared wire.
    let cut_pos = c
        .instructions()
        .iter()
        .filter(|i| i.acts_on(CUT_QUBIT))
        .count()
        - 1;
    // Downstream shared prefix: RX layer + two entangling sweeps.
    for q in CUT_QUBIT..WIDTH {
        c.rx(0.2 + 0.29 * q as f64, q);
    }
    for q in CUT_QUBIT..WIDTH - 1 {
        c.cx(q, q + 1);
    }
    for q in CUT_QUBIT..WIDTH {
        c.rz(0.9 - 0.05 * q as f64, q);
    }
    for q in CUT_QUBIT..WIDTH - 1 {
        c.cz(q, q + 1);
    }
    // θ-dependent suffix: only these instructions differ across points.
    c.rz(theta, WIDTH - 1);
    c.rx(theta * 0.5, WIDTH - 1);
    (c, CutSpec::single(CUT_QUBIT, cut_pos))
}

fn options(cache: Option<Arc<WarmCache>>) -> ExecutionOptions {
    ExecutionOptions {
        shots_per_setting: SHOTS_PER_SETTING,
        cache,
        ..Default::default()
    }
}

/// Runs the full 8-point sweep once and returns per-point wall-clock
/// seconds plus the delivered runs (for bit-identity checks and cache
/// accounting).
fn run_sweep(
    backend: &IdealBackend,
    cache: &Arc<WarmCache>,
) -> Vec<(f64, qcut_core::pipeline::CutRun)> {
    let executor = CutExecutor::new(backend);
    thetas()
        .iter()
        .map(|&theta| {
            let (circuit, cut) = sweep_circuit(theta);
            let start = Instant::now();
            let run = executor
                .run(
                    &circuit,
                    &cut,
                    GoldenPolicy::Disabled,
                    &options(Some(cache.clone())),
                )
                .unwrap();
            (start.elapsed().as_secs_f64(), run)
        })
        .collect()
}

/// Criterion microbench: a single cold point (fresh cache) vs a single
/// warm point (pre-populated cache). The full-sweep acceptance numbers
/// come from `write_summary`.
fn bench_warm_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_cache");
    group.sample_size(10);
    let (circuit, cut) = sweep_circuit(thetas()[0]);

    group.bench_function("cold_point", |b| {
        b.iter(|| {
            let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
            let backend = IdealBackend::new(17);
            CutExecutor::new(&backend)
                .run(
                    &circuit,
                    &cut,
                    GoldenPolicy::Disabled,
                    &options(Some(cache)),
                )
                .unwrap()
                .report
                .total_shots
        })
    });

    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));
    let prime = IdealBackend::new(17);
    CutExecutor::new(&prime)
        .run(
            &circuit,
            &cut,
            GoldenPolicy::Disabled,
            &options(Some(cache.clone())),
        )
        .unwrap();
    group.bench_function("warm_point", |b| {
        b.iter(|| {
            let backend = IdealBackend::new(99);
            CutExecutor::new(&backend)
                .run(
                    &circuit,
                    &cut,
                    GoldenPolicy::Disabled,
                    &options(Some(cache.clone())),
                )
                .unwrap()
                .report
                .cache_shots_reused
        })
    });
    group.finish();
}

criterion_group!(benches, bench_warm_cache);

/// Writes the machine-readable summary the acceptance gate reads.
fn write_summary() {
    let cache = Arc::new(WarmCache::open(CacheConfig::in_memory()));

    // Cold priming sweep: tier-2 fork-state reuse on, cache being filled.
    let cold_backend = IdealBackend::new(7).with_state_reuse(64);
    let cold = run_sweep(&cold_backend, &cache);

    // Warm replay: different backend seed — nothing may execute anyway.
    let warm_backend = IdealBackend::new(1009);
    let warm = run_sweep(&warm_backend, &cache);

    let mut entries = Vec::new();
    let mut ratios = Vec::new();
    let mut states_reused_cold = 0u64;
    for (i, (theta, ((cold_s, cold_run), (warm_s, warm_run)))) in thetas()
        .iter()
        .zip(cold.iter().zip(warm.iter()))
        .enumerate()
    {
        assert_eq!(
            warm_run.report.total_shots, 0,
            "point {i}: a warm sweep point must execute zero shots"
        );
        assert_eq!(
            warm_run.report.cache_shots_reused, warm_run.report.shots_requested,
            "point {i}: every requested shot must come from the cache"
        );
        assert_eq!(
            warm_run.distribution.values(),
            cold_run.distribution.values(),
            "point {i}: warm reconstruction must be bit-identical to cold"
        );
        states_reused_cold += cold_run.report.states_reused;
        let ratio = cold_s / warm_s;
        ratios.push(ratio);
        entries.push(format!(
            "    {{\"theta\": {theta:.6}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"speedup\": {ratio:.2}, \
             \"cold_cache_shots_reused\": {}, \
             \"cold_states_reused\": {}, \
             \"warm_cache_shots_reused\": {}, \
             \"warm_total_shots\": {}}}",
            cold_s * 1e3,
            warm_s * 1e3,
            cold_run.report.cache_shots_reused,
            cold_run.report.states_reused,
            warm_run.report.cache_shots_reused,
            warm_run.report.total_shots,
        ));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = (ratios[POINTS / 2 - 1] + ratios[POINTS / 2]) / 2.0;
    // The ISSUE 7 acceptance bar, enforced at bench time so the CI smoke
    // run trips on regressions.
    assert!(
        median >= MIN_MEDIAN_SPEEDUP,
        "median warm-sweep speedup {median:.2}x is below the {MIN_MEDIAN_SPEEDUP}x bar \
         (per-point ratios: {ratios:?})"
    );

    let json = format!(
        "{{\n  \"bench\": \"warm_cache\",\n  \"workload\": \
         \"10-qubit single-cut circuit, 8-point downstream-theta sweep, {SHOTS_PER_SETTING} \
         shots/setting; cold = priming sweep with cache attached (tier-2 state reuse on), \
         warm = replay against the populated cache on a different-seed backend\",\n  \
         \"metric\": \"per-point wall-clock cold/warm ratio; warm points are bit-identical \
         and execute zero shots\",\n  \
         \"median_speedup\": {median:.2},\n  \
         \"min_median_speedup\": {MIN_MEDIAN_SPEEDUP},\n  \
         \"states_reused_cold_total\": {states_reused_cold},\n  \
         \"cache_entries\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cache.entries(),
        entries.join(",\n")
    );
    let path = qcut_bench::artifact_path("BENCH_warm_cache.json");
    std::fs::write(&path, &json).expect("write bench summary");
    println!("wrote {}:\n{json}", path.display());
}

fn main() {
    benches();
    write_summary();
}
