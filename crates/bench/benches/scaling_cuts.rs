//! Scaling benchmark across the number of cuts `K`: the exact
//! reconstruction cost grows with the number of settings/terms; the
//! golden reduction changes the base of the exponent (4→3 terms, 6→4
//! preparations — paper §II-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcut_circuit::ansatz::MultiCutAnsatz;
use qcut_core::basis::BasisPlan;
use qcut_core::fragment::Fragmenter;
use qcut_core::reconstruction::{contract, exact_downstream_tensor, exact_upstream_tensor};
use qcut_math::Pauli;

fn bench_exact_reconstruction_vs_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_vs_K");
    group.sample_size(10);
    for k in 1..=3usize {
        let (circuit, spec) = MultiCutAnsatz::new(k, 11).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();

        for (label, plan) in [
            ("standard", BasisPlan::standard(k)),
            (
                "all_golden",
                BasisPlan::with_neglected(vec![Some(Pauli::Y); k]),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    let up = exact_upstream_tensor(&frags.upstream, &plan);
                    let down = exact_downstream_tensor(&frags.downstream, &plan);
                    contract(&frags, &plan, &up, &down)
                })
            });
        }
    }
    group.finish();
}

fn bench_contraction_only_vs_cuts(c: &mut Criterion) {
    // Isolates the contraction (the 4^K vs 3^K part) from fragment
    // simulation.
    let mut group = c.benchmark_group("contraction_only_vs_K");
    group.sample_size(20);
    for k in 1..=3usize {
        let (circuit, spec) = MultiCutAnsatz::new(k, 11).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        for (label, plan) in [
            ("standard", BasisPlan::standard(k)),
            (
                "all_golden",
                BasisPlan::with_neglected(vec![Some(Pauli::Y); k]),
            ),
        ] {
            let up = exact_upstream_tensor(&frags.upstream, &plan);
            let down = exact_downstream_tensor(&frags.downstream, &plan);
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| contract(&frags, &plan, &up, &down))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_reconstruction_vs_cuts,
    bench_contraction_only_vs_cuts
);
criterion_main!(benches);
