//! Two-round adaptive allocation ablation: uniform vs usage-weighted vs
//! pilot→refine Neyman budgets at a fixed total shot count.
//!
//! The workload family is deliberately **skewed**: the golden-structured
//! ansatz circuits under a `BasisPlan::standard(K)` plan (no neglection),
//! whose Y-string coefficients (nearly) vanish. Static policies cannot see
//! that — `WeightedByUsage` keeps funding the Y settings by their usage
//! count — while the adaptive pilot measures the empirical tensors,
//! scores each setting's variance contribution (`qcut_core::variance::
//! neyman_scores`), and moves the refine budget onto the settings whose
//! data the contraction actually amplifies. In effect the adaptive policy
//! recovers a golden-style shot economy *without being told* which basis
//! is negligible.
//!
//! Two measurements, like `benches/allocation.rs`:
//!
//! 1. **Quality** — variance per shot (mean per-outcome variance × total
//!    budget, computed with exact tensors and `variance_from_schedule` so
//!    all three policies are judged by the same deterministic metric; the
//!    adaptive *schedule* still comes from a genuine pilot round on the
//!    backend).
//! 2. **Cost** — criterion times the full two-round `CutExecutor::run`
//!    against the single-round policies.
//!
//! Writes `BENCH_adaptive_allocation.json`; the K = 2 row asserts the
//! ISSUE 5 acceptance bar `var_per_shot_adaptive ≤ var_per_shot_weighted`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_core::allocation::{
    pilot_schedule, pilot_total, refine_schedule, schedule_for_plan, ShotAllocation, ShotSchedule,
};
use qcut_core::basis::BasisPlan;
use qcut_core::execution::gather_scheduled;
use qcut_core::fragment::{Fragmenter, Fragments};
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
use qcut_core::reconstruction::{exact_downstream_tensor, exact_upstream_tensor};
use qcut_core::tomography::ExperimentPlan;
use qcut_core::variance::{neyman_scores, variance_from_schedule};
use qcut_device::ideal::IdealBackend;

const TOTAL_PER_SETTING: u64 = 1000;
const PILOT_FRACTION: f64 = 0.1;

/// The skewed K-cut workload: golden-structured circuits evaluated under
/// the *standard* plan, so the (near-)vanishing Y coefficients stay in
/// the schedule and the policies must decide what to spend on them.
fn workload(k: usize) -> (Circuit, CutSpec) {
    if k == 1 {
        GoldenAnsatz::new(5, 11).build()
    } else {
        MultiCutAnsatz::new(k, 11).build()
    }
}

fn policies(total: u64) -> [(&'static str, ShotAllocation); 3] {
    [
        ("uniform", ShotAllocation::TotalBudget { total }),
        ("weighted", ShotAllocation::WeightedByUsage { total }),
        (
            "adaptive",
            ShotAllocation::Adaptive {
                pilot_fraction: PILOT_FRACTION,
                total,
            },
        ),
    ]
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_allocation");
    group.sample_size(20);
    for k in [1usize, 2] {
        let (circuit, cut) = workload(k);
        let total = BasisPlan::standard(k).total_settings() as u64 * TOTAL_PER_SETTING;
        for (label, policy) in policies(total) {
            let options = ExecutionOptions {
                allocation: Some(policy),
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    let backend = IdealBackend::new(17);
                    CutExecutor::new(&backend)
                        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
                        .unwrap()
                        .report
                        .total_shots
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive);

/// Reproduces the pipeline's two-round scheduling outside the pipeline: a
/// uniform pilot gather on the backend, empirical tensors, Neyman scores,
/// largest-remainder refine. Returns the cumulative schedule so the
/// summary can judge it with the same exact-tensor metric as the static
/// policies.
fn adaptive_schedule(frags: &Fragments, plan: &BasisPlan, total: u64) -> ShotSchedule {
    let experiment = ExperimentPlan::build(frags, plan);
    let pilot = pilot_total(PILOT_FRACTION, total);
    let pilot_sched = pilot_schedule(
        experiment.upstream.len(),
        experiment.downstream.len(),
        pilot,
    )
    .expect("pilot covers the plan");
    let backend = IdealBackend::new(29);
    let data = gather_scheduled(&backend, &experiment, &pilot_sched, true).expect("pilot gather");
    let up = qcut_core::reconstruction::upstream_tensor(&frags.upstream, plan, &data);
    let down = qcut_core::reconstruction::downstream_tensor(&frags.downstream, plan, &data);
    let scores = neyman_scores(frags, plan, &up, &down);
    refine_schedule(
        &pilot_sched,
        &scores.upstream,
        &scores.downstream,
        total - pilot,
    )
}

/// Writes the machine-readable summary the acceptance gate reads.
fn write_summary() {
    let mut entries = Vec::new();
    for k in [1usize, 2] {
        let (circuit, cut) = workload(k);
        let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
        let plan = BasisPlan::standard(k);
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let down = exact_downstream_tensor(&frags.downstream, &plan);
        let total = plan.total_settings() as u64 * TOTAL_PER_SETTING;

        let var_per_shot = |sched: &ShotSchedule| {
            assert_eq!(sched.total(), total, "policies must spend identically");
            let err = variance_from_schedule(&frags, &plan, &up, &down, sched);
            let dim = 1u64 << circuit.num_qubits();
            let mean_var: f64 = (0..dim).map(|b| err.variance(b)).sum::<f64>() / dim as f64;
            mean_var * total as f64
        };
        let uniform =
            var_per_shot(&schedule_for_plan(&plan, ShotAllocation::TotalBudget { total }).unwrap());
        let weighted = var_per_shot(
            &schedule_for_plan(&plan, ShotAllocation::WeightedByUsage { total }).unwrap(),
        );
        let adaptive = var_per_shot(&adaptive_schedule(&frags, &plan, total));
        if k == 2 {
            // The ISSUE 5 acceptance bar, enforced at bench time so the CI
            // smoke run (`cargo bench -- --test`) trips on regressions.
            assert!(
                adaptive <= weighted,
                "K=2: adaptive variance/shot {adaptive} must not exceed weighted {weighted}"
            );
        }
        entries.push(format!(
            "    {{\"k\": {k}, \"total_shots\": {total}, \
             \"pilot_fraction\": {PILOT_FRACTION}, \
             \"var_per_shot_uniform\": {uniform:.6e}, \
             \"var_per_shot_weighted\": {weighted:.6e}, \
             \"var_per_shot_adaptive\": {adaptive:.6e}, \
             \"weighted_over_adaptive\": {:.4}, \
             \"uniform_over_adaptive\": {:.4}}}",
            weighted / adaptive,
            uniform / adaptive,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"adaptive_allocation\",\n  \"workload\": \
         \"skewed-coefficient (golden-structured, standard plan) gather, equal \
         total budget, uniform vs usage-weighted vs two-round adaptive\",\n  \
         \"metric\": \"mean per-outcome variance x total budget (lower is better)\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = qcut_bench::artifact_path("BENCH_adaptive_allocation.json");
    std::fs::write(&path, &json).expect("write bench summary");
    println!("wrote {}:\n{json}", path.display());
}

fn main() {
    benches();
    write_summary();
}
