//! Micro-benchmarks of the simulation substrate: gate kernels, circuit
//! execution, sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::gate::Gate;
use qcut_circuit::random::{random_circuit, RandomCircuitConfig};
use qcut_sim::density::DensityMatrix;
use qcut_sim::noise::KrausChannel;
use qcut_sim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_single_gate_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_gate");
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("h_on_middle", n), &n, |b, &n| {
            let mut sv = StateVector::zero_state(n);
            let h = Gate::H.matrix();
            b.iter(|| sv.apply_one_qubit(&h, n / 2));
        });
        group.bench_with_input(BenchmarkId::new("cx_adjacent", n), &n, |b, &n| {
            let mut sv = StateVector::zero_state(n);
            let cx = Gate::Cx.matrix();
            b.iter(|| sv.apply_two_qubit(&cx, n / 2, n / 2 + 1));
        });
    }
    group.finish();
}

fn bench_circuit_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_circuit");
    for n in [5usize, 7, 10] {
        let circuit = random_circuit(
            n,
            RandomCircuitConfig {
                depth: 10,
                two_qubit_prob: 0.5,
            },
            42,
        );
        group.bench_with_input(
            BenchmarkId::new("random_depth10", n),
            &circuit,
            |b, circ| {
                b.iter(|| StateVector::from_circuit(circ));
            },
        );
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let mut circuit = Circuit::new(7);
    for q in 0..7 {
        circuit.h(q);
    }
    let sv = StateVector::from_circuit(&circuit);
    for shots in [1000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("shots", shots), &shots, |b, &shots| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sv.sample(shots, &mut rng));
        });
    }
    group.finish();
}

fn bench_density_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    let depol = KrausChannel::depolarizing(0.01);
    let depol2 = KrausChannel::depolarizing_two(0.01);
    for n in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::new("kraus_1q", n), &n, |b, &n| {
            let mut dm = DensityMatrix::zero_state(n);
            b.iter(|| dm.apply_kraus_one(depol.operators(), n / 2));
        });
        group.bench_with_input(BenchmarkId::new("kraus_2q", n), &n, |b, &n| {
            let mut dm = DensityMatrix::zero_state(n);
            b.iter(|| dm.apply_kraus_two(depol2.operators(), 0, 1));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_gate_kernels,
    bench_circuit_execution,
    bench_sampling,
    bench_density_noise
);
criterion_main!(benches);
