//! End-to-end pipeline benchmark: the Fig. 4 comparison as a criterion
//! measurement (gather + reconstruct, golden vs standard vs uncut).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
use qcut_device::ideal::IdealBackend;
use qcut_math::Pauli;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    for width in [5usize, 7] {
        let (circuit, cut) = GoldenAnsatz::new(width, 3).build();
        let backend = IdealBackend::new(11);
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: 1000,
            parallel: false,
            ..Default::default()
        };

        group.bench_with_input(BenchmarkId::new("uncut", width), &width, |b, _| {
            b.iter(|| executor.run_uncut(&circuit, 1000).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("standard_cut", width), &width, |b, _| {
            b.iter(|| {
                executor
                    .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("golden_cut", width), &width, |b, _| {
            b.iter(|| {
                executor
                    .run(
                        &circuit,
                        &cut,
                        GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
                        &options,
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_parallel_vs_sequential_gather(c: &mut Criterion) {
    // The paper's §II-A parallelism claim: fragments run independently.
    let mut group = c.benchmark_group("fragment_parallelism");
    group.sample_size(20);
    let (circuit, cut) = GoldenAnsatz::new(7, 5).build();
    let backend = IdealBackend::new(13);
    let executor = CutExecutor::new(&backend);
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        let options = ExecutionOptions {
            shots_per_setting: 4000,
            parallel,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                executor
                    .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_parallel_vs_sequential_gather);
criterion_main!(benches);
