//! Prefix-sharing ablation: gather-simulation throughput with the
//! `PrefixForest` batch walk on vs off.
//!
//! The workload is the upstream half of a K-cut gather: `3^K` measurement
//! variants of one deep fragment, differing only in the ≤2-gate basis
//! rotation appended per cut port. With sharing on, the fragment is
//! simulated once and only the rotation suffixes fork; with sharing off
//! (the pre-forest behaviour), every variant pays the full fragment —
//! `O(G + Σ suffix)` vs `O(V·G)` gate applications.
//!
//! Besides the criterion numbers, the bench writes a machine-readable
//! `BENCH_prefix_sharing.json` with median wall times and the on/off
//! speedup per K (3 quick iterations under `cargo bench -- --test`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::random::{random_circuit, RandomCircuitConfig};
use qcut_core::basis::{encode_meas, BasisPlan};
use qcut_core::jobgraph::{Channel, JobGraph};
use qcut_device::ideal::IdealBackend;
use qcut_sim::basis_change::append_basis_rotation;
use std::time::Instant;

const WIDTH: usize = 10;
const DEPTH: usize = 30;
const SHOTS: u64 = 256;

/// The `3^K` upstream measurement variants of one deep fragment, keyed for
/// the gather graph.
fn gather_workload(k: usize) -> Vec<(Circuit, u64)> {
    let base = random_circuit(
        WIDTH,
        RandomCircuitConfig {
            depth: DEPTH,
            two_qubit_prob: 0.5,
        },
        7,
    );
    let ports: Vec<usize> = (WIDTH - k..WIDTH).collect();
    BasisPlan::standard(k)
        .all_meas_settings()
        .iter()
        .map(|setting| {
            let mut c = base.clone();
            for (i, basis) in setting.iter().enumerate() {
                append_basis_rotation(&mut c, basis.pauli(), ports[i]);
            }
            (c, encode_meas(setting))
        })
        .collect()
}

/// One gather: plan the graph and execute it batched.
fn run_gather(jobs: &[(Circuit, u64)], sharing: bool) -> u64 {
    let mut graph = JobGraph::new();
    for (circuit, key) in jobs {
        graph.add_job(circuit.clone(), (Channel::UpstreamMeas, *key), SHOTS);
    }
    let backend = IdealBackend::new(3).with_prefix_sharing(sharing);
    let run = graph.execute(&backend, true).unwrap();
    run.stats.shots_executed
}

fn bench_prefix_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_gather");
    group.sample_size(20);
    for k in [1usize, 2] {
        let jobs = gather_workload(k);
        for (label, sharing) in [("sharing_on", true), ("sharing_off", false)] {
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| run_gather(&jobs, sharing))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prefix_sharing);

/// Median wall time of `iters` runs, in microseconds.
fn median_micros(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Writes the machine-readable summary the acceptance gate reads.
fn write_summary(test_mode: bool) {
    let iters = if test_mode { 3 } else { 25 };
    let mut entries = Vec::new();
    for k in [1usize, 2] {
        let jobs = gather_workload(k);
        // Warm up once per configuration so first-touch costs don't skew
        // the ablation.
        run_gather(&jobs, true);
        run_gather(&jobs, false);
        let on = median_micros(iters, || {
            run_gather(&jobs, true);
        });
        let off = median_micros(iters, || {
            run_gather(&jobs, false);
        });
        entries.push(format!(
            "    {{\"k\": {k}, \"variants\": {}, \"shots_per_setting\": {SHOTS}, \
             \"sharing_on_us\": {on:.1}, \"sharing_off_us\": {off:.1}, \
             \"speedup\": {:.2}}}",
            jobs.len(),
            off / on,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"prefix_sharing\",\n  \"workload\": \
         \"upstream gather, {WIDTH}q fragment, depth {DEPTH}, 3^K variants\",\n  \
         \"iterations\": {iters},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = qcut_bench::artifact_path("BENCH_prefix_sharing.json");
    std::fs::write(&path, &json).expect("write bench summary");
    println!("wrote {}:\n{json}", path.display());
}

fn main() {
    benches();
    write_summary(std::env::args().any(|a| a == "--test"));
}
