//! JobGraph dedup ablation: gather throughput with structural dedup on vs
//! off on a repeated-subcircuit workload.
//!
//! The workload models the case the engine is built for: many consumers
//! (reconstruction terms / tomography settings) requesting the same few
//! unique subcircuits. With dedup on, each unique circuit is simulated
//! once and fanned out; with dedup off, every planned job hits the
//! backend, which is how the pre-engine execution layer behaved.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_circuit::circuit::Circuit;
use qcut_core::basis::BasisPlan;
use qcut_core::fragment::Fragmenter;
use qcut_core::jobgraph::{Channel, JobGraph};
use qcut_core::tomography::build_upstream_circuit;
use qcut_device::ideal::IdealBackend;

/// The repeated-subcircuit ansatz: the golden ansatz's upstream variants
/// (3 unique circuits), each requested by `fan_out` distinct consumers —
/// the shape a multi-term reconstruction or a cross-run batch produces.
fn repeated_workload(fan_out: usize) -> Vec<(Circuit, u64)> {
    let (circuit, cut) = GoldenAnsatz::new(7, 5).build();
    let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
    let plan = BasisPlan::standard(1);
    let mut jobs = Vec::new();
    for (i, setting) in plan.all_meas_settings().iter().enumerate() {
        let variant = build_upstream_circuit(&frags.upstream, setting);
        for rep in 0..fan_out {
            jobs.push((variant.clone(), (rep * 3 + i) as u64));
        }
    }
    jobs
}

fn bench_dedup_vs_not(c: &mut Criterion) {
    let mut group = c.benchmark_group("jobgraph_gather");
    group.sample_size(20);
    for fan_out in [4usize, 16] {
        let jobs = repeated_workload(fan_out);
        for (label, dedup) in [("dedup_on", true), ("dedup_off", false)] {
            group.bench_with_input(BenchmarkId::new(label, fan_out), &fan_out, |b, _| {
                b.iter(|| {
                    let mut graph = if dedup {
                        JobGraph::new()
                    } else {
                        JobGraph::without_dedup()
                    };
                    for (circuit, key) in &jobs {
                        graph.add_job(circuit.clone(), (Channel::UpstreamMeas, *key), 1000);
                    }
                    let backend = IdealBackend::new(3);
                    graph.execute(&backend, true).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dedup_vs_not);
criterion_main!(benches);
