//! Cut adviser vs. measured reality: does the light-cone/variance
//! scoring in `dataflow::cut_report` recover the empirically best cut?
//!
//! Three workloads with a designed-golden cut: the paper's Fig. 2
//! ansatz (the adviser must rank four equally-golden wires by the
//! variance surrogate), a widened-stabilizer circuit whose only
//! 3-setting cut is proven through non-Clifford widening, and a chain
//! with two 3-setting proven cuts where the adviser must break the
//! settings tie in favour of the balanced edge. For every feasible wire
//! edge the harness runs the *actual* pipeline under
//! `GoldenPolicy::ProveStatic` at an equal total shot budget, several
//! seeds per edge, and scores each edge by its mean RMS reconstruction
//! error — the measured variance-per-shot. The adviser's pick must be
//! the measured minimum on every workload and the designed cut.
//!
//! Writes `BENCH_cut_advice.json`; the assertions run at bench time so
//! the CI smoke run (`cargo bench -- --test`) trips regressions.

use criterion::{criterion_group, Criterion};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_circuit::gate::Gate;
use qcut_core::allocation::ShotAllocation;
use qcut_core::analysis::AnalysisConfig;
use qcut_core::dataflow::{cut_report, CutReport};
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions, PostProcess};
use qcut_device::ideal::IdealBackend;
use qcut_sim::statevector::StateVector;
use qcut_stats::distribution::Distribution;

/// Equal total budget for every measured edge (matches the adviser's
/// planning-time surrogate budget).
const MEASURE_BUDGET: u64 = 9_000;
/// Independent backend seeds averaged per edge.
const REPS: u64 = 64;

/// A workload with a designed best cut the adviser should recover.
fn workloads() -> Vec<(&'static str, Circuit, CutSpec)> {
    // 1. The paper's Fig. 2 golden ansatz: real upstream, Y provable.
    let (ansatz, ansatz_cut) = GoldenAnsatz::new(5, 4).build();

    // 2. Widened stabilizer: the non-Clifford block on qubits 0–1 widens
    //    the tableau, but wire 2 enters its CZ in |0> and the Z2
    //    generator survives the widening, so cutting there proves X and
    //    Y (3 settings). Every other feasible edge is either a 6-setting
    //    real wire or fully widened at 9 settings — the designed cut is
    //    the unique minimum.
    let mut widened = Circuit::new(4);
    widened.rx(0.8, 0).ry(1.1, 1).cx(0, 1).rz(0.6, 1).cz(1, 2);
    widened.rx(0.5, 3).cx(2, 3).ry(0.9, 3).cz(2, 3);
    let widened_cut = CutSpec::single(2, 0);

    // 3. Real chain with a settings tie: wire 2 enters the (Clifford) CY
    //    in |0>, so its stabilizer survives even though the control was
    //    already widened by the Ry gates — cutting (q2, pos 0) proves X
    //    and Y (3 settings). Wire 3 after its CX is also a 3-setting
    //    proven cut, but lopsided (single-gate downstream); the adviser
    //    must break the tie with the variance surrogate and pick the
    //    balanced edge.
    let mut chain = Circuit::new(4);
    chain.ry(1.1, 0).ry(0.7, 1).cx(0, 1);
    chain.push(Gate::Cy, &[1, 2]);
    chain.rx(0.6, 2).cx(2, 3).ry(0.9, 3);
    let chain_cut = CutSpec::single(2, 0);

    vec![
        ("golden_ansatz_5q", ansatz, ansatz_cut),
        ("widened_stabilizer_4q", widened, widened_cut),
        ("real_chain_4q", chain, chain_cut),
    ]
}

/// RMS deviation between a finite-shot reconstruction and the truth.
fn rms_error(recon: &Distribution, truth: &Distribution) -> f64 {
    let (r, t) = (recon.values(), truth.values());
    let sum: f64 = r.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum();
    (sum / r.len() as f64).sqrt()
}

/// Mean measured RMS error of `ProveStatic` runs through one candidate
/// edge at the shared budget.
fn measure_edge(circuit: &Circuit, spec: &CutSpec, truth: &Distribution, salt: u64) -> f64 {
    // Raw quasi-distribution: the adviser's surrogate predicts the
    // variance of the *unprocessed* estimator, so the measurement must
    // skip the (nonlinear) clip-renormalise step.
    let options = ExecutionOptions {
        allocation: Some(ShotAllocation::TotalBudget {
            total: MEASURE_BUDGET,
        }),
        postprocess: PostProcess::Raw,
        // No structural dedup: merged histograms would deliver more
        // shots than the schedule the surrogate modelled.
        dedup: false,
        ..Default::default()
    };
    let mut total = 0.0;
    for rep in 0..REPS {
        let backend = IdealBackend::new(salt.wrapping_mul(1009) + 7 * rep + 13);
        let run = CutExecutor::new(&backend)
            .run(circuit, spec, GoldenPolicy::ProveStatic, &options)
            .expect("feasible edges must execute");
        assert_eq!(
            run.report.detection_shots, 0,
            "ProveStatic must not spend detection shots"
        );
        total += rms_error(&run.distribution, truth);
    }
    total / REPS as f64
}

/// Criterion microbench: the adviser itself (static facts + simulation
/// enrichment over every wire edge of the 5-qubit ansatz).
fn bench_cut_advice(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_advice");
    group.sample_size(10);
    let (circuit, _) = GoldenAnsatz::new(5, 4).build();
    let config = AnalysisConfig::default();
    group.bench_function("report_golden_ansatz", |b| {
        b.iter(|| cut_report(&circuit, &config).candidates.len())
    });
    group.finish();
}

criterion_group!(benches, bench_cut_advice);

/// One workload's acceptance check + JSON entry.
fn summarize(name: &str, circuit: &Circuit, designed: &CutSpec) -> String {
    let report: CutReport = cut_report(circuit, &AnalysisConfig::default());
    let advised_idx = report.best.expect("every workload has a feasible edge");
    let advised = &report.candidates[advised_idx];
    for (i, c) in report.candidates.iter().enumerate() {
        println!(
            "{name}: candidate {i} (q{}, pos {}) feasible {} settings {} proven {:?} \
             predicted {:?} score {:.5}",
            c.qubit, c.position, c.feasible, c.settings, c.proven_golden, c.predicted_rms, c.score
        );
    }
    let designed_loc = designed.cuts()[0];
    assert_eq!(
        (advised.qubit, advised.position),
        (designed_loc.qubit, designed_loc.after_op),
        "{name}: adviser picked ({}, {}) instead of the designed cut",
        advised.qubit,
        advised.position,
    );

    let truth = Distribution::from_values(
        circuit.num_qubits(),
        StateVector::from_circuit(circuit).probabilities(),
    );
    let feasible: Vec<usize> = report
        .candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.feasible)
        .map(|(i, _)| i)
        .collect();
    let measured: Vec<(usize, f64)> = feasible
        .iter()
        .map(|&i| {
            let c = &report.candidates[i];
            let spec = CutSpec::single(c.qubit, c.position);
            (i, measure_edge(circuit, &spec, &truth, i as u64))
        })
        .collect();
    for &(i, rms) in &measured {
        let c = &report.candidates[i];
        println!(
            "{name}: edge {i} = (q{}, pos {}) settings {} proven {:?} predicted {:?} \
             measured {rms:.5}",
            c.qubit, c.position, c.settings, c.proven_golden, c.predicted_rms
        );
    }
    let (min_idx, min_rms) = measured
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one feasible edge");
    let advised_rms = measured
        .iter()
        .find(|(i, _)| *i == advised_idx)
        .expect("the advised edge is feasible")
        .1;
    // The acceptance bar: the adviser's pick is the measured-best edge
    // (lowest mean RMS error per shot at equal budget).
    assert_eq!(
        advised_idx, min_idx,
        "{name}: adviser picked edge {advised_idx} ({advised_rms:.5} RMS) but edge \
         {min_idx} measured {min_rms:.5}"
    );

    format!(
        "    {{\"name\": \"{name}\", \"candidates\": {}, \"feasible\": {}, \
         \"advised_qubit\": {}, \"advised_position\": {}, \"advised_settings\": {}, \
         \"proven_golden\": {}, \"predicted_rms\": {}, \
         \"advised_measured_rms\": {advised_rms:.6}, \"min_measured_rms\": {min_rms:.6}, \
         \"recovered\": true}}",
        report.candidates.len(),
        feasible.len(),
        advised.qubit,
        advised.position,
        advised.settings,
        advised.proven_golden.len(),
        advised
            .predicted_rms
            .map_or_else(|| "null".to_string(), |v| format!("{v:.6}")),
    )
}

/// Writes the machine-readable summary the acceptance gate reads.
fn write_summary() {
    let entries: Vec<String> = workloads()
        .iter()
        .map(|(name, circuit, designed)| summarize(name, circuit, designed))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cut_advice\",\n  \"workload\": \
         \"3 designed-golden circuits; every feasible wire edge executed under \
         GoldenPolicy::ProveStatic at a {MEASURE_BUDGET}-shot total budget, {REPS} seeds \
         per edge\",\n  \
         \"metric\": \"mean RMS reconstruction error per edge (measured variance/shot); \
         the adviser's pick must be the measured minimum and the designed cut\",\n  \
         \"shot_budget\": {MEASURE_BUDGET},\n  \"reps\": {REPS},\n  \
         \"circuits\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = qcut_bench::artifact_path("BENCH_cut_advice.json");
    std::fs::write(&path, &json).expect("write bench summary");
    println!("wrote {}:\n{json}", path.display());
}

fn main() {
    benches();
    write_summary();
}
