//! Ablation B: eigenstate (6^K preparations) vs SIC (4^K preparations)
//! downstream schemes — the trade-off the paper discusses in §II-B
//! ("the SICC basis … can be used to achieve O(4^K) circuit evaluations
//! … However, [it] would require more involved implementation, namely,
//! solving linear systems").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_core::basis::BasisPlan;
use qcut_core::fragment::Fragmenter;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions, ReconstructionMethod};
use qcut_core::reconstruction::exact_downstream_tensor;
use qcut_core::sic::{exact_sic_downstream_tensor, SicFrame};
use qcut_device::ideal::IdealBackend;

fn bench_pipeline_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("prep_scheme_pipeline");
    group.sample_size(20);
    let (circuit, cut) = GoldenAnsatz::new(5, 9).build();
    let backend = IdealBackend::new(17);
    let executor = CutExecutor::new(&backend);
    for (label, method) in [
        ("eigenstate_6preps", ReconstructionMethod::Eigenstate),
        ("sic_4preps", ReconstructionMethod::Sic),
    ] {
        let options = ExecutionOptions {
            shots_per_setting: 1000,
            method,
            parallel: false,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                executor
                    .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_downstream_assembly(c: &mut Criterion) {
    // SIC assembly includes the linear-system-derived frame weights.
    let mut group = c.benchmark_group("downstream_assembly");
    for width in [5usize, 7] {
        let (circuit, spec) = GoldenAnsatz::new(width, 9).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        group.bench_with_input(BenchmarkId::new("eigenstate", width), &width, |b, _| {
            b.iter(|| exact_downstream_tensor(&frags.downstream, &plan))
        });
        group.bench_with_input(BenchmarkId::new("sic", width), &width, |b, _| {
            b.iter(|| exact_sic_downstream_tensor(&frags.downstream, &plan))
        });
    }
    group.finish();
}

fn bench_frame_solve(c: &mut Criterion) {
    c.bench_function("sic_frame_solve", |b| b.iter(SicFrame::new));
}

criterion_group!(
    benches,
    bench_pipeline_method,
    bench_downstream_assembly,
    bench_frame_solve
);
criterion_main!(benches);
