//! Benchmarks of the classical reconstruction path: tensor assembly and
//! contraction — the cost the golden method reduces from `4^K` to `3^K`
//! terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcut_circuit::ansatz::GoldenAnsatz;
use qcut_core::basis::BasisPlan;
use qcut_core::execution::{gather, FragmentData};
use qcut_core::fragment::{Fragmenter, Fragments};
use qcut_core::reconstruction::{
    contract, downstream_tensor, exact_downstream_tensor, exact_upstream_tensor, upstream_tensor,
};
use qcut_core::tomography::ExperimentPlan;
use qcut_device::ideal::IdealBackend;
use qcut_math::Pauli;

fn setup(width: usize, golden: bool) -> (Fragments, BasisPlan, FragmentData) {
    let (circuit, spec) = GoldenAnsatz::new(width, 7).build();
    let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
    let plan = if golden {
        BasisPlan::with_neglected(vec![Some(Pauli::Y)])
    } else {
        BasisPlan::standard(1)
    };
    let experiment = ExperimentPlan::build(&frags, &plan);
    let backend = IdealBackend::new(1);
    let data = gather(&backend, &experiment, 1000, true).unwrap();
    (frags, plan, data)
}

fn bench_tensor_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_assembly");
    for width in [5usize, 7] {
        let (frags, plan, data) = setup(width, false);
        group.bench_with_input(
            BenchmarkId::new("upstream_from_counts", width),
            &width,
            |b, _| b.iter(|| upstream_tensor(&frags.upstream, &plan, &data)),
        );
        group.bench_with_input(
            BenchmarkId::new("downstream_from_counts", width),
            &width,
            |b, _| b.iter(|| downstream_tensor(&frags.downstream, &plan, &data)),
        );
    }
    group.finish();
}

fn bench_contract_standard_vs_golden(c: &mut Criterion) {
    let mut group = c.benchmark_group("contract");
    for (label, golden) in [("standard_4_terms", false), ("golden_3_terms", true)] {
        for width in [5usize, 7] {
            let (frags, plan, _) = setup(width, golden);
            let up = exact_upstream_tensor(&frags.upstream, &plan);
            let down = exact_downstream_tensor(&frags.downstream, &plan);
            group.bench_with_input(BenchmarkId::new(label, width), &width, |b, _| {
                b.iter(|| contract(&frags, &plan, &up, &down))
            });
        }
    }
    group.finish();
}

fn bench_full_classical_path(c: &mut Criterion) {
    // Tensor assembly + contraction together — the "reconstructing
    // measurement statistics from fragments" cost of the paper's abstract.
    let mut group = c.benchmark_group("classical_reconstruction");
    for (label, golden) in [("standard", false), ("golden", true)] {
        let (frags, plan, data) = setup(5, golden);
        group.bench_function(label, |b| {
            b.iter(|| {
                let up = upstream_tensor(&frags.upstream, &plan, &data);
                let down = downstream_tensor(&frags.downstream, &plan, &data);
                contract(&frags, &plan, &up, &down)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor_assembly,
    bench_contract_standard_vs_golden,
    bench_full_classical_path
);
criterion_main!(benches);
