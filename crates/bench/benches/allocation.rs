//! Shot-allocation ablation: uniform vs usage-weighted budgets at a fixed
//! total shot count.
//!
//! Two questions, one workload family (`BasisPlan::standard(K)` gathers):
//!
//! 1. **Quality** — at the same total budget, how much estimated
//!    reconstruction variance does `ShotAllocation::WeightedByUsage` shave
//!    off the even split? Measured deterministically with exact tensors
//!    and `variance_from_schedule`, reported as *variance per shot*
//!    (mean per-outcome variance × total budget — a budget-normalised
//!    constant under the 1/N law, so the ratio is budget-independent).
//! 2. **Cost** — what does the weighted schedule cost to *compute and
//!    execute*? Criterion times the full `CutExecutor::run` under each
//!    policy; scheduling is noise next to simulation, which is the point.
//!
//! Besides the criterion numbers, the bench writes a machine-readable
//! `BENCH_allocation.json` with the variance-per-shot metric per K
//! (3 quick iterations under `cargo bench -- --test`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_core::allocation::{schedule_for_plan, ShotAllocation};
use qcut_core::basis::BasisPlan;
use qcut_core::fragment::Fragmenter;
use qcut_core::golden::GoldenPolicy;
use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
use qcut_core::reconstruction::{exact_downstream_tensor, exact_upstream_tensor};
use qcut_core::variance::variance_from_schedule;
use qcut_device::ideal::IdealBackend;

const TOTAL_PER_SETTING: u64 = 1000;

/// The K-cut workload: the paper's golden ansatz for K = 1, the multi-cut
/// ansatz beyond.
fn workload(k: usize) -> (Circuit, CutSpec) {
    if k == 1 {
        GoldenAnsatz::new(5, 11).build()
    } else {
        MultiCutAnsatz::new(k, 11).build()
    }
}

fn policies(total: u64) -> [(&'static str, ShotAllocation); 2] {
    [
        ("uniform", ShotAllocation::TotalBudget { total }),
        ("weighted", ShotAllocation::WeightedByUsage { total }),
    ]
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_gather");
    group.sample_size(20);
    for k in [1usize, 2] {
        let (circuit, cut) = workload(k);
        let total = BasisPlan::standard(k).total_settings() as u64 * TOTAL_PER_SETTING;
        for (label, policy) in policies(total) {
            let options = ExecutionOptions {
                allocation: Some(policy),
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    let backend = IdealBackend::new(17);
                    CutExecutor::new(&backend)
                        .run(&circuit, &cut, GoldenPolicy::Disabled, &options)
                        .unwrap()
                        .report
                        .total_shots
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);

/// Writes the machine-readable summary the acceptance gate reads: the
/// deterministic variance-per-shot of each policy at equal total budget
/// (exact tensors — no sampling, so no iteration count to report).
fn write_summary() {
    let mut entries = Vec::new();
    for k in [1usize, 2] {
        let (circuit, cut) = workload(k);
        let frags = Fragmenter::fragment(&circuit, &cut).expect("valid cut");
        let plan = BasisPlan::standard(k);
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let down = exact_downstream_tensor(&frags.downstream, &plan);
        let total = plan.total_settings() as u64 * TOTAL_PER_SETTING;
        let mut var_per_shot = [0.0f64; 2];
        for (slot, (_, policy)) in var_per_shot.iter_mut().zip(policies(total)) {
            let sched = schedule_for_plan(&plan, policy).expect("budget covers the plan");
            assert_eq!(sched.total(), total, "policies must spend identically");
            let err = variance_from_schedule(&frags, &plan, &up, &down, &sched);
            let dim = 1u64 << circuit.num_qubits();
            let mean_var: f64 = (0..dim).map(|b| err.variance(b)).sum::<f64>() / dim as f64;
            *slot = mean_var * total as f64;
        }
        let [uniform, weighted] = var_per_shot;
        entries.push(format!(
            "    {{\"k\": {k}, \"total_shots\": {total}, \
             \"var_per_shot_uniform\": {uniform:.6e}, \
             \"var_per_shot_weighted\": {weighted:.6e}, \
             \"variance_ratio\": {:.4}}}",
            uniform / weighted,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"allocation\",\n  \"workload\": \
         \"standard(K) gather, equal total budget, uniform vs usage-weighted\",\n  \
         \"metric\": \"mean per-outcome variance x total budget (lower is better)\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = qcut_bench::artifact_path("BENCH_allocation.json");
    std::fs::write(&path, &json).expect("write bench summary");
    println!("wrote {}:\n{json}", path.display());
}

fn main() {
    benches();
    write_summary();
}
