//! Property tests for the tier-1 persistence layer.
//!
//! The headline property: a histogram that takes a round trip through the
//! on-disk format and is then merged with fresh counts equals the same
//! merge performed purely in memory — persistence is exact (counts are
//! integers, gate parameters round-trip through IEEE-754 bit patterns).

use proptest::prelude::*;
use qcut_cache::{CacheConfig, CacheKey, ShotDiscipline, WarmCache};
use qcut_circuit::circuit::Circuit;
use qcut_sim::counts::Counts;

/// Deterministic parametrized circuit family for the property.
fn sweep_circuit(width: usize, theta: f64) -> Circuit {
    let mut c = Circuit::new(width);
    for q in 0..width {
        c.h(q);
    }
    for q in 0..width - 1 {
        c.cx(q, q + 1);
    }
    c.ry(theta, width - 1).rz(theta * 0.5, 0);
    c
}

fn counts_from(width: usize, pairs: &[(u64, u64)]) -> Counts {
    let mask = (1u64 << width) - 1;
    Counts::from_pairs(width, pairs.iter().map(|&(o, n)| (o & mask, n % 100_000)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save -> load -> merge == in-memory merge, for arbitrary histograms.
    #[test]
    fn save_load_merge_equals_in_memory_merge(
        width in 2usize..6,
        theta in -3.0f64..3.0,
        stored in proptest::collection::vec((0u64..64, 1u64..10_000), 1..12),
        fresh in proptest::collection::vec((0u64..64, 1u64..10_000), 1..12),
        fingerprint in 0u64..u64::MAX,
    ) {
        let circuit = sweep_circuit(width, theta);
        let key = CacheKey::new(
            circuit.structural_hash(),
            fingerprint,
            ShotDiscipline::Multinomial,
        );
        let stored = counts_from(width, &stored);
        let fresh = counts_from(width, &fresh);

        let path = std::env::temp_dir().join(format!(
            "qcut-proptest-{}-{}.qwc",
            std::process::id(),
            circuit.structural_hash()
        ));
        let writer = WarmCache::open(CacheConfig::at_path(&path));
        writer.store(&key, &circuit, &stored);
        writer.persist().expect("persist succeeds");

        let reader = WarmCache::open(CacheConfig::at_path(&path));
        std::fs::remove_file(&path).ok();
        prop_assert!(reader.take_degradation().is_none());
        let mut reloaded = reader
            .lookup(&key, &circuit)
            .expect("stored entry survives the round trip");

        let mut in_memory = stored;
        in_memory.merge(&fresh);
        reloaded.merge(&fresh);
        prop_assert_eq!(reloaded, in_memory);
    }

    /// The byte accounting the LRU policy uses is exactly the encoded size:
    /// a reloaded store reports the same `bytes_used` as the one saved.
    #[test]
    fn reload_preserves_byte_accounting(
        width in 2usize..5,
        theta in -3.0f64..3.0,
        pairs in proptest::collection::vec((0u64..16, 1u64..1000), 1..8),
    ) {
        let circuit = sweep_circuit(width, theta);
        let key = CacheKey::new(circuit.structural_hash(), 9, ShotDiscipline::Multinomial);
        let path = std::env::temp_dir().join(format!(
            "qcut-proptest-bytes-{}-{}.qwc",
            std::process::id(),
            circuit.structural_hash()
        ));
        let writer = WarmCache::open(CacheConfig::at_path(&path));
        writer.store(&key, &circuit, &counts_from(width, &pairs));
        let bytes = writer.bytes_used();
        writer.persist().expect("persist succeeds");
        let reader = WarmCache::open(CacheConfig::at_path(&path));
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(reader.bytes_used(), bytes);
        prop_assert_eq!(reader.entries(), 1);
    }
}
