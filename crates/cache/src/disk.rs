//! Hand-rolled on-disk format for the tier-1 histogram store.
//!
//! The vendored `serde` is a marker-trait stub (nothing serializes), so
//! persistence is an explicit little-endian byte format:
//!
//! ```text
//! magic    8 bytes   b"QCUTWSC\0"
//! version  u16       1
//! entries  u32       entry count
//! entry*             key (3 x u64) | circuit | counts
//! checksum u64       FNV-1a over every preceding byte
//! ```
//!
//! A circuit encodes as `num_qubits: u16, n: u32` then per instruction a
//! gate tag byte, the gate's `f64` parameters as IEEE-754 bit patterns
//! (bit-exact round trip), and `u16` qubit operands. Counts encode as
//! `num_bits: u16, distinct: u32` then `(outcome, count)` pairs of `u64`.
//! Entries are written in least- to most-recently-used order so a reload
//! replays the same LRU ranking.
//!
//! Decoding is corruption-tolerant by construction: every read is
//! bounds-checked, every field is validated (gate tags, arities, qubit
//! ranges, outcome widths, count overflow), and any failure surfaces as a
//! typed [`CacheFileError`] — the caller degrades to a cold start, never a
//! panic.

use qcut_circuit::circuit::{Circuit, Instruction};
use qcut_circuit::gate::Gate;
use qcut_math::complex::{c64, Complex};
use qcut_math::matrix::Matrix;
use qcut_sim::counts::Counts;

use crate::histogram::HistogramCache;
use crate::CacheKey;

/// The 8-byte file magic every cache file starts with. Public so static
/// checks (e.g. the `QA403` lint) can validate a header without pulling in
/// the full decoder.
pub const MAGIC: &[u8; 8] = b"QCUTWSC\0";
/// The format version this build writes and accepts.
pub const VERSION: u16 = 1;

/// Why a cache file could not be loaded. Every variant degrades to a cold
/// start at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheFileError {
    /// Filesystem-level failure (read/write/rename).
    Io(String),
    /// The file does not start with the cache magic.
    BadMagic,
    /// The file's format version is not one this build reads.
    UnsupportedVersion(u16),
    /// The file ends before its declared content does.
    Truncated,
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// Structurally invalid content (bad gate tag, qubit out of range,
    /// overflowing counts, trailing garbage, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for CacheFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheFileError::Io(e) => write!(f, "io error: {e}"),
            CacheFileError::BadMagic => write!(f, "not a qcut cache file (bad magic)"),
            CacheFileError::UnsupportedVersion(v) => write!(f, "unsupported cache version {v}"),
            CacheFileError::Truncated => write!(f, "truncated cache file"),
            CacheFileError::ChecksumMismatch => write!(f, "checksum mismatch (corrupt file)"),
            CacheFileError::Malformed(what) => write!(f, "malformed cache file: {what}"),
        }
    }
}

impl std::error::Error for CacheFileError {}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Numeric tag for each gate variant. Stable across versions: new gates
/// must append, never renumber.
fn gate_tag(gate: &Gate) -> u8 {
    match gate {
        Gate::I => 0,
        Gate::H => 1,
        Gate::X => 2,
        Gate::Y => 3,
        Gate::Z => 4,
        Gate::S => 5,
        Gate::Sdg => 6,
        Gate::T => 7,
        Gate::Tdg => 8,
        Gate::Sx => 9,
        Gate::Rx(_) => 10,
        Gate::Ry(_) => 11,
        Gate::Rz(_) => 12,
        Gate::Phase(_) => 13,
        Gate::U3(..) => 14,
        Gate::Unitary1(_) => 15,
        Gate::Cx => 16,
        Gate::Cy => 17,
        Gate::Cz => 18,
        Gate::Ch => 19,
        Gate::Swap => 20,
        Gate::Crx(_) => 21,
        Gate::Cry(_) => 22,
        Gate::Crz(_) => 23,
        Gate::CPhase(_) => 24,
        Gate::Unitary2(_) => 25,
    }
}

/// Encoded length of one instruction: tag + parameters + operands.
fn instruction_encoded_len(inst: &Instruction) -> u64 {
    let params: u64 = match &inst.gate {
        Gate::Rx(_)
        | Gate::Ry(_)
        | Gate::Rz(_)
        | Gate::Phase(_)
        | Gate::Crx(_)
        | Gate::Cry(_)
        | Gate::Crz(_)
        | Gate::CPhase(_) => 8,
        Gate::U3(..) => 24,
        Gate::Unitary1(_) => 4 * 16,
        Gate::Unitary2(_) => 16 * 16,
        _ => 0,
    };
    1 + params + 2 * inst.qubits.len() as u64
}

/// Exact encoded length of one cache entry holding `distinct` outcome
/// pairs — the byte-accounting unit shared with the in-memory store.
pub fn entry_encoded_len(circuit: &Circuit, distinct: u64) -> u64 {
    let circuit_len: u64 = 2
        + 4
        + circuit
            .instructions()
            .iter()
            .map(instruction_encoded_len)
            .sum::<u64>();
    24 + circuit_len + 2 + 4 + 16 * distinct
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    for z in m.as_slice() {
        push_f64(out, z.re);
        push_f64(out, z.im);
    }
}

fn push_instruction(out: &mut Vec<u8>, inst: &Instruction) {
    out.push(gate_tag(&inst.gate));
    match &inst.gate {
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => push_f64(out, *t),
        Gate::Crx(t) | Gate::Cry(t) | Gate::Crz(t) | Gate::CPhase(t) => push_f64(out, *t),
        Gate::U3(a, b, c) => {
            push_f64(out, *a);
            push_f64(out, *b);
            push_f64(out, *c);
        }
        Gate::Unitary1(m) | Gate::Unitary2(m) => push_matrix(out, m),
        _ => {}
    }
    for &q in &inst.qubits {
        push_u16(out, q as u16);
    }
}

/// Serializes a store. Infallible: the store only holds values this module
/// can encode.
pub(crate) fn encode(store: &HistogramCache) -> Vec<u8> {
    let slots = store.slots_by_recency();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_u16(&mut out, VERSION);
    push_u32(&mut out, slots.len() as u32);
    for (key, slot) in slots {
        push_u64(&mut out, key.structural_hash);
        push_u64(&mut out, key.backend_fingerprint);
        push_u64(&mut out, key.discipline);
        let circuit = &slot.circuit;
        push_u16(&mut out, circuit.num_qubits() as u16);
        push_u32(&mut out, circuit.len() as u32);
        for inst in circuit.instructions() {
            push_instruction(&mut out, inst);
        }
        push_u16(&mut out, slot.counts.num_bits() as u16);
        push_u32(&mut out, slot.counts.iter().count() as u32);
        let mut pairs: Vec<(u64, u64)> = slot.counts.iter().collect();
        pairs.sort_unstable();
        for (outcome, count) in pairs {
            push_u64(&mut out, outcome);
            push_u64(&mut out, count);
        }
    }
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CacheFileError> {
        let end = self.pos.checked_add(n).ok_or(CacheFileError::Truncated)?;
        if end > self.buf.len() {
            return Err(CacheFileError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CacheFileError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CacheFileError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CacheFileError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CacheFileError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, CacheFileError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

fn read_matrix(r: &mut Reader<'_>, dim: usize) -> Result<Matrix, CacheFileError> {
    let mut data: Vec<Complex> = Vec::with_capacity(dim * dim);
    for _ in 0..dim * dim {
        let re = r.f64()?;
        let im = r.f64()?;
        data.push(c64(re, im));
    }
    Ok(Matrix::from_rows(dim, dim, data))
}

fn read_gate(r: &mut Reader<'_>) -> Result<Gate, CacheFileError> {
    Ok(match r.u8()? {
        0 => Gate::I,
        1 => Gate::H,
        2 => Gate::X,
        3 => Gate::Y,
        4 => Gate::Z,
        5 => Gate::S,
        6 => Gate::Sdg,
        7 => Gate::T,
        8 => Gate::Tdg,
        9 => Gate::Sx,
        10 => Gate::Rx(r.f64()?),
        11 => Gate::Ry(r.f64()?),
        12 => Gate::Rz(r.f64()?),
        13 => Gate::Phase(r.f64()?),
        14 => Gate::U3(r.f64()?, r.f64()?, r.f64()?),
        15 => Gate::Unitary1(read_matrix(r, 2)?),
        16 => Gate::Cx,
        17 => Gate::Cy,
        18 => Gate::Cz,
        19 => Gate::Ch,
        20 => Gate::Swap,
        21 => Gate::Crx(r.f64()?),
        22 => Gate::Cry(r.f64()?),
        23 => Gate::Crz(r.f64()?),
        24 => Gate::CPhase(r.f64()?),
        25 => Gate::Unitary2(read_matrix(r, 4)?),
        _ => return Err(CacheFileError::Malformed("unknown gate tag")),
    })
}

fn read_circuit(r: &mut Reader<'_>) -> Result<Circuit, CacheFileError> {
    let num_qubits = r.u16()? as usize;
    if num_qubits == 0 || num_qubits > 64 {
        return Err(CacheFileError::Malformed("circuit width out of range"));
    }
    let n = r.u32()? as usize;
    let mut instructions = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let gate = read_gate(r)?;
        let arity = gate.arity();
        let mut qubits = Vec::with_capacity(arity);
        for _ in 0..arity {
            let q = r.u16()? as usize;
            if q >= num_qubits {
                return Err(CacheFileError::Malformed("qubit operand out of range"));
            }
            qubits.push(q);
        }
        if arity == 2 && qubits[0] == qubits[1] {
            return Err(CacheFileError::Malformed("duplicate qubit operands"));
        }
        instructions.push(Instruction::new(gate, qubits));
    }
    Ok(Circuit::from_instructions_unchecked(
        num_qubits,
        instructions,
    ))
}

fn read_counts(r: &mut Reader<'_>) -> Result<Counts, CacheFileError> {
    let num_bits = r.u16()? as usize;
    if num_bits == 0 || num_bits > 63 {
        return Err(CacheFileError::Malformed("histogram width out of range"));
    }
    let distinct = r.u32()?;
    let mut pairs: Vec<(u64, u64)> = Vec::with_capacity((distinct as usize).min(65536));
    let mut total: u64 = 0;
    for _ in 0..distinct {
        let outcome = r.u64()?;
        let count = r.u64()?;
        if outcome >> num_bits != 0 {
            return Err(CacheFileError::Malformed("outcome exceeds histogram width"));
        }
        total = total
            .checked_add(count)
            .ok_or(CacheFileError::Malformed("histogram total overflows"))?;
        pairs.push((outcome, count));
    }
    let _ = total;
    Ok(Counts::from_pairs(num_bits, pairs))
}

/// Parses a cache file image into a store with the given byte budget
/// (which may evict entries a smaller budget no longer affords — oldest
/// first, since entries are stored in recency order).
pub fn decode(bytes: &[u8], byte_budget: u64) -> Result<HistogramCache, CacheFileError> {
    if bytes.len() < MAGIC.len() + 2 + 4 + 8 {
        return Err(CacheFileError::Truncated);
    }
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes([
        tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
    ]);
    if fnv1a(content) != declared {
        return Err(CacheFileError::ChecksumMismatch);
    }
    let mut r = Reader {
        buf: content,
        pos: 0,
    };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(CacheFileError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CacheFileError::UnsupportedVersion(version));
    }
    let count = r.u32()?;
    let mut store = HistogramCache::new(byte_budget);
    for _ in 0..count {
        let key = CacheKey {
            structural_hash: r.u64()?,
            backend_fingerprint: r.u64()?,
            discipline: r.u64()?,
        };
        let circuit = read_circuit(&mut r)?;
        let counts = read_counts(&mut r)?;
        if key.structural_hash != circuit.structural_hash() {
            return Err(CacheFileError::Malformed("key does not match its circuit"));
        }
        store.store(&key, &circuit, counts);
    }
    if r.pos != content.len() {
        return Err(CacheFileError::Malformed("trailing bytes after entries"));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShotDiscipline;

    fn sample_store() -> HistogramCache {
        let mut store = HistogramCache::new(u64::MAX);
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).ry(0.25, 2);
        a.push(Gate::U3(0.1, 0.2, 0.3), &[1]);
        a.push(Gate::CPhase(0.5), &[1, 2]);
        let mut b = Circuit::new(2);
        b.sdg(0).h(0).swap(0, 1);
        let ka = CacheKey::new(a.structural_hash(), 11, ShotDiscipline::Multinomial);
        let kb = CacheKey::new(b.structural_hash(), 11, ShotDiscipline::Multinomial);
        store.store(&ka, &a, Counts::from_pairs(3, [(0u64, 5), (6, 2), (7, 1)]));
        store.store(&kb, &b, Counts::from_pairs(2, [(1u64, 9), (2, 3)]));
        store
    }

    #[test]
    fn round_trip_preserves_entries_and_recency() {
        let store = sample_store();
        let bytes = encode(&store);
        let reloaded = decode(&bytes, u64::MAX).expect("clean file loads");
        assert_eq!(reloaded.len(), store.len());
        assert_eq!(reloaded.bytes_used(), store.bytes_used());
        let again = encode(&reloaded);
        assert_eq!(bytes, again, "encode is a fixed point through reload");
    }

    #[test]
    fn truncated_file_is_rejected_without_panic() {
        let bytes = encode(&sample_store());
        for cut in [0, 5, 13, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut], u64::MAX).expect_err("truncation detected");
            assert!(
                matches!(
                    err,
                    CacheFileError::Truncated | CacheFileError::ChecksumMismatch
                ),
                "unexpected error {err:?} at cut {cut}"
            );
        }
    }

    #[test]
    fn corrupted_byte_fails_the_checksum() {
        let mut bytes = encode(&sample_store());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            decode(&bytes, u64::MAX).expect_err("corruption detected"),
            CacheFileError::ChecksumMismatch
        );
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let mut bytes = encode(&sample_store());
        bytes[0] = b'X';
        let tail = bytes.len() - 8;
        let sum = fnv1a(&bytes[..tail]).to_le_bytes();
        bytes[tail..].copy_from_slice(&sum);
        assert_eq!(
            decode(&bytes, u64::MAX).expect_err("magic checked"),
            CacheFileError::BadMagic
        );

        let mut bytes = encode(&sample_store());
        bytes[8] = 0xff; // version low byte
        let sum = fnv1a(&bytes[..tail]).to_le_bytes();
        bytes[tail..].copy_from_slice(&sum);
        assert!(matches!(
            decode(&bytes, u64::MAX).expect_err("version checked"),
            CacheFileError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn decode_applies_the_byte_budget_evicting_oldest_first() {
        let store = sample_store();
        let bytes = encode(&store);
        // Budget for roughly one entry: the older of the two must go.
        let reloaded = decode(&bytes, store.bytes_used() - 1).expect("loads");
        assert_eq!(reloaded.len(), 1);
    }
}
