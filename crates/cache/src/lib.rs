//! Cross-run warm-start cache for parameter sweeps.
//!
//! Repeated reconstructions — VQE-style sweeps that re-execute nearly
//! identical fragment batches — waste most of their budget re-measuring
//! subcircuits an earlier run already measured and re-simulating prefixes
//! an earlier walk already evolved. This crate provides the two reuse
//! tiers that close that gap:
//!
//! * **Tier 1 — persistent histograms** ([`WarmCache`] over
//!   [`HistogramCache`]): per-node measurement histograms keyed by
//!   `(Circuit::structural_hash, backend fingerprint, shot discipline)`,
//!   held under an LRU/byte-budget eviction policy and persisted in a
//!   versioned, corruption-tolerant on-disk format. The engine seeds
//!   `JobGraph::seed_counts` from these entries, so a warm run executes
//!   only the shot *increment* its budget demands beyond what the cache
//!   already holds.
//! * **Tier 2 — forest fork states** (`ForkStateCache` in `qcut-sim`):
//!   in-memory simulator states keyed by `prefix_hash_chain` links, so a
//!   sweep that varies only late-circuit parameters re-simulates just the
//!   divergent suffixes even across separate `CutExecutor::run` calls.
//!   Tier 2 lives next to [`PrefixForest`](qcut_sim::prefix::PrefixForest)
//!   because the states it stores are the simulator's; this crate owns the
//!   configuration and the tier-1 store.
//!
//! Keys never rely on `structural_hash` alone: every lookup confirms
//! instruction-level circuit equality (the workspace-wide hash-collision
//! discipline), and the backend fingerprint keeps e.g. ideal-backend
//! histograms from ever being served to a noisy run.
//!
//! The vendored `serde` is a marker-trait stub, so the on-disk format is
//! hand-rolled: little-endian, versioned magic header, FNV-1a trailing
//! checksum. Any load failure — truncation, corruption, version skew —
//! degrades to a cold start and is reported as a typed warning, never a
//! panic.

#![forbid(unsafe_code)]

pub mod disk;
pub mod histogram;

use std::path::PathBuf;
use std::sync::Mutex;

use qcut_circuit::circuit::Circuit;
use qcut_sim::counts::Counts;
use serde::{Deserialize, Serialize};

pub use disk::CacheFileError;
pub use histogram::{estimated_entry_bytes, HistogramCache};

/// Configuration for the warm-start cache, carried by `ExecutionOptions`.
///
/// The cache is off by default (`ExecutionOptions::cache == None`); a run
/// with no cache is bit-identical to one that predates the cache layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Where tier-1 histograms persist between processes. `None` keeps the
    /// store in-memory only (still reused across runs sharing the
    /// [`WarmCache`] handle).
    pub path: Option<PathBuf>,
    /// Byte budget for the tier-1 store. When an insertion pushes the
    /// store past the budget, entries are evicted strictly in
    /// least-recently-used order. A budget below a single node's histogram
    /// thrashes (lint QA402).
    pub byte_budget: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            path: None,
            byte_budget: 8 * 1024 * 1024,
        }
    }
}

impl CacheConfig {
    /// In-memory cache with the default byte budget.
    pub fn in_memory() -> Self {
        CacheConfig::default()
    }

    /// Persistent cache at `path` with the default byte budget.
    pub fn at_path(path: impl Into<PathBuf>) -> Self {
        CacheConfig {
            path: Some(path.into()),
            ..CacheConfig::default()
        }
    }

    /// Replaces the byte budget.
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = bytes;
        self
    }
}

/// The sampling discipline a histogram was produced under. Histograms are
/// only poolable when the backend fingerprint *and* the discipline agree:
/// merging multinomial samples from the exact output distribution with
/// measurements of unknown provenance would silently bias reconstructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShotDiscipline {
    /// Multinomial sampling from the exact output distribution — what every
    /// workspace simulator backend produces.
    Multinomial,
    /// Measurements from hardware or an unknown sampler. Never pooled with
    /// [`ShotDiscipline::Multinomial`] entries.
    External,
}

impl ShotDiscipline {
    /// Stable integer tag folded into every cache key.
    pub fn tag(self) -> u64 {
        match self {
            ShotDiscipline::Multinomial => 1,
            ShotDiscipline::External => 2,
        }
    }
}

/// A tier-1 cache key. `structural_hash` alone is not sufficient — lookups
/// additionally confirm circuit equality — and histograms from different
/// backends or disciplines must never pool, so both are part of the key.
///
/// The backend *seed* is deliberately not part of the key: histograms drawn
/// with different seeds from the same device model are statistically
/// exchangeable, and keying on the seed would defeat cross-run reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// `Circuit::structural_hash()` of the node's circuit.
    pub structural_hash: u64,
    /// `Backend::cache_fingerprint()` — device identity plus noise
    /// character (see `NoiseModel::fingerprint`).
    pub backend_fingerprint: u64,
    /// [`ShotDiscipline::tag`].
    pub discipline: u64,
}

impl CacheKey {
    /// Builds a key from its three components.
    pub fn new(structural_hash: u64, backend_fingerprint: u64, discipline: ShotDiscipline) -> Self {
        CacheKey {
            structural_hash,
            backend_fingerprint,
            discipline: discipline.tag(),
        }
    }
}

/// Thread-safe handle over the tier-1 histogram store, shared across runs
/// (and, via [`CacheConfig::path`], across processes).
///
/// `ExecutionOptions` carries an `Arc<WarmCache>`; every `CutExecutor::run`
/// seeds its job graph from the store and writes the delivered cumulative
/// histograms back, so a sweep's later points start where earlier points
/// finished.
#[derive(Debug)]
pub struct WarmCache {
    config: CacheConfig,
    inner: Mutex<HistogramCache>,
    /// Set when opening found a file it could not load; drained once into a
    /// run report diagnostic, after which the cache operates cold.
    degraded: Mutex<Option<String>>,
}

impl WarmCache {
    /// Opens a cache. When the config names a path whose file exists, the
    /// store is loaded from it; a file that fails to load (truncated,
    /// corrupt, wrong version) yields a *cold* cache plus a degradation
    /// notice retrievable via [`WarmCache::take_degradation`] — never an
    /// error and never a panic.
    pub fn open(config: CacheConfig) -> WarmCache {
        let mut degraded = None;
        let store = match &config.path {
            Some(path) if path.exists() => match std::fs::read(path) {
                Ok(bytes) => match disk::decode(&bytes, config.byte_budget) {
                    Ok(store) => store,
                    Err(e) => {
                        degraded = Some(format!(
                            "cache file {} unusable ({e}); starting cold",
                            path.display()
                        ));
                        HistogramCache::new(config.byte_budget)
                    }
                },
                Err(e) => {
                    degraded = Some(format!(
                        "cache file {} unreadable ({e}); starting cold",
                        path.display()
                    ));
                    HistogramCache::new(config.byte_budget)
                }
            },
            _ => HistogramCache::new(config.byte_budget),
        };
        WarmCache {
            config,
            inner: Mutex::new(store),
            degraded: Mutex::new(degraded),
        }
    }

    /// The configuration this cache was opened with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Takes the load-degradation notice, if opening fell back to a cold
    /// start. Returns `Some` at most once.
    pub fn take_degradation(&self) -> Option<String> {
        self.degraded.lock().expect("cache lock poisoned").take()
    }

    /// Looks up the cumulative histogram for `circuit` under `key`,
    /// confirming instruction-level equality. Touches LRU recency.
    pub fn lookup(&self, key: &CacheKey, circuit: &Circuit) -> Option<Counts> {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .lookup(key, circuit)
            .cloned()
    }

    /// Stores (replacing any previous entry for the same key + circuit) the
    /// cumulative histogram a run delivered. Entries hold *cumulative*
    /// data — a warm run's delivered histogram already contains the cached
    /// shots it was seeded with, so storing replaces rather than merges.
    pub fn store(&self, key: &CacheKey, circuit: &Circuit, counts: &Counts) {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .store(key, circuit, counts.clone());
    }

    /// Number of entries currently held.
    pub fn entries(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").len()
    }

    /// Estimated bytes currently held (the on-disk encoded size).
    pub fn bytes_used(&self) -> u64 {
        self.inner.lock().expect("cache lock poisoned").bytes_used()
    }

    /// Writes the store to the configured path (no-op without one). The
    /// write goes through a sibling temp file and an atomic rename so a
    /// crash mid-persist cannot corrupt an existing cache file.
    pub fn persist(&self) -> Result<(), CacheFileError> {
        let Some(path) = &self.config.path else {
            return Ok(());
        };
        let bytes = {
            let store = self.inner.lock().expect("cache lock poisoned");
            disk::encode(&store)
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| CacheFileError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| CacheFileError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::circuit::Circuit;

    fn circuit(theta: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).ry(theta, 1);
        c
    }

    fn counts(pairs: &[(u64, u64)]) -> Counts {
        Counts::from_pairs(2, pairs.iter().copied())
    }

    #[test]
    fn lookup_confirms_circuit_equality_not_just_the_key() {
        let cache = WarmCache::open(CacheConfig::default());
        let a = circuit(0.1);
        let b = circuit(0.2);
        let key = CacheKey::new(a.structural_hash(), 7, ShotDiscipline::Multinomial);
        cache.store(&key, &a, &counts(&[(0, 5), (3, 5)]));
        assert!(cache.lookup(&key, &a).is_some());
        // Same key struct, different circuit: must miss (collision guard).
        assert!(cache.lookup(&key, &b).is_none());
    }

    #[test]
    fn fingerprint_and_discipline_partition_the_store() {
        let cache = WarmCache::open(CacheConfig::default());
        let c = circuit(0.3);
        let ideal = CacheKey::new(c.structural_hash(), 1, ShotDiscipline::Multinomial);
        let noisy = CacheKey::new(c.structural_hash(), 2, ShotDiscipline::Multinomial);
        let external = CacheKey::new(c.structural_hash(), 1, ShotDiscipline::External);
        cache.store(&ideal, &c, &counts(&[(1, 9)]));
        assert!(cache.lookup(&noisy, &c).is_none());
        assert!(cache.lookup(&external, &c).is_none());
        assert!(cache.lookup(&ideal, &c).is_some());
    }

    #[test]
    fn store_replaces_cumulative_data() {
        let cache = WarmCache::open(CacheConfig::default());
        let c = circuit(0.4);
        let key = CacheKey::new(c.structural_hash(), 1, ShotDiscipline::Multinomial);
        cache.store(&key, &c, &counts(&[(0, 100)]));
        cache.store(&key, &c, &counts(&[(0, 100), (1, 50)]));
        let got = cache.lookup(&key, &c).expect("entry present");
        assert_eq!(got.total(), 150);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn missing_file_opens_cold_without_degradation() {
        let cache = WarmCache::open(CacheConfig::at_path(
            std::env::temp_dir().join("qcut-cache-test-does-not-exist.qwc"),
        ));
        assert_eq!(cache.entries(), 0);
        assert!(cache.take_degradation().is_none());
    }
}
