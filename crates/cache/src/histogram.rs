//! Tier-1 in-memory store: per-node histograms under LRU/byte-budget
//! eviction.
//!
//! Entries are keyed by [`CacheKey`] and additionally carry the full
//! circuit, so every hit is confirmed by instruction-level equality — a
//! 64-bit structural hash alone is not trusted anywhere in the workspace.
//! Byte accounting uses the exact on-disk encoded size of each entry
//! (single source of truth with [`crate::disk`]), so a store that fits the
//! budget in memory also fits it on disk.

use std::collections::HashMap;

use qcut_circuit::circuit::Circuit;
use qcut_sim::counts::Counts;

use crate::disk;
use crate::CacheKey;

/// One cached histogram: the circuit it was measured from (collision
/// guard), the cumulative counts, and LRU bookkeeping.
pub(crate) struct Slot {
    pub(crate) circuit: Circuit,
    pub(crate) counts: Counts,
    pub(crate) bytes: u64,
    pub(crate) last_used: u64,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("shots", &self.counts.total())
            .field("bytes", &self.bytes)
            .field("last_used", &self.last_used)
            .finish()
    }
}

/// The tier-1 histogram store. See the crate docs for the key schema.
///
/// Recency is a logical clock bumped on every hit and insertion; when the
/// byte budget is exceeded, whole entries are evicted strictly in
/// least-recently-used order until the store fits again. An entry larger
/// than the entire budget is itself evicted immediately after insertion —
/// that pathology (a budget below one node's histogram) is what lint
/// QA402 warns about.
#[derive(Debug)]
pub struct HistogramCache {
    byte_budget: u64,
    bytes_used: u64,
    clock: u64,
    map: HashMap<CacheKey, Vec<Slot>>,
}

impl HistogramCache {
    /// Empty store with the given byte budget.
    pub fn new(byte_budget: u64) -> Self {
        HistogramCache {
            byte_budget,
            bytes_used: 0,
            clock: 0,
            map: HashMap::new(),
        }
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Exact encoded bytes currently held.
    pub fn bytes_used(&self) -> u64 {
        self.bytes_used
    }

    /// The eviction budget.
    pub fn byte_budget(&self) -> u64 {
        self.byte_budget
    }

    /// Looks up `circuit` under `key`, confirming circuit equality, and
    /// touches the entry's recency.
    pub fn lookup(&mut self, key: &CacheKey, circuit: &Circuit) -> Option<&Counts> {
        self.clock += 1;
        let clock = self.clock;
        let slots = self.map.get_mut(key)?;
        let slot = slots.iter_mut().find(|s| s.circuit == *circuit)?;
        slot.last_used = clock;
        Some(&slot.counts)
    }

    /// Inserts (or replaces) the cumulative histogram for `(key, circuit)`,
    /// then evicts least-recently-used entries until the budget holds.
    pub fn store(&mut self, key: &CacheKey, circuit: &Circuit, counts: Counts) {
        self.clock += 1;
        let bytes = disk::entry_encoded_len(circuit, counts.iter().count() as u64);
        let slots = self.map.entry(*key).or_default();
        if let Some(slot) = slots.iter_mut().find(|s| s.circuit == *circuit) {
            self.bytes_used = self.bytes_used - slot.bytes + bytes;
            slot.counts = counts;
            slot.bytes = bytes;
            slot.last_used = self.clock;
        } else {
            slots.push(Slot {
                circuit: circuit.clone(),
                counts,
                bytes,
                last_used: self.clock,
            });
            self.bytes_used += bytes;
        }
        self.evict_to_budget();
    }

    fn evict_to_budget(&mut self) {
        while self.bytes_used > self.byte_budget {
            let oldest = self
                .map
                .iter()
                .flat_map(|(k, slots)| slots.iter().map(move |s| (*k, s.last_used)))
                .min_by_key(|&(_, used)| used);
            let Some((key, used)) = oldest else { return };
            if let Some(slots) = self.map.get_mut(&key) {
                if let Some(idx) = slots.iter().position(|s| s.last_used == used) {
                    let slot = slots.remove(idx);
                    self.bytes_used -= slot.bytes;
                }
                if slots.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Entries ordered least- to most-recently used — the persistence
    /// order, so a reloaded store replays the same recency ranking.
    pub(crate) fn slots_by_recency(&self) -> Vec<(CacheKey, &Slot)> {
        let mut all: Vec<(CacheKey, &Slot)> = self
            .map
            .iter()
            .flat_map(|(k, slots)| slots.iter().map(move |s| (*k, s)))
            .collect();
        all.sort_by_key(|&(_, s)| s.last_used);
        all
    }
}

/// Estimated encoded bytes of one node's histogram entry: the exact disk
/// size assuming the histogram realises `min(shots, 2^width)` distinct
/// outcomes. Used by lint QA402 to detect a thrashing byte budget.
pub fn estimated_entry_bytes(circuit: &Circuit, shots: u64) -> u64 {
    let width = circuit.num_qubits().min(63) as u32;
    let distinct = shots.min(1u64 << width);
    disk::entry_encoded_len(circuit, distinct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShotDiscipline;

    fn circuit(theta: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(theta, 0);
        c
    }

    fn key_for(c: &Circuit) -> CacheKey {
        CacheKey::new(c.structural_hash(), 42, ShotDiscipline::Multinomial)
    }

    fn counts(n: u64) -> Counts {
        Counts::from_pairs(2, [(0u64, n), (1, n), (2, n), (3, n)])
    }

    #[test]
    fn lru_evicts_strictly_by_recency_under_a_byte_cap() {
        let a = circuit(0.1);
        let b = circuit(0.2);
        let c = circuit(0.3);
        let one = disk::entry_encoded_len(&a, 4);
        // Budget fits exactly two entries (all three are the same size).
        let mut cache = HistogramCache::new(2 * one);
        cache.store(&key_for(&a), &a, counts(10));
        cache.store(&key_for(&b), &b, counts(10));
        assert_eq!(cache.len(), 2);
        // Touch `a`, making `b` the least recently used.
        assert!(cache.lookup(&key_for(&a), &a).is_some());
        cache.store(&key_for(&c), &c, counts(10));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.lookup(&key_for(&a), &a).is_some(),
            "recently used survives"
        );
        assert!(
            cache.lookup(&key_for(&c), &c).is_some(),
            "new entry survives"
        );
        assert!(
            cache.lookup(&key_for(&b), &b).is_none(),
            "LRU entry evicted"
        );
    }

    #[test]
    fn an_entry_larger_than_the_whole_budget_thrashes_to_empty() {
        let a = circuit(0.5);
        let mut cache = HistogramCache::new(8);
        cache.store(&key_for(&a), &a, counts(10));
        assert!(cache.is_empty(), "oversized entry cannot be retained");
        assert_eq!(cache.bytes_used(), 0);
    }

    #[test]
    fn replacing_an_entry_adjusts_byte_accounting() {
        let a = circuit(0.7);
        let mut cache = HistogramCache::new(u64::MAX);
        cache.store(&key_for(&a), &a, counts(10));
        let before = cache.bytes_used();
        // Fewer distinct outcomes: the entry shrinks.
        cache.store(&key_for(&a), &a, Counts::from_pairs(2, [(0u64, 40)]));
        assert!(cache.bytes_used() < before);
        assert_eq!(cache.len(), 1);
    }
}
