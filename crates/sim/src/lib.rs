//! # qcut-sim
//!
//! Simulation substrate for the `qcut` workspace: a state-vector simulator
//! (the stand-in for Qiskit Aer used by the paper's noiseless experiments),
//! a density-matrix simulator with Kraus noise channels (the substrate for
//! the simulated "IBM hardware" backends), shot sampling, measurement
//! counts, and the basis-change/preparation sub-circuits the cutting
//! protocol splices into fragments.
//!
//! ```
//! use qcut_circuit::circuit::Circuit;
//! use qcut_sim::statevector::StateVector;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let sv = StateVector::from_circuit(&bell);
//! assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
//! assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

pub mod basis_change;
pub mod counts;
pub mod density;
pub mod noise;
pub mod prefix;
pub mod statevector;

/// Common re-exports.
pub mod prelude {
    pub use crate::basis_change::{append_basis_rotation, prep_circuit, sic_prep_circuit};
    pub use crate::counts::{sample_counts, CdfTable, Counts};
    pub use crate::density::DensityMatrix;
    pub use crate::noise::{KrausChannel, NoiseModel, ReadoutError, ThermalSpec};
    pub use crate::prefix::{ForkState, PrefixForest, PrefixProfile};
    pub use crate::statevector::StateVector;
}

pub use prelude::*;
