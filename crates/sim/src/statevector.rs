//! State-vector simulator.
//!
//! This is the workspace's stand-in for the Qiskit Aer simulator the paper
//! uses \[27\]. Gates are applied with bit-twiddling kernels over the
//! amplitude array; above a size threshold the kernels switch to
//! rayon-parallel chunked execution (the guide's advice: parallelise only
//! when the data is big enough to amortise the overhead).

use crate::counts::{sample_counts, Counts};
use qcut_circuit::circuit::{Circuit, Instruction};
use qcut_math::{Complex, Matrix, Pauli, PauliString};
use rand::Rng;
use rayon::prelude::*;

/// Amplitudes below this qubit count are processed sequentially; the
/// parallel kernels only pay off once the state no longer fits in L1/L2.
const PAR_THRESHOLD_QUBITS: usize = 14;

/// A pure `n`-qubit state as `2^n` complex amplitudes (little-endian:
/// qubit 0 = least significant bit of the index).
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// `|0…0>` on `n` qubits.
    pub fn zero_state(num_qubits: usize) -> Self {
        let mut amps = vec![Complex::ZERO; 1 << num_qubits];
        amps[0] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Builds from raw amplitudes (must have length `2^n` and unit norm).
    pub fn from_amplitudes(num_qubits: usize, amps: Vec<Complex>) -> Self {
        assert_eq!(amps.len(), 1 << num_qubits, "amplitude count mismatch");
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state not normalised (norm² = {norm})"
        );
        StateVector { num_qubits, amps }
    }

    /// Runs a circuit from `|0…0>`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut sv = Self::zero_state(circuit.num_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Raw amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Applies every instruction of `circuit` in order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit width mismatch"
        );
        for inst in circuit.instructions() {
            self.apply_instruction(inst);
        }
    }

    /// Applies a single instruction.
    pub fn apply_instruction(&mut self, inst: &Instruction) {
        let m = inst.gate.matrix();
        match inst.qubits.len() {
            1 => self.apply_one_qubit(&m, inst.qubits[0]),
            2 => self.apply_two_qubit(&m, inst.qubits[0], inst.qubits[1]),
            _ => unreachable!("gates are 1- or 2-qubit"),
        }
    }

    /// Applies a 2×2 unitary to `target`.
    pub fn apply_one_qubit(&mut self, m: &Matrix, target: usize) {
        assert!(target < self.num_qubits, "target out of range");
        assert_eq!((m.rows(), m.cols()), (2, 2), "need a 2x2 matrix");
        let (a, b, c, d) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let bit = 1usize << target;
        let block = bit << 1;

        let kernel = |chunk: &mut [Complex]| {
            // chunk covers a contiguous range aligned to `block`.
            for base in (0..chunk.len()).step_by(block) {
                for off in 0..bit {
                    let i0 = base + off;
                    let i1 = i0 + bit;
                    let x0 = chunk[i0];
                    let x1 = chunk[i1];
                    chunk[i0] = a * x0 + b * x1;
                    chunk[i1] = c * x0 + d * x1;
                }
            }
        };

        if self.num_qubits >= PAR_THRESHOLD_QUBITS {
            // Chunks must be multiples of `block` to keep pairs together.
            let chunk = (self.amps.len() / rayon::current_num_threads().max(1))
                .next_power_of_two()
                .max(block);
            self.amps.par_chunks_mut(chunk).for_each(kernel);
        } else {
            kernel(&mut self.amps);
        }
    }

    /// Applies a 4×4 unitary to `(q0, q1)` where `q0` indexes bit 0 of the
    /// gate matrix and `q1` bit 1.
    pub fn apply_two_qubit(&mut self, m: &Matrix, q0: usize, q1: usize) {
        assert!(q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1);
        assert_eq!((m.rows(), m.cols()), (4, 4), "need a 4x4 matrix");
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let dim = self.amps.len();

        // Copy out the 16 gate entries once.
        let mut g = [[Complex::ZERO; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                g[r][c] = m[(r, c)];
            }
        }

        let lo = b0.min(b1);
        let hi = b0.max(b1);

        // Enumerate the 2^n/4 quadruple representatives (both operand bits
        // clear) directly: deposit a zero bit at each operand position with
        // two bit-deposit splits, instead of scanning all 2^n indices and
        // branching away the 3/4 that are not representatives. `k` runs
        // over compacted indices; re-expansion is monotone, so quadruples
        // are visited in the same ascending order as the old skip loop.
        let lo_below = lo - 1; // bits strictly below the lower operand bit
        let hi_below = hi - 1; // bits strictly below the higher operand bit
        let body = move |amps: &mut [Complex]| {
            for k in 0..amps.len() >> 2 {
                let t = ((k & !lo_below) << 1) | (k & lo_below);
                let i00 = ((t & !hi_below) << 1) | (t & hi_below);
                let i01 = i00 + b0; // bit q0 set
                let i10 = i00 + b1; // bit q1 set
                let i11 = i00 + b0 + b1;
                let x = [amps[i00], amps[i01], amps[i10], amps[i11]];
                for (slot, row) in [(i00, 0usize), (i01, 1), (i10, 2), (i11, 3)] {
                    let gr = &g[row];
                    amps[slot] = gr[0] * x[0] + gr[1] * x[1] + gr[2] * x[2] + gr[3] * x[3];
                }
            }
        };

        if self.num_qubits >= PAR_THRESHOLD_QUBITS {
            // Parallelise over chunks aligned to 2*hi so all four partners
            // of a quadruple land in the same chunk; chunk starts then have
            // both operand bits clear, so the chunk-local deposit enumerates
            // exactly the chunk's representatives.
            let align = hi << 1;
            let chunk =
                ((dim / rayon::current_num_threads().max(1)).next_power_of_two()).max(align);
            self.amps.par_chunks_mut(chunk).for_each(body);
        } else {
            body(&mut self.amps);
        }
    }

    /// Probability of each basis outcome.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability of one bitstring.
    pub fn probability(&self, bits: u64) -> f64 {
        self.amps[bits as usize].norm_sqr()
    }

    /// `<self|other>`.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(Complex::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b))
    }

    /// Fidelity `|<self|other>|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Norm² (≈ 1 for valid states; useful as an invariant check).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Expectation value of a Pauli string, `<ψ|P|ψ>` (real for Hermitian P).
    ///
    /// Computed as one streaming pass over the amplitudes, in place and
    /// allocation-free: a Pauli string maps a basis state to a single basis
    /// state with a phase, `P|i> = i^{#Y} (−1)^{|i ∧ phase|} |i ⊕ flip>`
    /// (`flip` collects X/Y positions, `phase` collects Y/Z positions), so
    /// `<ψ|P|ψ> = i^{#Y} Σ_i (−1)^{|i ∧ phase|} ψ*_{i⊕flip} ψ_i` — a
    /// pairwise accumulation over `(i, i ⊕ flip)` partners, with no state
    /// copy and no per-qubit gate applications.
    pub fn expectation_pauli(&self, p: &PauliString) -> f64 {
        assert_eq!(p.len(), self.num_qubits, "pauli string width mismatch");
        let mut flip = 0usize;
        let mut phase = 0usize;
        let mut num_y = 0u32;
        for (q, pauli) in p.paulis().iter().enumerate() {
            match pauli {
                Pauli::I => {}
                Pauli::X => flip |= 1 << q,
                Pauli::Y => {
                    flip |= 1 << q;
                    phase |= 1 << q;
                    num_y += 1;
                }
                Pauli::Z => phase |= 1 << q,
            }
        }
        let mut acc = Complex::ZERO;
        for (i, &amp) in self.amps.iter().enumerate() {
            let v = self.amps[i ^ flip].conj() * amp;
            acc = if (i & phase).count_ones() & 1 == 1 {
                acc - v
            } else {
                acc + v
            };
        }
        // i^{#Y}: rotate the accumulated sum by the global Y phase.
        match num_y % 4 {
            0 => acc.re,
            1 => acc.mul_i().re,
            2 => -acc.re,
            _ => acc.mul_neg_i().re,
        }
    }

    /// Samples measurement outcomes in the computational basis.
    pub fn sample<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> Counts {
        sample_counts(self.num_qubits, &self.probabilities(), shots, rng)
    }

    /// Reduced density matrix over `keep` qubits (partial trace of the
    /// rest). Output indices are little-endian in the order of `keep`.
    pub fn reduced_density_matrix(&self, keep: &[usize]) -> Matrix {
        for &q in keep {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
        let k = keep.len();
        let others: Vec<usize> = (0..self.num_qubits).filter(|q| !keep.contains(q)).collect();
        let dim_keep = 1usize << k;
        let dim_others = 1usize << others.len();
        let mut rho = Matrix::zeros(dim_keep, dim_keep);

        // For each assignment of the traced-out qubits, accumulate the
        // outer product of the corresponding sub-vector.
        let mut sub = vec![Complex::ZERO; dim_keep];
        for o in 0..dim_others {
            let mut base = 0usize;
            for (i, &q) in others.iter().enumerate() {
                if o & (1 << i) != 0 {
                    base |= 1 << q;
                }
            }
            for (ki, slot) in sub.iter_mut().enumerate() {
                let mut idx = base;
                for (i, &q) in keep.iter().enumerate() {
                    if ki & (1 << i) != 0 {
                        idx |= 1 << q;
                    }
                }
                *slot = self.amps[idx];
            }
            for r in 0..dim_keep {
                for c in 0..dim_keep {
                    rho[(r, c)] += sub[r] * sub[c].conj();
                }
            }
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::gate::Gate;
    use qcut_math::{c64, pure_density};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-10;

    #[test]
    fn zero_state_is_point_mass() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.probability(0), 1.0);
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_bit() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_one_qubit(&Gate::X.matrix(), 1);
        assert!((sv.probability(0b10) - 1.0).abs() < TOL);
    }

    #[test]
    fn hadamard_gives_uniform_superposition() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let sv = StateVector::from_circuit(&c);
        for i in 0..8 {
            assert!((sv.probability(i) - 0.125).abs() < TOL);
        }
    }

    #[test]
    fn bell_state_probabilities_and_correlations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c);
        assert!((sv.probability(0b00) - 0.5).abs() < TOL);
        assert!((sv.probability(0b11) - 0.5).abs() < TOL);
        assert!(sv.probability(0b01) < TOL);
        // <ZZ> = 1, <XX> = 1, <YY> = -1 for |Φ+>.
        assert!((sv.expectation_pauli(&PauliString::parse("ZZ").unwrap()) - 1.0).abs() < TOL);
        assert!((sv.expectation_pauli(&PauliString::parse("XX").unwrap()) - 1.0).abs() < TOL);
        assert!((sv.expectation_pauli(&PauliString::parse("YY").unwrap()) + 1.0).abs() < TOL);
    }

    #[test]
    fn matches_dense_unitary_on_random_circuits() {
        use qcut_circuit::random::{random_circuit, RandomCircuitConfig};
        for seed in 0..5 {
            let c = random_circuit(4, RandomCircuitConfig::default(), seed);
            let sv = StateVector::from_circuit(&c);
            // Dense reference: U |0>.
            let u = c.unitary();
            for (i, &amp) in sv.amplitudes().iter().enumerate() {
                assert!(
                    amp.approx_eq(u[(i, 0)], 1e-8),
                    "seed {seed}, amp {i}: {amp} vs {}",
                    u[(i, 0)]
                );
            }
        }
    }

    #[test]
    fn two_qubit_gate_respects_operand_order() {
        // CX with control=1, target=0: |q1=1, q0=0> -> |q1=1, q0=1>.
        let mut sv = StateVector::zero_state(2);
        sv.apply_one_qubit(&Gate::X.matrix(), 1); // |10>
        sv.apply_two_qubit(&Gate::Cx.matrix(), 1, 0); // control q1
        assert!((sv.probability(0b11) - 1.0).abs() < TOL);
    }

    #[test]
    fn circuit_preserves_norm() {
        use qcut_circuit::random::{random_circuit, RandomCircuitConfig};
        let c = random_circuit(
            6,
            RandomCircuitConfig {
                depth: 8,
                two_qubit_prob: 0.6,
            },
            3,
        );
        let sv = StateVector::from_circuit(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2);
        let a = StateVector::from_circuit(&c);
        let b = StateVector::from_circuit(&c);
        assert!((a.fidelity(&b) - 1.0).abs() < TOL);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::zero_state(1);
        let mut b = StateVector::zero_state(1);
        b.apply_one_qubit(&Gate::X.matrix(), 0);
        assert!(a.fidelity(&b) < TOL);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0);
        let sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let counts = sv.sample(40_000, &mut rng);
        assert!((counts.probability(0b00) - 0.5).abs() < 0.02);
        assert!((counts.probability(0b01) - 0.5).abs() < 0.02);
        assert_eq!(counts.get(0b10), 0);
    }

    #[test]
    fn reduced_density_matrix_of_product_state() {
        // |+> ⊗ |0>: tracing out qubit 0 leaves |0><0|; tracing qubit 1
        // leaves |+><+|.
        let mut c = Circuit::new(2);
        c.h(0);
        let sv = StateVector::from_circuit(&c);
        let rho1 = sv.reduced_density_matrix(&[1]);
        assert!(rho1.approx_eq(&pure_density(&[Complex::ONE, Complex::ZERO]), TOL));
        let rho0 = sv.reduced_density_matrix(&[0]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(rho0.approx_eq(&pure_density(&[c64(s, 0.0), c64(s, 0.0)]), TOL));
    }

    #[test]
    fn reduced_density_matrix_of_bell_state_is_maximally_mixed() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c);
        let rho = sv.reduced_density_matrix(&[0]);
        let half = Matrix::identity(2).scale(c64(0.5, 0.0));
        assert!(rho.approx_eq(&half, TOL));
        // Trace is preserved.
        assert!((rho.trace().re - 1.0).abs() < TOL);
    }

    #[test]
    fn reduced_density_matrix_multi_qubit_keep() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let sv = StateVector::from_circuit(&c);
        let rho = sv.reduced_density_matrix(&[0, 1]);
        assert_eq!(rho.rows(), 4);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        // GHZ reduced to two qubits: ½(|00><00| + |11><11|).
        assert!((rho[(0, 0)].re - 0.5).abs() < TOL);
        assert!((rho[(3, 3)].re - 0.5).abs() < TOL);
        assert!(rho[(0, 3)].abs() < TOL, "coherence must vanish");
    }

    #[test]
    fn expectation_of_identity_string_is_one() {
        let sv = StateVector::from_circuit(Circuit::new(2).h(0).cx(0, 1));
        assert!((sv.expectation_pauli(&PauliString::identity(2)) - 1.0).abs() < TOL);
    }

    #[test]
    fn real_circuit_has_zero_y_expectation() {
        // The golden-point mechanism: real circuits => <Π ⊗ Y> = 0.
        use qcut_circuit::random::{random_real_circuit, RandomCircuitConfig};
        for seed in 0..5 {
            let c = random_real_circuit(3, RandomCircuitConfig::default(), seed);
            let sv = StateVector::from_circuit(&c);
            let mut ps = PauliString::identity(3);
            ps.set(2, Pauli::Y);
            assert!(
                sv.expectation_pauli(&ps).abs() < 1e-9,
                "seed {seed}: Y expectation nonzero on a real circuit"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not normalised")]
    fn from_amplitudes_rejects_unnormalised() {
        StateVector::from_amplitudes(1, vec![Complex::ONE, Complex::ONE]);
    }
}
