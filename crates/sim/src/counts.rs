//! Measurement counts and shot sampling.
//!
//! A [`Counts`] is what a backend returns: a histogram of observed
//! bitstrings over a number of shots. Sampling from an exact probability
//! vector is done with a cumulative table + binary search — dimensions in
//! this workspace are ≤ 2^16, so a full CDF is cheap and sampling is
//! `O(log dim)` per shot.

use qcut_stats::distribution::Distribution;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// Histogram of measured bitstrings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_bits: usize,
    map: HashMap<u64, u64>,
    total: u64,
}

impl Counts {
    /// Empty histogram over `num_bits`-bit outcomes.
    pub fn new(num_bits: usize) -> Self {
        Counts {
            num_bits,
            map: HashMap::new(),
            total: 0,
        }
    }

    /// Builds from `(bitstring, count)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u64, u64)>>(num_bits: usize, pairs: I) -> Self {
        let mut c = Counts::new(num_bits);
        for (bits, n) in pairs {
            c.record_many(bits, n);
        }
        c
    }

    /// Number of bits per outcome.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Total number of shots recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one bitstring.
    #[inline]
    pub fn get(&self, bits: u64) -> u64 {
        self.map.get(&bits).copied().unwrap_or(0)
    }

    /// Records one observation.
    pub fn record(&mut self, bits: u64) {
        self.record_many(bits, 1);
    }

    /// Records `n` observations of the same bitstring.
    pub fn record_many(&mut self, bits: u64, n: u64) {
        debug_assert!(
            (bits as usize) < (1usize << self.num_bits),
            "bitstring out of range"
        );
        if n > 0 {
            *self.map.entry(bits).or_insert(0) += n;
            self.total += n;
        }
    }

    /// Merges another histogram (same width).
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.num_bits, other.num_bits, "bit width mismatch");
        for (&bits, &n) in &other.map {
            self.record_many(bits, n);
        }
    }

    /// Empirical probability of one bitstring.
    pub fn probability(&self, bits: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(bits) as f64 / self.total as f64
        }
    }

    /// Iterator over observed `(bitstring, count)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&b, &c)| (b, c))
    }

    /// Converts to an empirical [`Distribution`].
    pub fn to_distribution(&self) -> Distribution {
        Distribution::from_counts(self.num_bits, self.iter())
    }

    /// Marginal counts over the given bit positions (output bit `i` = input
    /// bit `positions[i]`).
    pub fn marginal(&self, positions: &[usize]) -> Counts {
        for &p in positions {
            assert!(p < self.num_bits, "bit position {p} out of range");
        }
        let mut out = Counts::new(positions.len());
        for (&bits, &n) in &self.map {
            let mut key = 0u64;
            for (i, &p) in positions.iter().enumerate() {
                if bits & (1 << p) != 0 {
                    key |= 1 << i;
                }
            }
            out.record_many(key, n);
        }
        out
    }

    /// Splits each outcome into two groups of bit positions, returning
    /// joint counts keyed by `(group_a_bits, group_b_bits)`. Used by
    /// tomography to separate fragment-output bits from cut-qubit bits.
    pub fn split(&self, group_a: &[usize], group_b: &[usize]) -> HashMap<(u64, u64), u64> {
        let mut out = HashMap::new();
        for (&bits, &n) in &self.map {
            let extract = |positions: &[usize]| -> u64 {
                let mut key = 0u64;
                for (i, &p) in positions.iter().enumerate() {
                    if bits & (1 << p) != 0 {
                        key |= 1 << i;
                    }
                }
                key
            };
            *out.entry((extract(group_a), extract(group_b))).or_insert(0) += n;
        }
        out
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(b, _)| **b);
        writeln!(f, "counts ({} shots):", self.total)?;
        for (bits, n) in entries {
            writeln!(f, "  {:0width$b}: {n}", bits, width = self.num_bits)?;
        }
        Ok(())
    }
}

/// Precomputed inverse-CDF sampling table over `2^num_bits` outcomes.
///
/// Building the cumulative table is `O(2^n)` — the expensive part of shot
/// sampling once the state is known. Callers that sample the same
/// distribution repeatedly (the prefix-sharing batch engine: every job
/// ending at the same trie leaf, JobGraph fan-out over one node) build the
/// table once and reuse it across `sample` calls; each call only pays
/// `O(shots · log dim)`. Sampling through a table is bit-identical to
/// [`sample_counts`], which is now a build-then-sample wrapper.
#[derive(Debug, Clone)]
pub struct CdfTable {
    num_bits: usize,
    cdf: Vec<f64>,
    mass: f64,
}

impl CdfTable {
    /// Builds the cumulative table from a probability vector (length
    /// `2^num_bits`). Tiny negative entries are clamped and draws are
    /// scaled to the actual total mass, tolerating normalisation drift.
    pub fn from_probs(num_bits: usize, probs: &[f64]) -> Self {
        assert_eq!(probs.len(), 1 << num_bits, "probability vector length");
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0f64;
        for &p in probs {
            debug_assert!(p >= -1e-9, "negative probability {p}");
            acc += p.max(0.0);
            cdf.push(acc);
        }
        let mass = acc;
        assert!(mass > 0.0, "probability vector has no mass");
        CdfTable {
            num_bits,
            cdf,
            mass,
        }
    }

    /// Bits per outcome.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Samples `shots` outcomes by inverse-CDF binary search.
    pub fn sample<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> Counts {
        let mut counts = Counts::new(self.num_bits);
        for _ in 0..shots {
            let u: f64 = rng.gen_range(0.0..self.mass);
            // Binary search for the first cdf entry > u.
            let idx = self
                .cdf
                .partition_point(|&c| c <= u)
                .min(self.cdf.len() - 1);
            counts.record(idx as u64);
        }
        counts
    }
}

/// Samples `shots` outcomes from a probability vector (length `2^num_bits`)
/// using an inverse-CDF table. One-shot wrapper over [`CdfTable`].
pub fn sample_counts<R: Rng + ?Sized>(
    num_bits: usize,
    probs: &[f64],
    shots: u64,
    rng: &mut R,
) -> Counts {
    CdfTable::from_probs(num_bits, probs).sample(shots, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(2);
        c.record(0b01);
        c.record(0b01);
        c.record(0b10);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(0b01), 2);
        assert_eq!(c.get(0b00), 0);
        assert!((c.probability(0b01) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::from_pairs(1, vec![(0, 5)]);
        let b = Counts::from_pairs(1, vec![(0, 1), (1, 4)]);
        a.merge(&b);
        assert_eq!(a.get(0), 6);
        assert_eq!(a.get(1), 4);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn to_distribution_matches_probabilities() {
        let c = Counts::from_pairs(2, vec![(0, 25), (3, 75)]);
        let d = c.to_distribution();
        assert!((d.get(0) - 0.25).abs() < 1e-12);
        assert!((d.get(3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn marginal_collapses_bits() {
        let c = Counts::from_pairs(3, vec![(0b101, 4), (0b001, 6)]);
        let m = c.marginal(&[0]);
        assert_eq!(m.get(1), 10);
        let m2 = c.marginal(&[2]);
        assert_eq!(m2.get(1), 4);
        assert_eq!(m2.get(0), 6);
    }

    #[test]
    fn split_separates_groups() {
        // bits: [out1, out0 | cut] layout: positions 0 = cut, 1..=2 outputs.
        let c = Counts::from_pairs(3, vec![(0b110, 3), (0b111, 2), (0b000, 5)]);
        let joint = c.split(&[1, 2], &[0]);
        assert_eq!(joint[&(0b11, 0)], 3);
        assert_eq!(joint[&(0b11, 1)], 2);
        assert_eq!(joint[&(0b00, 0)], 5);
    }

    #[test]
    fn sampling_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let c = sample_counts(2, &probs, 100_000, &mut rng);
        assert_eq!(c.total(), 100_000);
        for (i, &p) in probs.iter().enumerate() {
            let f = c.probability(i as u64);
            assert!((f - p).abs() < 0.01, "outcome {i}: {f} vs {p}");
        }
    }

    #[test]
    fn sampling_point_mass_always_hits() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = sample_counts(1, &[0.0, 1.0], 1000, &mut rng);
        assert_eq!(c.get(1), 1000);
    }

    #[test]
    fn sampling_tolerates_tiny_drift() {
        // Mass 0.999999 — draws are rescaled, no panic, all outcomes valid.
        let mut rng = StdRng::seed_from_u64(3);
        let c = sample_counts(1, &[0.499999, 0.5], 1000, &mut rng);
        assert_eq!(c.total(), 1000);
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn sampling_rejects_zero_mass() {
        let mut rng = StdRng::seed_from_u64(4);
        sample_counts(1, &[0.0, 0.0], 10, &mut rng);
    }

    #[test]
    fn reused_cdf_table_matches_fresh_sampling() {
        // The reuse contract: a table built once and sampled repeatedly
        // yields exactly what rebuilding it per call would — the identical
        // RNG consumption makes shared-leaf sampling bit-identical.
        let probs = [0.15, 0.35, 0.05, 0.45];
        let table = CdfTable::from_probs(2, &probs);
        assert_eq!(table.num_bits(), 2);
        let mut reused = StdRng::seed_from_u64(9);
        let mut fresh = StdRng::seed_from_u64(9);
        for shots in [1u64, 17, 500] {
            let a = table.sample(shots, &mut reused);
            let b = sample_counts(2, &probs, shots, &mut fresh);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn display_orders_bitstrings() {
        let c = Counts::from_pairs(2, vec![(2, 1), (0, 1)]);
        let s = c.to_string();
        let pos0 = s.find("00").unwrap();
        let pos2 = s.find("10").unwrap();
        assert!(pos0 < pos2);
    }
}
