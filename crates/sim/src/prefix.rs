//! Prefix-sharing batched simulation: the `PrefixForest`.
//!
//! Tomography batches are pathologically redundant: every upstream variant
//! is the *same* fragment circuit plus a ≤2-gate basis-rotation suffix, and
//! downstream variants for `K ≥ 2` cuts share preparation prefixes in a
//! 6-ary trie. A naive batched backend still pays `O(V · G)` gate
//! applications for `V` variants of a `G`-gate fragment. This module pays
//! `O(G + Σ suffix)` instead:
//!
//! ```text
//!            root (|0…0>)
//!             │  fragment gates (simulated ONCE)
//!             ▼
//!        [fragment]  ── job: Z setting (no rotation)
//!          ├── [H]        ── job: X setting
//!          └── [Sdg, H]   ── job: Y setting
//! ```
//!
//! Circuits are grouped into a compressed trie (one per width), keyed by
//! structural instruction-prefix hashes ([`Circuit::prefix_hash_chain`])
//! with equality confirmation on every matched instruction, so a 64-bit
//! collision can never merge different circuits. Simulation walks the trie
//! once: each node's instruction segment is applied to a single state,
//! which is cloned ("forked") only at branch points; subtrees fan out over
//! the rayon pool. Every node that terminates at least one circuit hands
//! its final state to the caller *once* — all jobs ending there share the
//! state (and, in the backends, one CDF sampling table).
//!
//! Determinism: forking is a bit-exact clone and every instruction is
//! applied in the same order as a per-circuit simulation, so leaf states
//! are bit-identical to `StateVector::from_circuit` / a sequential density
//! evolution — the property the backends' batched-equals-sequential
//! contract rests on.

use qcut_circuit::circuit::{Circuit, Instruction};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A simulation state that can be evolved instruction-by-instruction and
/// forked (cloned) at trie branch points.
///
/// Implementations must make `clone` bit-exact and `apply` deterministic
/// for a given state, so that prefix-shared evolution reproduces a
/// per-circuit simulation bit for bit.
pub trait ForkState: Clone + Send + Sync {
    /// Applies one instruction in place.
    fn apply(&mut self, inst: &Instruction);
}

impl ForkState for crate::statevector::StateVector {
    fn apply(&mut self, inst: &Instruction) {
        self.apply_instruction(inst);
    }
}

impl ForkState for crate::density::DensityMatrix {
    fn apply(&mut self, inst: &Instruction) {
        self.apply_instruction(inst);
    }
}

/// One trie node: a maximal shared instruction segment.
///
/// The segment is stored as a range into an *exemplar* circuit rather than
/// cloned instructions — invariant: the concatenated segments on the path
/// from the root to this node equal `exemplar.instructions()[..end]`, so
/// edges can be compared against any inserted circuit positionally.
#[derive(Debug)]
struct Node {
    /// Width of every circuit below this node.
    width: usize,
    /// Index (into the forest's circuit list) of the circuit spelling this
    /// node's segment.
    exemplar: usize,
    /// Segment start within the exemplar's instruction list.
    start: usize,
    /// Segment end (exclusive); the root of each width group has
    /// `start == end == 0`.
    end: usize,
    /// Child nodes, in first-insertion order.
    children: Vec<usize>,
    /// Circuits (by forest index) whose instruction list ends exactly at
    /// this node.
    jobs: Vec<usize>,
}

/// Summary of a forest's sharing economics — the planner-side prefix
/// metadata surfaced in reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixProfile {
    /// Circuits inserted into the forest.
    pub circuits: usize,
    /// Trie nodes, including one root per distinct width.
    pub nodes: usize,
    /// Nodes at which at least one circuit terminates (distinct circuits —
    /// each gets one final state and one sampling table).
    pub terminal_nodes: usize,
    /// Gate applications a per-circuit simulation would perform
    /// (`Σ len(circuit)`).
    pub gates_naive: u64,
    /// Gate applications the shared walk performs (`Σ segment lengths`).
    pub gates_shared: u64,
}

impl PrefixProfile {
    /// Gate applications eliminated by sharing.
    pub fn gates_saved(&self) -> u64 {
        self.gates_naive - self.gates_shared
    }

    /// `naive / shared` work ratio (1.0 when nothing is shared).
    pub fn sharing_factor(&self) -> f64 {
        if self.gates_shared == 0 {
            1.0
        } else {
            self.gates_naive as f64 / self.gates_shared as f64
        }
    }
}

/// A compressed trie over a batch of circuits, grouping shared instruction
/// prefixes so each is simulated exactly once. See the module docs.
#[derive(Debug)]
pub struct PrefixForest<'c> {
    circuits: Vec<&'c Circuit>,
    /// Per-circuit incremental structural hashes (`chains[i][p]`
    /// fingerprints circuit `i`'s first `p` instructions).
    chains: Vec<Vec<u64>>,
    nodes: Vec<Node>,
    /// Root node per distinct width, in first-appearance order.
    roots: Vec<usize>,
}

impl<'c> PrefixForest<'c> {
    /// Builds the forest over `circuits` (insertion order is preserved in
    /// [`PrefixForest::dfs_job_order`] for already-trie-local input).
    pub fn build(circuits: &[&'c Circuit]) -> Self {
        let mut forest = PrefixForest {
            circuits: circuits.to_vec(),
            chains: circuits.iter().map(|c| c.prefix_hash_chain()).collect(),
            nodes: Vec::new(),
            roots: Vec::new(),
        };
        for j in 0..forest.circuits.len() {
            forest.insert(j);
        }
        forest
    }

    /// Inserts circuit `j`, splitting edges at divergence points.
    fn insert(&mut self, j: usize) {
        let width = self.circuits[j].num_qubits();
        let root = match self
            .roots
            .iter()
            .copied()
            .find(|&r| self.nodes[r].width == width)
        {
            Some(r) => r,
            None => {
                let r = self.push_node(width, j, 0, 0);
                self.roots.push(r);
                r
            }
        };

        let total = self.circuits[j].len();
        let mut cur = root;
        let mut pos = 0usize; // instructions of `j` consumed so far
        loop {
            if pos == total {
                self.nodes[cur].jobs.push(j);
                return;
            }
            // Find the child whose segment starts with j's next instruction:
            // hash-keyed lookup, confirmed by instruction equality.
            let next = self.nodes[cur].children.iter().copied().find(|&c| {
                let n = &self.nodes[c];
                self.chains[n.exemplar][pos + 1] == self.chains[j][pos + 1]
                    && self.instruction(n.exemplar, n.start) == self.instruction(j, pos)
            });
            let child = match next {
                Some(c) => c,
                None => {
                    let leaf = self.push_node(width, j, pos, total);
                    self.nodes[leaf].jobs.push(j);
                    self.nodes[cur].children.push(leaf);
                    return;
                }
            };

            // Advance along the child's segment while prefixes agree.
            let (exemplar, seg_start, seg_end) = {
                let n = &self.nodes[child];
                (n.exemplar, n.start, n.end)
            };
            debug_assert_eq!(seg_start, pos, "edge start must equal path length");
            let limit = (seg_end - seg_start).min(total - pos);
            let mut matched = 1usize; // the child-lookup confirmed one
            while matched < limit
                && self.chains[exemplar][pos + matched + 1] == self.chains[j][pos + matched + 1]
                && self.instruction(exemplar, pos + matched) == self.instruction(j, pos + matched)
            {
                matched += 1;
            }

            if matched == seg_end - seg_start {
                // Consumed the whole edge; descend.
                pos += matched;
                cur = child;
                continue;
            }

            // Diverged mid-edge: split the child at the divergence point.
            let mid = self.push_node(width, exemplar, seg_start, seg_start + matched);
            self.nodes[child].start = seg_start + matched;
            self.nodes[mid].children.push(child);
            let slot = self.nodes[cur]
                .children
                .iter()
                .position(|&c| c == child)
                .expect("child listed under its parent");
            self.nodes[cur].children[slot] = mid;

            pos += matched;
            if pos == total {
                self.nodes[mid].jobs.push(j);
            } else {
                let leaf = self.push_node(width, j, pos, total);
                self.nodes[leaf].jobs.push(j);
                self.nodes[mid].children.push(leaf);
            }
            return;
        }
    }

    fn push_node(&mut self, width: usize, exemplar: usize, start: usize, end: usize) -> usize {
        self.nodes.push(Node {
            width,
            exemplar,
            start,
            end,
            children: Vec::new(),
            jobs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    #[inline]
    fn instruction(&self, circuit: usize, idx: usize) -> &Instruction {
        &self.circuits[circuit].instructions()[idx]
    }

    /// Number of circuits in the forest.
    pub fn num_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// Total trie nodes, including one (empty-segment) root per distinct
    /// circuit width. Each non-root node is one distinct maximal shared
    /// prefix segment of the batch.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes at which at least one circuit terminates — the number of
    /// *distinct* circuits, and the number of final states (and sampling
    /// tables) the walk produces.
    pub fn num_terminal_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.jobs.is_empty()).count()
    }

    /// Gate applications the shared walk performs.
    pub fn gates_shared(&self) -> u64 {
        self.nodes.iter().map(|n| (n.end - n.start) as u64).sum()
    }

    /// Gate applications a per-circuit simulation would perform.
    pub fn gates_naive(&self) -> u64 {
        self.circuits.iter().map(|c| c.len() as u64).sum()
    }

    /// The forest's sharing summary.
    pub fn profile(&self) -> PrefixProfile {
        PrefixProfile {
            circuits: self.num_circuits(),
            nodes: self.num_nodes(),
            terminal_nodes: self.num_terminal_nodes(),
            gates_naive: self.gates_naive(),
            gates_shared: self.gates_shared(),
        }
    }

    /// Circuit indices in trie DFS (pre-order) — the trie-locality order
    /// the planner emits jobs in: circuits sharing a prefix are adjacent,
    /// and input that is already trie-local comes back unchanged (children
    /// and jobs keep first-insertion order).
    pub fn dfs_job_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.circuits.len());
        let mut stack: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            order.extend(node.jobs.iter().copied());
            stack.extend(node.children.iter().rev().copied());
        }
        order
    }

    /// Simulates every circuit with one shared walk.
    ///
    /// `init` builds the root state for a width (e.g.
    /// `StateVector::zero_state`). For every node where at least one
    /// circuit terminates, `visit(&state, members)` is called exactly once
    /// with the node's final state and the indices of all circuits ending
    /// there; it returns one value per member (same order). The walk forks
    /// the state at branch points and recurses over subtrees in parallel
    /// on the rayon pool; the per-circuit results are returned in input
    /// order. Thread scheduling cannot affect any value handed to `visit`.
    pub fn simulate_with<S, I, V, T>(&self, init: I, visit: V) -> Vec<T>
    where
        S: ForkState,
        I: Fn(usize) -> S + Sync,
        V: Fn(&S, &[usize]) -> Vec<T> + Sync,
        T: Send,
    {
        let sink: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(self.circuits.len()));
        self.roots.par_iter().for_each(|&r| {
            self.walk(r, init(self.nodes[r].width), &visit, &sink);
        });
        let mut slots: Vec<Option<T>> = (0..self.circuits.len()).map(|_| None).collect();
        for (j, v) in sink.into_inner().expect("forest sink poisoned") {
            debug_assert!(slots[j].is_none(), "circuit delivered twice");
            slots[j] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every circuit terminates at exactly one node"))
            .collect()
    }

    fn walk<S, V, T>(&self, idx: usize, mut state: S, visit: &V, sink: &Mutex<Vec<(usize, T)>>)
    where
        S: ForkState,
        V: Fn(&S, &[usize]) -> Vec<T> + Sync,
        T: Send,
    {
        let node = &self.nodes[idx];
        for inst in &self.circuits[node.exemplar].instructions()[node.start..node.end] {
            state.apply(inst);
        }
        if !node.jobs.is_empty() {
            let values = visit(&state, &node.jobs);
            assert_eq!(
                values.len(),
                node.jobs.len(),
                "visit must return one value per terminating circuit"
            );
            let mut sink = sink.lock().expect("forest sink poisoned");
            sink.extend(node.jobs.iter().copied().zip(values));
        }
        match node.children.len() {
            0 => {}
            // Single child: hand the state over without a fork.
            1 => self.walk(node.children[0], state, visit, sink),
            _ => node.children.par_iter().for_each(|&c| {
                self.walk(c, state.clone(), visit, sink);
            }),
        }
    }

    /// [`PrefixForest::simulate_with`] with cross-batch fork-state reuse —
    /// the warm-start cache's tier 2.
    ///
    /// Before applying a node's instruction segment the walk asks `cache`
    /// for the state at the segment's *end* (keyed by the
    /// [`Circuit::prefix_hash_chain`] link, confirmed by instruction
    /// equality); a hit replaces the incoming state and skips the segment's
    /// gate applications. On a miss the freshly evolved state is exported
    /// back into the cache, so a later batch — in this run or a later
    /// `CutExecutor::run` of a sweep — resumes from the deepest prefix any
    /// earlier walk has already evolved and re-simulates only divergent
    /// suffixes.
    ///
    /// Determinism: a cached state is bit-identical to what re-applying the
    /// (equality-confirmed) prefix to the init state would produce, so
    /// results are bit-identical to [`PrefixForest::simulate_with`].
    pub fn simulate_with_reuse<S, I, V, T>(
        &self,
        init: I,
        visit: V,
        cache: &Mutex<ForkStateCache<S>>,
    ) -> (Vec<T>, ReuseStats)
    where
        S: ForkState,
        I: Fn(usize) -> S + Sync,
        V: Fn(&S, &[usize]) -> Vec<T> + Sync,
        T: Send,
    {
        let sink: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(self.circuits.len()));
        let stats = AtomicReuseStats::default();
        self.roots.par_iter().for_each(|&r| {
            self.walk_reuse(r, init(self.nodes[r].width), &visit, &sink, cache, &stats);
        });
        let mut slots: Vec<Option<T>> = (0..self.circuits.len()).map(|_| None).collect();
        for (j, v) in sink.into_inner().expect("forest sink poisoned") {
            debug_assert!(slots[j].is_none(), "circuit delivered twice");
            slots[j] = Some(v);
        }
        let values = slots
            .into_iter()
            .map(|s| s.expect("every circuit terminates at exactly one node"))
            .collect();
        (values, stats.snapshot())
    }

    fn walk_reuse<S, V, T>(
        &self,
        idx: usize,
        mut state: S,
        visit: &V,
        sink: &Mutex<Vec<(usize, T)>>,
        cache: &Mutex<ForkStateCache<S>>,
        stats: &AtomicReuseStats,
    ) where
        S: ForkState,
        V: Fn(&S, &[usize]) -> Vec<T> + Sync,
        T: Send,
    {
        let node = &self.nodes[idx];
        // Width-group roots have empty segments; there is nothing to reuse
        // or export there.
        if node.end > node.start {
            let link = self.chains[node.exemplar][node.end];
            let prefix = &self.circuits[node.exemplar].instructions()[..node.end];
            let hit = cache
                .lock()
                .expect("fork-state cache poisoned")
                .lookup(node.width, link, prefix);
            match hit {
                Some(cached) => {
                    state = cached;
                    stats.states_reused.fetch_add(1, Ordering::Relaxed);
                    stats
                        .gates_skipped
                        .fetch_add((node.end - node.start) as u64, Ordering::Relaxed);
                }
                None => {
                    for inst in &self.circuits[node.exemplar].instructions()[node.start..node.end] {
                        state.apply(inst);
                    }
                    cache.lock().expect("fork-state cache poisoned").store(
                        node.width,
                        link,
                        prefix,
                        state.clone(),
                    );
                }
            }
        }
        if !node.jobs.is_empty() {
            let values = visit(&state, &node.jobs);
            assert_eq!(
                values.len(),
                node.jobs.len(),
                "visit must return one value per terminating circuit"
            );
            let mut sink = sink.lock().expect("forest sink poisoned");
            sink.extend(node.jobs.iter().copied().zip(values));
        }
        match node.children.len() {
            0 => {}
            1 => self.walk_reuse(node.children[0], state, visit, sink, cache, stats),
            _ => node.children.par_iter().for_each(|&c| {
                self.walk_reuse(c, state.clone(), visit, sink, cache, stats);
            }),
        }
    }
}

/// Reuse counters from one [`PrefixForest::simulate_with_reuse`] walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Trie segments whose end state was served from the cache.
    pub states_reused: u64,
    /// Gate applications those hits skipped.
    pub gates_skipped: u64,
}

#[derive(Default)]
struct AtomicReuseStats {
    states_reused: AtomicU64,
    gates_skipped: AtomicU64,
}

impl AtomicReuseStats {
    fn snapshot(&self) -> ReuseStats {
        ReuseStats {
            states_reused: self.states_reused.load(Ordering::Relaxed),
            gates_skipped: self.gates_skipped.load(Ordering::Relaxed),
        }
    }
}

/// One cached fork state: the exact instruction prefix that produced it
/// (hash-collision guard) and LRU bookkeeping.
struct CachedState<S> {
    width: usize,
    prefix: Vec<Instruction>,
    state: S,
    last_used: u64,
}

/// Tier 2 of the warm-start cache: simulator states keyed by
/// [`Circuit::prefix_hash_chain`] links, held in memory and shared across
/// batches (and across runs, via whoever owns the `Mutex`).
///
/// Lookups confirm the full instruction prefix before serving a state —
/// the same hash-plus-equality discipline the forest itself uses — so a
/// 64-bit chain collision can never resume simulation from a wrong state.
/// Capacity is bounded by an entry count; eviction is strictly
/// least-recently-used.
pub struct ForkStateCache<S> {
    entries: std::collections::HashMap<u64, Vec<CachedState<S>>>,
    max_states: usize,
    clock: u64,
}

impl<S> std::fmt::Debug for ForkStateCache<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkStateCache")
            .field("states", &self.len())
            .field("max_states", &self.max_states)
            .finish()
    }
}

impl<S> ForkStateCache<S> {
    /// Empty cache holding at most `max_states` states.
    pub fn new(max_states: usize) -> Self {
        ForkStateCache {
            entries: std::collections::HashMap::new(),
            max_states,
            clock: 0,
        }
    }

    /// States currently held.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<S: Clone> ForkStateCache<S> {
    /// Returns (a clone of) the state at the end of `prefix`, if cached.
    /// `link` must be the prefix-hash-chain value at `prefix.len()`; the
    /// stored prefix is compared instruction-by-instruction before the
    /// state is served. Touches LRU recency.
    pub fn lookup(&mut self, width: usize, link: u64, prefix: &[Instruction]) -> Option<S> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self
            .entries
            .get_mut(&link)?
            .iter_mut()
            .find(|s| s.width == width && s.prefix == prefix)?;
        slot.last_used = clock;
        Some(slot.state.clone())
    }

    /// Exports the state at the end of `prefix` into the cache (replacing
    /// any previous state for the same prefix), then evicts the
    /// least-recently-used states above capacity.
    pub fn store(&mut self, width: usize, link: u64, prefix: &[Instruction], state: S) {
        self.clock += 1;
        let clock = self.clock;
        let slots = self.entries.entry(link).or_default();
        if let Some(slot) = slots
            .iter_mut()
            .find(|s| s.width == width && s.prefix == prefix)
        {
            slot.state = state;
            slot.last_used = clock;
        } else {
            slots.push(CachedState {
                width,
                prefix: prefix.to_vec(),
                state,
                last_used: clock,
            });
        }
        while self.len() > self.max_states {
            let oldest = self
                .entries
                .iter()
                .flat_map(|(k, slots)| slots.iter().map(move |s| (*k, s.last_used)))
                .min_by_key(|&(_, used)| used);
            let Some((link, used)) = oldest else { return };
            if let Some(slots) = self.entries.get_mut(&link) {
                slots.retain(|s| s.last_used != used);
                if slots.is_empty() {
                    self.entries.remove(&link);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    /// The canonical upstream workload: one fragment, three rotation
    /// suffixes (Z appends nothing, X appends H, Y appends Sdg+H).
    fn upstream_variants() -> Vec<Circuit> {
        let mut fragment = Circuit::new(3);
        fragment.h(0).cx(0, 1).ry(0.3, 2).cx(1, 2);
        let z = fragment.clone();
        let mut x = fragment.clone();
        x.h(2);
        let mut y = fragment.clone();
        y.sdg(2).h(2);
        vec![z, x, y]
    }

    fn simulate_all(circuits: &[Circuit]) -> Vec<StateVector> {
        let refs: Vec<&Circuit> = circuits.iter().collect();
        PrefixForest::build(&refs).simulate_with(StateVector::zero_state, |state, members| {
            members.iter().map(|_| state.clone()).collect()
        })
    }

    #[test]
    fn node_count_equals_distinct_prefix_segments() {
        let variants = upstream_variants();
        let refs: Vec<&Circuit> = variants.iter().collect();
        let forest = PrefixForest::build(&refs);
        // Distinct prefix segments: the shared fragment, the H suffix and
        // the Sdg+H suffix — plus one root for the single width.
        assert_eq!(forest.num_nodes(), 4);
        assert_eq!(forest.num_terminal_nodes(), 3);
        assert_eq!(forest.gates_naive(), (4 + 5 + 6) as u64);
        assert_eq!(forest.gates_shared(), (4 + 1 + 2) as u64);
        assert_eq!(forest.profile().gates_saved(), 8);
    }

    #[test]
    fn identical_circuits_share_one_terminal_node() {
        let c = upstream_variants().remove(0);
        let copies = [c.clone(), c.clone(), c];
        let refs: Vec<&Circuit> = copies.iter().collect();
        let forest = PrefixForest::build(&refs);
        assert_eq!(forest.num_nodes(), 2); // root + one segment
        assert_eq!(forest.num_terminal_nodes(), 1);
        assert_eq!(forest.gates_shared(), 4);
    }

    #[test]
    fn disjoint_circuits_share_nothing() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.x(0);
        let mut c = Circuit::new(3); // different width: own root
        c.h(1);
        let all = [a, b, c];
        let refs: Vec<&Circuit> = all.iter().collect();
        let forest = PrefixForest::build(&refs);
        assert_eq!(forest.num_nodes(), 2 + 3); // two roots + three leaves
        assert_eq!(forest.gates_shared(), forest.gates_naive());
        assert!((forest.profile().sharing_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mid_edge_split_creates_an_interior_node() {
        // b diverges inside a's single segment: [h, cx, s] vs [h, cx, t].
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).s(1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).t(1);
        let refs = [&a, &b];
        let forest = PrefixForest::build(&refs);
        // root + shared [h, cx] + [s] + [t].
        assert_eq!(forest.num_nodes(), 4);
        assert_eq!(forest.gates_shared(), 4);
        assert_eq!(forest.gates_naive(), 6);
    }

    #[test]
    fn circuit_that_is_a_prefix_of_another_terminates_mid_path() {
        let variants = upstream_variants();
        // variants[0] (the bare fragment) is a strict prefix of variants[1].
        let pair = vec![variants[1].clone(), variants[0].clone()];
        let refs: Vec<&Circuit> = pair.iter().collect();
        let forest = PrefixForest::build(&refs);
        assert_eq!(forest.num_terminal_nodes(), 2);
        let states = simulate_all(&pair);
        assert_eq!(states[0], StateVector::from_circuit(&pair[0]));
        assert_eq!(states[1], StateVector::from_circuit(&pair[1]));
    }

    #[test]
    fn empty_circuits_terminate_at_the_root() {
        let all = vec![Circuit::new(2), Circuit::new(2)];
        let refs: Vec<&Circuit> = all.iter().collect();
        let forest = PrefixForest::build(&refs);
        assert_eq!(forest.num_nodes(), 1);
        assert_eq!(forest.num_terminal_nodes(), 1);
        let states = simulate_all(&all);
        assert_eq!(states[0], StateVector::zero_state(2));
    }

    #[test]
    fn shared_simulation_is_bit_identical_to_per_circuit_simulation() {
        use qcut_circuit::random::{random_circuit, RandomCircuitConfig};
        let mut batch = Vec::new();
        for seed in 0..4 {
            let base = random_circuit(4, RandomCircuitConfig::default(), seed);
            batch.push(base.clone());
            let mut rotated = base.clone();
            rotated.h(3);
            batch.push(rotated);
            let mut deeper = base;
            deeper.sdg(3).h(3).cx(0, 3);
            batch.push(deeper);
        }
        let states = simulate_all(&batch);
        for (i, c) in batch.iter().enumerate() {
            let reference = StateVector::from_circuit(c);
            assert_eq!(
                states[i].amplitudes(),
                reference.amplitudes(),
                "circuit {i} diverged from its per-circuit simulation"
            );
        }
    }

    #[test]
    fn dfs_order_is_identity_on_trie_local_input() {
        let variants = upstream_variants();
        let refs: Vec<&Circuit> = variants.iter().collect();
        assert_eq!(PrefixForest::build(&refs).dfs_job_order(), vec![0, 1, 2]);
    }

    #[test]
    fn dfs_order_regroups_interleaved_batches() {
        // Interleave two prefix families; DFS clusters them.
        let variants = upstream_variants();
        let mut other = Circuit::new(3);
        other.x(0).x(1).x(2);
        let batch = [&variants[0], &other, &variants[1], &variants[2]];
        let order = PrefixForest::build(&batch).dfs_job_order();
        assert_eq!(order, vec![0, 2, 3, 1]);
    }

    #[test]
    fn density_states_walk_the_same_forest() {
        use crate::density::DensityMatrix;
        let variants = upstream_variants();
        let refs: Vec<&Circuit> = variants.iter().collect();
        let probs = PrefixForest::build(&refs).simulate_with(
            DensityMatrix::zero_state,
            |state: &DensityMatrix, members| {
                members.iter().map(|_| state.probabilities()).collect()
            },
        );
        for (i, c) in variants.iter().enumerate() {
            let mut reference = DensityMatrix::zero_state(3);
            reference.apply_circuit(c);
            assert_eq!(probs[i], reference.probabilities(), "circuit {i}");
        }
    }

    #[test]
    fn visit_runs_once_per_terminal_node() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = upstream_variants().remove(0);
        let copies = [c.clone(), c.clone(), c];
        let refs: Vec<&Circuit> = copies.iter().collect();
        let calls = AtomicUsize::new(0);
        let states = PrefixForest::build(&refs).simulate_with(
            StateVector::zero_state,
            |state: &StateVector, members| {
                calls.fetch_add(1, Ordering::Relaxed);
                members.iter().map(|_| state.probability(0)).collect()
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(states.len(), 3);
        assert_eq!(states[0], states[2]);
    }

    #[test]
    fn reuse_walk_is_bit_identical_to_the_plain_walk() {
        let variants = upstream_variants();
        let refs: Vec<&Circuit> = variants.iter().collect();
        let forest = PrefixForest::build(&refs);
        let plain = forest.simulate_with(StateVector::zero_state, |state, members| {
            members.iter().map(|_| state.clone()).collect()
        });
        let cache = Mutex::new(ForkStateCache::new(64));
        // Cold pass: every segment is a miss but gets exported.
        let (cold, cold_stats) = forest.simulate_with_reuse(
            StateVector::zero_state,
            |state, members| members.iter().map(|_| state.clone()).collect(),
            &cache,
        );
        assert_eq!(cold_stats.states_reused, 0);
        assert!(!cache.lock().expect("lock").is_empty());
        // Warm pass over the same batch: every segment is a hit.
        let (warm, warm_stats) = forest.simulate_with_reuse(
            StateVector::zero_state,
            |state, members| members.iter().map(|_| state.clone()).collect(),
            &cache,
        );
        assert_eq!(warm_stats.states_reused as usize, forest.num_nodes() - 1);
        assert_eq!(warm_stats.gates_skipped, forest.gates_shared());
        for i in 0..variants.len() {
            assert_eq!(plain[i], cold[i], "cold pass diverged on circuit {i}");
            assert_eq!(plain[i], warm[i], "warm pass diverged on circuit {i}");
        }
    }

    #[test]
    fn reuse_crosses_forests_when_only_the_suffix_changes() {
        // Two "sweep points": same fragment, different final rotation.
        let mut base = Circuit::new(3);
        base.h(0).cx(0, 1).ry(0.3, 2).cx(1, 2);
        let mut point_a = base.clone();
        point_a.rz(0.1, 2);
        let mut point_b = base.clone();
        point_b.rz(0.2, 2);

        let cache = Mutex::new(ForkStateCache::new(64));
        let refs_a = [&point_a];
        let (states_a, stats_a) = PrefixForest::build(&refs_a).simulate_with_reuse(
            StateVector::zero_state,
            |state: &StateVector, members| members.iter().map(|_| state.clone()).collect(),
            &cache,
        );
        assert_eq!(stats_a.states_reused, 0);

        // The second point's forest is a different trie (one circuit, one
        // segment), but its prefix states were exported by the first walk…
        // except the full-length one, which includes the divergent suffix.
        // Reuse therefore kicks in only at shared *segment ends*; build the
        // batch with both circuits so the shared fragment is its own node.
        let refs_ab = [&point_a, &point_b];
        let (states_ab, stats_ab) = PrefixForest::build(&refs_ab).simulate_with_reuse(
            StateVector::zero_state,
            |state: &StateVector, members| members.iter().map(|_| state.clone()).collect(),
            &cache,
        );
        assert!(
            stats_ab.states_reused >= 1,
            "the full point_a prefix state must be served from the first walk"
        );
        assert_eq!(states_a[0], states_ab[0], "cross-forest reuse is bit-exact");
        let mut reference = StateVector::zero_state(3);
        for inst in point_b.instructions() {
            reference.apply(inst);
        }
        assert_eq!(states_ab[1], reference, "unrelated suffix still exact");
    }

    #[test]
    fn fork_state_cache_confirms_prefix_equality() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut cache: ForkStateCache<StateVector> = ForkStateCache::new(8);
        let link = a.prefix_hash_chain()[2];
        let mut state = StateVector::zero_state(2);
        for inst in a.instructions() {
            state.apply(inst);
        }
        cache.store(2, link, a.instructions(), state);
        // Same link, different claimed prefix: must miss.
        let mut b = Circuit::new(2);
        b.h(0).cx(1, 0);
        assert!(cache.lookup(2, link, b.instructions()).is_none());
        assert!(cache.lookup(2, link, a.instructions()).is_some());
    }

    #[test]
    fn fork_state_cache_evicts_least_recently_used() {
        let mut cache: ForkStateCache<u32> = ForkStateCache::new(2);
        let inst = |t: f64| vec![Instruction::new(qcut_circuit::gate::Gate::Rz(t), vec![0])];
        let (pa, pb, pc) = (inst(0.1), inst(0.2), inst(0.3));
        cache.store(1, 10, &pa, 1);
        cache.store(1, 20, &pb, 2);
        assert!(cache.lookup(1, 10, &pa).is_some()); // touch A; B is now LRU
        cache.store(1, 30, &pc, 3);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1, 20, &pb).is_none(), "LRU state evicted");
        assert!(cache.lookup(1, 10, &pa).is_some());
        assert!(cache.lookup(1, 30, &pc).is_some());
    }
}
