//! Kraus noise channels and device noise models.
//!
//! This module provides the noise substrate that turns the ideal simulator
//! into a stand-in for the paper's IBM devices (see DESIGN.md §4):
//! depolarizing errors after each gate, thermal relaxation (amplitude +
//! phase damping derived from T1/T2 and gate duration), and classical
//! readout bit-flips.

use qcut_math::{c64, Complex, Matrix, Pauli};

/// A CPTP channel given by Kraus operators (all 2×2 or all 4×4).
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    ops: Vec<Matrix>,
    arity: usize,
}

impl KrausChannel {
    /// Wraps explicit Kraus operators, validating the completeness relation
    /// `Σ K†K = I` to `1e-9`.
    pub fn new(ops: Vec<Matrix>) -> Self {
        assert!(!ops.is_empty(), "need at least one Kraus operator");
        let dim = ops[0].rows();
        assert!(dim == 2 || dim == 4, "only 1- and 2-qubit channels");
        let mut sum = Matrix::zeros(dim, dim);
        for k in &ops {
            assert_eq!(
                (k.rows(), k.cols()),
                (dim, dim),
                "inconsistent Kraus shapes"
            );
            sum = &sum + &k.adjoint().matmul(k);
        }
        assert!(
            sum.approx_eq(&Matrix::identity(dim), 1e-9),
            "Kraus operators violate completeness: Σ K†K != I"
        );
        let arity = if dim == 2 { 1 } else { 2 };
        KrausChannel { ops, arity }
    }

    /// The identity channel (1 qubit).
    pub fn identity() -> Self {
        KrausChannel {
            ops: vec![Matrix::identity(2)],
            arity: 1,
        }
    }

    /// Single-qubit depolarizing channel:
    /// `ρ → (1−p) ρ + (p/3)(XρX + YρY + ZρZ)`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let w0 = (1.0 - p).sqrt();
        let w = (p / 3.0).sqrt();
        Self::new(vec![
            Matrix::identity(2).scale(c64(w0, 0.0)),
            Pauli::X.matrix().scale(c64(w, 0.0)),
            Pauli::Y.matrix().scale(c64(w, 0.0)),
            Pauli::Z.matrix().scale(c64(w, 0.0)),
        ])
    }

    /// Two-qubit depolarizing channel:
    /// `ρ → (1−p) ρ + (p/15) Σ_{P≠I⊗I} P ρ P`.
    pub fn depolarizing_two(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let mut ops = Vec::with_capacity(16);
        let w0 = (1.0 - p).sqrt();
        let w = (p / 15.0).sqrt();
        for (i, a) in Pauli::ALL.iter().enumerate() {
            for (j, b) in Pauli::ALL.iter().enumerate() {
                let weight = if i == 0 && j == 0 { w0 } else { w };
                if weight == 0.0 {
                    continue;
                }
                ops.push(b.matrix().kron(&a.matrix()).scale(c64(weight, 0.0)));
            }
        }
        Self::new(ops)
    }

    /// Amplitude damping with decay probability `gamma` (energy relaxation
    /// toward `|0>`).
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        Self::new(vec![
            Matrix::two_by_two(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                c64((1.0 - gamma).sqrt(), 0.0),
            ),
            Matrix::two_by_two(
                Complex::ZERO,
                c64(gamma.sqrt(), 0.0),
                Complex::ZERO,
                Complex::ZERO,
            ),
        ])
    }

    /// Phase damping with dephasing probability `lambda`.
    pub fn phase_damping(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        Self::new(vec![
            Matrix::two_by_two(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                c64((1.0 - lambda).sqrt(), 0.0),
            ),
            Matrix::two_by_two(
                Complex::ZERO,
                Complex::ZERO,
                Complex::ZERO,
                c64(lambda.sqrt(), 0.0),
            ),
        ])
    }

    /// Thermal relaxation over a duration `time` for a qubit with
    /// relaxation time `t1` and dephasing time `t2` (all in the same unit,
    /// `t2 ≤ 2·t1`): amplitude damping with `γ = 1 − e^{−t/T1}` composed
    /// with pure dephasing `λ = 1 − e^{−t(1/T2 − 1/(2 T1))}`.
    pub fn thermal_relaxation(t1: f64, t2: f64, time: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0, "T1/T2 must be positive");
        assert!(t2 <= 2.0 * t1 + 1e-12, "T2 must be <= 2*T1");
        let gamma = 1.0 - (-time / t1).exp();
        let pure_dephasing_rate = (1.0 / t2 - 1.0 / (2.0 * t1)).max(0.0);
        let lambda = 1.0 - (-time * pure_dephasing_rate).exp();
        // Compose the two channels: K = {A_i B_j}.
        let ad = Self::amplitude_damping(gamma);
        let pd = Self::phase_damping(lambda);
        let mut ops = Vec::new();
        for a in &ad.ops {
            for b in &pd.ops {
                let prod = a.matmul(b);
                if prod.frobenius_norm() > 1e-12 {
                    ops.push(prod);
                }
            }
        }
        Self::new(ops)
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[Matrix] {
        &self.ops
    }

    /// Number of qubits the channel acts on.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// True when the channel is (numerically) the identity.
    pub fn is_identity(&self) -> bool {
        self.ops.len() == 1 && {
            let dim = self.ops[0].rows();
            self.ops[0].approx_eq(&Matrix::identity(dim), 1e-12)
        }
    }
}

/// Classical readout error: independent per-qubit bit flips at measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutError {
    /// P(read 1 | true 0).
    pub p01: f64,
    /// P(read 0 | true 1).
    pub p10: f64,
}

impl ReadoutError {
    /// Symmetric readout error.
    pub fn symmetric(p: f64) -> Self {
        ReadoutError { p01: p, p10: p }
    }

    /// No error.
    pub fn none() -> Self {
        ReadoutError { p01: 0.0, p10: 0.0 }
    }

    /// Applies the error exactly to a probability vector over `num_bits`
    /// bits (tensor of per-bit 2×2 confusion matrices).
    pub fn apply_to_probs(&self, probs: &[f64], num_bits: usize) -> Vec<f64> {
        assert_eq!(probs.len(), 1 << num_bits);
        let mut cur = probs.to_vec();
        if self.p01 == 0.0 && self.p10 == 0.0 {
            return cur;
        }
        // Confusion matrix rows: measured, cols: true.
        let m = [[1.0 - self.p01, self.p10], [self.p01, 1.0 - self.p10]];
        for bit in 0..num_bits {
            let b = 1usize << bit;
            let mut next = cur.clone();
            for i0 in 0..cur.len() {
                if i0 & b != 0 {
                    continue;
                }
                let i1 = i0 | b;
                let p0 = cur[i0];
                let p1 = cur[i1];
                next[i0] = m[0][0] * p0 + m[0][1] * p1;
                next[i1] = m[1][0] * p0 + m[1][1] * p1;
            }
            cur = next;
        }
        cur
    }
}

/// A device noise model: gate-attached channels plus readout error.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Channel applied to the operand qubit after every 1-qubit gate.
    pub one_qubit: Option<KrausChannel>,
    /// Channel applied to the operand pair after every 2-qubit gate.
    pub two_qubit: Option<KrausChannel>,
    /// Extra thermal relaxation per gate: `(t1, t2, gate_time_1q, gate_time_2q)`.
    pub thermal: Option<ThermalSpec>,
    /// Readout error applied at measurement.
    pub readout: ReadoutError,
}

/// T1/T2 relaxation parameters with per-gate durations (all μs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSpec {
    /// Relaxation time T1.
    pub t1: f64,
    /// Dephasing time T2 (≤ 2·T1).
    pub t2: f64,
    /// Duration of a 1-qubit gate.
    pub time_1q: f64,
    /// Duration of a 2-qubit gate.
    pub time_2q: f64,
}

impl NoiseModel {
    /// The trivial (noiseless) model.
    pub fn noiseless() -> Self {
        NoiseModel {
            one_qubit: None,
            two_qubit: None,
            thermal: None,
            readout: ReadoutError::none(),
        }
    }

    /// Depolarizing-only model with the given 1q/2q error rates and
    /// readout error.
    pub fn depolarizing(p1: f64, p2: f64, readout: f64) -> Self {
        NoiseModel {
            one_qubit: (p1 > 0.0).then(|| KrausChannel::depolarizing(p1)),
            two_qubit: (p2 > 0.0).then(|| KrausChannel::depolarizing_two(p2)),
            thermal: None,
            readout: ReadoutError::symmetric(readout),
        }
    }

    /// True when no error source is active.
    pub fn is_noiseless(&self) -> bool {
        self.one_qubit.is_none()
            && self.two_qubit.is_none()
            && self.thermal.is_none()
            && self.readout == ReadoutError::none()
    }

    /// Stable fingerprint of the model's *noise character* — every value
    /// that shapes the output distribution: Kraus operators (element bit
    /// patterns), thermal parameters, and readout error rates.
    ///
    /// The warm-start cache folds this into every histogram key (via
    /// `Backend::cache_fingerprint`), so measurements taken under one noise
    /// model are never pooled with measurements taken under another — in
    /// particular, ideal-backend histograms can never be served to a noisy
    /// run. Models that compare equal fingerprint equal; distinct noise
    /// strengths fingerprint apart (up to 64-bit hashing).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let mix_channel = |slot: &Option<KrausChannel>, mix: &mut dyn FnMut(u64)| match slot {
            None => mix(0),
            Some(ch) => {
                mix(1 + ch.arity() as u64);
                mix(ch.operators().len() as u64);
                for op in ch.operators() {
                    for z in op.as_slice() {
                        mix(z.re.to_bits());
                        mix(z.im.to_bits());
                    }
                }
            }
        };
        mix_channel(&self.one_qubit, &mut mix);
        mix_channel(&self.two_qubit, &mut mix);
        match &self.thermal {
            None => mix(0),
            Some(t) => {
                mix(1);
                mix(t.t1.to_bits());
                mix(t.t2.to_bits());
                mix(t.time_1q.to_bits());
                mix(t.time_2q.to_bits());
            }
        }
        mix(self.readout.p01.to_bits());
        mix(self.readout.p10.to_bits());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_noise_characters() {
        let ideal = NoiseModel::noiseless();
        let weak = NoiseModel::depolarizing(0.01, 0.02, 0.01);
        let strong = NoiseModel::depolarizing(0.05, 0.02, 0.01);
        let readout_only = NoiseModel::depolarizing(0.0, 0.0, 0.01);
        let fingerprints = [
            ideal.fingerprint(),
            weak.fingerprint(),
            strong.fingerprint(),
            readout_only.fingerprint(),
        ];
        for (i, a) in fingerprints.iter().enumerate() {
            for (j, b) in fingerprints.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "models {i} and {j} must fingerprint apart");
                }
            }
        }
        // Deterministic and equal for equal models.
        assert_eq!(
            NoiseModel::depolarizing(0.01, 0.02, 0.01).fingerprint(),
            weak.fingerprint()
        );
    }

    #[test]
    fn constructors_satisfy_completeness() {
        // `new` validates ΣK†K = I; these must not panic.
        let _ = KrausChannel::depolarizing(0.1);
        let _ = KrausChannel::depolarizing_two(0.05);
        let _ = KrausChannel::amplitude_damping(0.3);
        let _ = KrausChannel::phase_damping(0.2);
        let _ = KrausChannel::thermal_relaxation(100.0, 80.0, 0.5);
        let _ = KrausChannel::identity();
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn invalid_kraus_set_rejected() {
        KrausChannel::new(vec![Matrix::identity(2).scale(c64(0.5, 0.0))]);
    }

    #[test]
    fn zero_strength_channels_are_identity_like() {
        assert!(KrausChannel::identity().is_identity());
        let d = KrausChannel::depolarizing(0.0);
        // Other Kraus ops have zero weight but exist; effective action is
        // identity — check on a test matrix via completeness of op 0.
        assert!(d.operators()[0].approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn thermal_relaxation_zero_time_is_identity() {
        let ch = KrausChannel::thermal_relaxation(100.0, 100.0, 0.0);
        // γ = λ = 0: only one surviving operator, the identity.
        assert_eq!(ch.operators().len(), 1);
        assert!(ch.operators()[0].approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    #[should_panic(expected = "T2 must be <= 2*T1")]
    fn thermal_relaxation_rejects_unphysical_t2() {
        KrausChannel::thermal_relaxation(50.0, 150.0, 1.0);
    }

    #[test]
    fn readout_error_mixes_probabilities() {
        let r = ReadoutError::symmetric(0.1);
        let out = r.apply_to_probs(&[1.0, 0.0], 1);
        assert!((out[0] - 0.9).abs() < 1e-12);
        assert!((out[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn readout_error_is_stochastic() {
        let r = ReadoutError {
            p01: 0.03,
            p10: 0.08,
        };
        let probs = [0.1, 0.2, 0.3, 0.4];
        let out = r.apply_to_probs(&probs, 2);
        let total: f64 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "readout must preserve mass");
        assert!(out.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn readout_none_is_identity() {
        let probs = [0.25, 0.75];
        let out = ReadoutError::none().apply_to_probs(&probs, 1);
        assert_eq!(out, probs.to_vec());
    }

    #[test]
    fn asymmetric_readout_biases_toward_zero() {
        // p10 > p01 (relaxation-dominated readout): measuring |1> leaks to 0.
        let r = ReadoutError {
            p01: 0.01,
            p10: 0.1,
        };
        let out = r.apply_to_probs(&[0.0, 1.0], 1);
        assert!((out[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn noise_model_flags() {
        assert!(NoiseModel::noiseless().is_noiseless());
        assert!(!NoiseModel::depolarizing(0.001, 0.01, 0.02).is_noiseless());
    }

    #[test]
    fn depolarizing_two_has_sixteen_ops_when_p_positive() {
        let ch = KrausChannel::depolarizing_two(0.5);
        assert_eq!(ch.operators().len(), 16);
        assert_eq!(ch.arity(), 2);
    }
}
