//! Basis-change and state-preparation sub-circuits for the cutting
//! protocol.
//!
//! * Upstream fragments must be *measured* in the X, Y or Z basis on their
//!   cut qubits: we append the rotation that maps the chosen basis onto the
//!   computational basis, then measure Z as usual.
//! * Downstream fragments must be *initialised* into Pauli eigenstates (or
//!   SIC states): we prepend the preparation circuit acting on `|0>`.

use qcut_circuit::circuit::Circuit;
use qcut_circuit::gate::Gate;
use qcut_math::{Pauli, PrepState, SicState};

/// Appends to `circuit` the rotation taking `basis` onto the computational
/// basis on `qubit`, so a subsequent Z measurement realises a `basis`
/// measurement. Outcome bit 0 corresponds to the `+1` eigenstate.
///
/// * `Z` (and `I`): nothing;
/// * `X`: `H`;
/// * `Y`: `S† · H` (i.e. apply S† then H).
pub fn append_basis_rotation(circuit: &mut Circuit, basis: Pauli, qubit: usize) {
    match basis {
        Pauli::I | Pauli::Z => {}
        Pauli::X => {
            circuit.h(qubit);
        }
        Pauli::Y => {
            circuit.sdg(qubit).h(qubit);
        }
    }
}

/// The preparation circuit taking `|0>` to the given Pauli eigenstate.
pub fn prep_circuit(state: PrepState, num_qubits: usize, qubit: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    match state {
        PrepState::Zp => {}
        PrepState::Zm => {
            c.x(qubit);
        }
        PrepState::Xp => {
            c.h(qubit);
        }
        PrepState::Xm => {
            c.x(qubit).h(qubit);
        }
        PrepState::Yp => {
            c.h(qubit).s(qubit);
        }
        PrepState::Ym => {
            c.x(qubit).h(qubit).s(qubit);
        }
    }
    c
}

/// The preparation circuit taking `|0>` to the given SIC state (a single
/// `U3` with the state's Bloch angles).
pub fn sic_prep_circuit(state: SicState, num_qubits: usize, qubit: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    let [x, y, z] = state.bloch();
    let theta = z.clamp(-1.0, 1.0).acos();
    let phi = y.atan2(x);
    if theta.abs() > 1e-15 {
        c.push(Gate::U3(theta, phi, 0.0), &[qubit]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;
    use qcut_math::{c64, Complex};

    const TOL: f64 = 1e-10;

    /// Prepare an eigenstate, rotate into its basis, and check the Z
    /// measurement outcome is deterministic with the right bit.
    #[test]
    fn measurement_rotation_maps_eigenstates_to_bits() {
        for state in PrepState::ALL {
            let mut c = prep_circuit(state, 1, 0);
            append_basis_rotation(&mut c, state.pauli(), 0);
            let sv = StateVector::from_circuit(&c);
            let expected_bit = state.eigenindex() as u64;
            assert!(
                (sv.probability(expected_bit) - 1.0).abs() < TOL,
                "{state}: P(bit={expected_bit}) = {}",
                sv.probability(expected_bit)
            );
        }
    }

    #[test]
    fn prep_circuits_produce_the_declared_kets() {
        for state in PrepState::ALL {
            let sv = StateVector::from_circuit(&prep_circuit(state, 1, 0));
            let want = state.ket();
            // Allow a global phase: compare |<want|got>|².
            let got = sv.amplitudes();
            let ip = want[0].conj() * got[0] + want[1].conj() * got[1];
            assert!(
                (ip.norm_sqr() - 1.0).abs() < TOL,
                "{state}: fidelity {}",
                ip.norm_sqr()
            );
        }
    }

    #[test]
    fn prep_on_nontarget_qubit_leaves_others_zero() {
        let sv = StateVector::from_circuit(&prep_circuit(PrepState::Xp, 3, 1));
        // Qubits 0 and 2 stay |0>; qubit 1 is |+>.
        assert!((sv.probability(0b000) - 0.5).abs() < TOL);
        assert!((sv.probability(0b010) - 0.5).abs() < TOL);
    }

    #[test]
    fn sic_preps_produce_the_sic_kets() {
        for state in SicState::ALL {
            let sv = StateVector::from_circuit(&sic_prep_circuit(state, 1, 0));
            let want = state.ket();
            let got = sv.amplitudes();
            let ip = want[0].conj() * got[0] + want[1].conj() * got[1];
            assert!(
                (ip.norm_sqr() - 1.0).abs() < TOL,
                "{state:?}: fidelity {}",
                ip.norm_sqr()
            );
        }
    }

    #[test]
    fn z_and_i_rotations_are_empty() {
        let mut c = Circuit::new(1);
        append_basis_rotation(&mut c, Pauli::Z, 0);
        append_basis_rotation(&mut c, Pauli::I, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn y_rotation_is_unitary_inverse_of_y_prep() {
        // prep(|+i>) followed by the Y-measurement rotation = |0>.
        let mut c = prep_circuit(PrepState::Yp, 1, 0);
        append_basis_rotation(&mut c, Pauli::Y, 0);
        let sv = StateVector::from_circuit(&c);
        assert!(
            sv.amplitudes()[0].approx_eq(Complex::ONE, TOL)
                || sv.amplitudes()[0].norm_sqr() > 1.0 - 1e-9
        );
        let _ = c64(0.0, 0.0);
    }
}
