//! Density-matrix simulator.
//!
//! The noisy "hardware" backends (our substitute for the paper's IBM
//! devices) evolve a density matrix so that Kraus noise channels can be
//! applied exactly. Unitary gates act by block kernels — `O(4^n)` per gate
//! instead of the naive `O(8^n)` of building and conjugating full
//! operators.

use crate::counts::{sample_counts, Counts};
use crate::noise::KrausChannel;
use qcut_circuit::circuit::{Circuit, Instruction};
use qcut_math::{c64, Complex, Matrix};
use rand::Rng;

/// A mixed `n`-qubit state ρ as a dense `2^n × 2^n` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: Matrix,
}

impl DensityMatrix {
    /// `|0…0><0…0|`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let mut rho = Matrix::zeros(dim, dim);
        rho[(0, 0)] = Complex::ONE;
        DensityMatrix { num_qubits, rho }
    }

    /// Wraps an existing density matrix (must be square of dim `2^n`).
    pub fn from_matrix(num_qubits: usize, rho: Matrix) -> Self {
        assert_eq!(rho.rows(), 1 << num_qubits, "dimension mismatch");
        assert!(rho.is_square(), "density matrix must be square");
        DensityMatrix { num_qubits, rho }
    }

    /// From a pure state vector.
    pub fn from_statevector(sv: &crate::statevector::StateVector) -> Self {
        let amps = sv.amplitudes();
        let dim = amps.len();
        let mut rho = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                rho[(i, j)] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix {
            num_qubits: sv.num_qubits(),
            rho,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &Matrix {
        &self.rho
    }

    /// `tr(ρ)` — 1 for normalised states (trace is preserved by unitaries
    /// and CPTP channels; an invariant worth asserting in tests).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// Purity `tr(ρ²)` — 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.rho.trace_product(&self.rho).re
    }

    /// Applies a unitary circuit (no noise).
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.num_qubits, "width mismatch");
        for inst in circuit.instructions() {
            self.apply_instruction(inst);
        }
    }

    /// Applies one unitary instruction.
    pub fn apply_instruction(&mut self, inst: &Instruction) {
        let m = inst.gate.matrix();
        match inst.qubits.len() {
            1 => self.apply_one_qubit(&m, inst.qubits[0]),
            2 => self.apply_two_qubit(&m, inst.qubits[0], inst.qubits[1]),
            _ => unreachable!(),
        }
    }

    /// ρ ← U ρ U† for a 2×2 unitary on `target`.
    pub fn apply_one_qubit(&mut self, u: &Matrix, target: usize) {
        self.apply_kraus_one(std::slice::from_ref(u), target);
    }

    /// ρ ← U ρ U† for a 4×4 unitary on `(q0, q1)`.
    pub fn apply_two_qubit(&mut self, u: &Matrix, q0: usize, q1: usize) {
        self.apply_kraus_two(std::slice::from_ref(u), q0, q1);
    }

    /// Applies a single-qubit Kraus channel `ρ ← Σ_m K_m ρ K_m†` on
    /// `target`. Works block-wise on 2×2 sub-blocks of ρ.
    pub fn apply_kraus_one(&mut self, kraus: &[Matrix], target: usize) {
        assert!(target < self.num_qubits, "target out of range");
        for k in kraus {
            assert_eq!((k.rows(), k.cols()), (2, 2), "Kraus op must be 2x2");
        }
        let dim = 1usize << self.num_qubits;
        let bit = 1usize << target;

        // Row indices (i0, i1) and column indices (j0, j1) form 2×2 blocks
        // B = [ρ(i0,j0) ρ(i0,j1); ρ(i1,j0) ρ(i1,j1)]; B ← Σ K B K†.
        for i0 in 0..dim {
            if i0 & bit != 0 {
                continue;
            }
            let i1 = i0 | bit;
            for j0 in 0..dim {
                if j0 & bit != 0 {
                    continue;
                }
                let j1 = j0 | bit;
                let b = [
                    [self.rho[(i0, j0)], self.rho[(i0, j1)]],
                    [self.rho[(i1, j0)], self.rho[(i1, j1)]],
                ];
                let mut out = [[Complex::ZERO; 2]; 2];
                for k in kraus {
                    // K B K†, all 2×2.
                    let kb = [
                        [
                            k[(0, 0)] * b[0][0] + k[(0, 1)] * b[1][0],
                            k[(0, 0)] * b[0][1] + k[(0, 1)] * b[1][1],
                        ],
                        [
                            k[(1, 0)] * b[0][0] + k[(1, 1)] * b[1][0],
                            k[(1, 0)] * b[0][1] + k[(1, 1)] * b[1][1],
                        ],
                    ];
                    for r in 0..2 {
                        for c in 0..2 {
                            // (KB K†)[r][c] = Σ_s KB[r][s] conj(K[c][s])
                            out[r][c] += kb[r][0] * k[(c, 0)].conj() + kb[r][1] * k[(c, 1)].conj();
                        }
                    }
                }
                self.rho[(i0, j0)] = out[0][0];
                self.rho[(i0, j1)] = out[0][1];
                self.rho[(i1, j0)] = out[1][0];
                self.rho[(i1, j1)] = out[1][1];
            }
        }
    }

    /// Applies a two-qubit Kraus channel on `(q0, q1)` (gate-index
    /// convention: bit 0 ↔ `q0`).
    pub fn apply_kraus_two(&mut self, kraus: &[Matrix], q0: usize, q1: usize) {
        assert!(q0 < self.num_qubits && q1 < self.num_qubits && q0 != q1);
        for k in kraus {
            assert_eq!((k.rows(), k.cols()), (4, 4), "Kraus op must be 4x4");
        }
        let dim = 1usize << self.num_qubits;
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let offsets = [0usize, b0, b1, b0 | b1];

        for ibase in 0..dim {
            if ibase & (b0 | b1) != 0 {
                continue;
            }
            for jbase in 0..dim {
                if jbase & (b0 | b1) != 0 {
                    continue;
                }
                // Gather the 4×4 block.
                let mut b = [[Complex::ZERO; 4]; 4];
                for (r, &ro) in offsets.iter().enumerate() {
                    for (c, &co) in offsets.iter().enumerate() {
                        b[r][c] = self.rho[(ibase + ro, jbase + co)];
                    }
                }
                let mut out = [[Complex::ZERO; 4]; 4];
                for k in kraus {
                    let mut kb = [[Complex::ZERO; 4]; 4];
                    for r in 0..4 {
                        for c in 0..4 {
                            let mut acc = Complex::ZERO;
                            for s in 0..4 {
                                acc = acc.mul_add(k[(r, s)], b[s][c]);
                            }
                            kb[r][c] = acc;
                        }
                    }
                    for r in 0..4 {
                        for c in 0..4 {
                            let mut acc = Complex::ZERO;
                            for s in 0..4 {
                                acc = acc.mul_add(kb[r][s], k[(c, s)].conj());
                            }
                            out[r][c] += acc;
                        }
                    }
                }
                for (r, &ro) in offsets.iter().enumerate() {
                    for (c, &co) in offsets.iter().enumerate() {
                        self.rho[(ibase + ro, jbase + co)] = out[r][c];
                    }
                }
            }
        }
    }

    /// Applies a [`KrausChannel`] to the given qubits.
    pub fn apply_channel(&mut self, channel: &KrausChannel, qubits: &[usize]) {
        match (channel.arity(), qubits.len()) {
            (1, 1) => self.apply_kraus_one(channel.operators(), qubits[0]),
            (2, 2) => self.apply_kraus_two(channel.operators(), qubits[0], qubits[1]),
            (a, q) => panic!("channel arity {a} does not match {q} operand qubits"),
        }
    }

    /// Diagonal of ρ — the computational-basis outcome probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        let dim = 1usize << self.num_qubits;
        (0..dim).map(|i| self.rho[(i, i)].re.max(0.0)).collect()
    }

    /// Expectation `tr(Oρ)` of a Hermitian operator.
    pub fn expectation(&self, op: &Matrix) -> f64 {
        op.trace_product(&self.rho).re
    }

    /// Partial trace keeping `keep` (output indices little-endian in the
    /// order of `keep`).
    pub fn partial_trace(&self, keep: &[usize]) -> Matrix {
        for &q in keep {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
        let others: Vec<usize> = (0..self.num_qubits).filter(|q| !keep.contains(q)).collect();
        let dim_keep = 1usize << keep.len();
        let dim_others = 1usize << others.len();
        let mut out = Matrix::zeros(dim_keep, dim_keep);
        let build_idx = |ks: usize, os: usize| -> usize {
            let mut idx = 0usize;
            for (i, &q) in keep.iter().enumerate() {
                if ks & (1 << i) != 0 {
                    idx |= 1 << q;
                }
            }
            for (i, &q) in others.iter().enumerate() {
                if os & (1 << i) != 0 {
                    idx |= 1 << q;
                }
            }
            idx
        };
        for r in 0..dim_keep {
            for c in 0..dim_keep {
                let mut acc = Complex::ZERO;
                for o in 0..dim_others {
                    acc += self.rho[(build_idx(r, o), build_idx(c, o))];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// Samples measurement outcomes in the computational basis.
    pub fn sample<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> Counts {
        sample_counts(self.num_qubits, &self.probabilities(), shots, rng)
    }

    /// Renormalises the trace to 1 (guards against drift after long noisy
    /// evolutions).
    pub fn renormalize(&mut self) {
        let t = self.trace();
        if t > 0.0 && (t - 1.0).abs() > 1e-14 {
            self.rho = self.rho.scale(c64(1.0 / t, 0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::KrausChannel;
    use crate::statevector::StateVector;
    use qcut_circuit::circuit::Circuit;
    use qcut_circuit::random::{random_circuit, RandomCircuitConfig};

    const TOL: f64 = 1e-9;

    #[test]
    fn zero_state_is_pure_point_mass() {
        let dm = DensityMatrix::zero_state(2);
        assert!((dm.trace() - 1.0).abs() < TOL);
        assert!((dm.purity() - 1.0).abs() < TOL);
        assert_eq!(dm.probabilities()[0], 1.0);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        for seed in 0..4 {
            let c = random_circuit(3, RandomCircuitConfig::default(), seed);
            let sv = StateVector::from_circuit(&c);
            let mut dm = DensityMatrix::zero_state(3);
            dm.apply_circuit(&c);
            let want = DensityMatrix::from_statevector(&sv);
            assert!(
                dm.matrix().approx_eq(want.matrix(), 1e-8),
                "seed {seed}: density evolution diverged from statevector"
            );
        }
    }

    #[test]
    fn trace_and_purity_preserved_by_unitaries() {
        let c = random_circuit(
            3,
            RandomCircuitConfig {
                depth: 5,
                two_qubit_prob: 0.5,
            },
            9,
        );
        let mut dm = DensityMatrix::zero_state(3);
        dm.apply_circuit(&c);
        assert!((dm.trace() - 1.0).abs() < TOL);
        assert!((dm.purity() - 1.0).abs() < TOL);
    }

    #[test]
    fn depolarizing_reduces_purity_but_preserves_trace() {
        let mut dm = DensityMatrix::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        dm.apply_circuit(&c);
        let ch = KrausChannel::depolarizing(0.2);
        dm.apply_channel(&ch, &[0]);
        assert!(
            (dm.trace() - 1.0).abs() < TOL,
            "trace drifted: {}",
            dm.trace()
        );
        assert!(dm.purity() < 1.0 - 1e-6, "purity should drop");
    }

    #[test]
    fn depolarizing_at_three_quarters_is_maximally_mixing() {
        // ρ → (1−p)ρ + (p/3)ΣPρP equals the fully-depolarizing channel at
        // p = 3/4 (not p = 1, where the output is (ρ + 2·mixed)/3-ish).
        let mut dm = DensityMatrix::zero_state(1);
        let ch = KrausChannel::depolarizing(0.75);
        dm.apply_channel(&ch, &[0]);
        assert!((dm.matrix()[(0, 0)].re - 0.5).abs() < TOL);
        assert!((dm.matrix()[(1, 1)].re - 0.5).abs() < TOL);
        assert!(dm.matrix()[(0, 1)].abs() < TOL);
    }

    #[test]
    fn depolarizing_at_one_is_pauli_twirl() {
        // At p = 1 the channel is the uniform Pauli twirl: |0><0| maps to
        // diag(1/3, 2/3).
        let mut dm = DensityMatrix::zero_state(1);
        dm.apply_channel(&KrausChannel::depolarizing(1.0), &[0]);
        assert!((dm.matrix()[(0, 0)].re - 1.0 / 3.0).abs() < TOL);
        assert!((dm.matrix()[(1, 1)].re - 2.0 / 3.0).abs() < TOL);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut dm = DensityMatrix::zero_state(1);
        dm.apply_one_qubit(&qcut_circuit::gate::Gate::X.matrix(), 0); // |1>
        let ch = KrausChannel::amplitude_damping(0.3);
        dm.apply_channel(&ch, &[0]);
        // P(|1>) = 1 - gamma.
        assert!((dm.probabilities()[1] - 0.7).abs() < TOL);
        assert!((dm.trace() - 1.0).abs() < TOL);
    }

    #[test]
    fn two_qubit_kraus_matches_one_qubit_composition() {
        // (depolarize q0) ⊗ I implemented as a 2-qubit channel must equal
        // the 1-qubit channel on q0.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let mut a = DensityMatrix::zero_state(2);
        a.apply_circuit(&c);
        let mut b = a.clone();

        let one = KrausChannel::depolarizing(0.13);
        a.apply_kraus_one(one.operators(), 0);

        let id = Matrix::identity(2);
        let lifted: Vec<Matrix> = one.operators().iter().map(|k| id.kron(k)).collect();
        b.apply_kraus_two(&lifted, 0, 1);

        assert!(a.matrix().approx_eq(b.matrix(), 1e-9));
    }

    #[test]
    fn partial_trace_matches_statevector_reduction() {
        let c = random_circuit(4, RandomCircuitConfig::default(), 5);
        let sv = StateVector::from_circuit(&c);
        let dm = DensityMatrix::from_statevector(&sv);
        for keep in [vec![0], vec![2], vec![0, 3], vec![1, 2]] {
            let a = dm.partial_trace(&keep);
            let b = sv.reduced_density_matrix(&keep);
            assert!(a.approx_eq(&b, 1e-8), "keep {keep:?} mismatch");
        }
    }

    #[test]
    fn probabilities_sum_to_one_after_noise() {
        let mut dm = DensityMatrix::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        dm.apply_circuit(&c);
        dm.apply_channel(&KrausChannel::amplitude_damping(0.1), &[0]);
        dm.apply_channel(&KrausChannel::phase_damping(0.2), &[1]);
        let total: f64 = dm.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_respects_diagonal() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut dm = DensityMatrix::zero_state(1);
        dm.apply_one_qubit(&qcut_circuit::gate::Gate::H.matrix(), 0);
        let mut rng = StdRng::seed_from_u64(11);
        let counts = dm.sample(20_000, &mut rng);
        assert!((counts.probability(0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn renormalize_fixes_drift() {
        let mut dm = DensityMatrix::zero_state(1);
        dm.rho = dm.rho.scale(c64(0.98, 0.0));
        dm.renormalize();
        assert!((dm.trace() - 1.0).abs() < 1e-12);
    }
}
