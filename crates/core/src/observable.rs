//! Observable expectations through the cutting pipeline (paper Eq. 14).
//!
//! The paper's formalism targets `tr(Oρ)` for observables that factor
//! across the bipartition. Two routes are provided:
//!
//! * **Diagonal observables** (`O = Σ_b w(b) |b><b|`, e.g. the bitstring
//!   projectors `Π_b` of §III, Ising energies, Hamming weights): evaluated
//!   directly on the reconstructed distribution.
//! * **Arbitrary Pauli-string observables** `<P₁ ⊗ … ⊗ P_n>`: realised by
//!   appending the basis-change rotations to the *end* of the circuit
//!   before cutting, which diagonalises the observable without moving any
//!   cut location, then reading the signed sum off the reconstructed
//!   distribution.
//!
//! A subtlety worth noting (and tested): appending a `Y`-basis rotation on
//! an *upstream output* qubit makes the upstream state complex, which can
//! destroy a designed golden point. Using a detection policy
//! (`GoldenPolicy::detect_exact()` / `DetectOnline`) instead of
//! `KnownAPriori` handles this automatically — the detector re-examines
//! the rotated circuit.

use crate::error::PipelineError;
use crate::golden::GoldenPolicy;
use crate::pipeline::{CutExecutor, ExecutionOptions};
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_device::backend::Backend;
use qcut_math::{Pauli, PauliString};
use qcut_sim::basis_change::append_basis_rotation;
use qcut_stats::distribution::Distribution;

/// A diagonal observable: a weight per computational-basis outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalObservable {
    num_bits: usize,
    weights: Vec<f64>,
}

impl DiagonalObservable {
    /// From explicit per-outcome weights (`len == 2^num_bits`).
    pub fn from_weights(num_bits: usize, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), 1 << num_bits, "weight vector length");
        DiagonalObservable { num_bits, weights }
    }

    /// The projector `Π_b = |b><b|` (the paper's §III observable family).
    pub fn projector(num_bits: usize, bits: u64) -> Self {
        let mut weights = vec![0.0; 1 << num_bits];
        weights[bits as usize] = 1.0;
        DiagonalObservable { num_bits, weights }
    }

    /// A Z-type Pauli string (diagonal): weight `(−1)^{popcount(b & mask)}`.
    pub fn z_string(num_bits: usize, mask: u64) -> Self {
        let weights = (0..(1u64 << num_bits))
            .map(|b| {
                if (b & mask).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        DiagonalObservable { num_bits, weights }
    }

    /// Hamming-weight observable `Σ_i (1−Z_i)/2`.
    pub fn hamming_weight(num_bits: usize) -> Self {
        let weights = (0..(1u64 << num_bits))
            .map(|b| b.count_ones() as f64)
            .collect();
        DiagonalObservable { num_bits, weights }
    }

    /// Nearest-neighbour Ising energy `Σ_i J · z_i z_{i+1}` with
    /// `z = ±1` spins read from the bits.
    pub fn ising_chain(num_bits: usize, coupling: f64) -> Self {
        let spin = |b: u64, i: usize| if (b >> i) & 1 == 0 { 1.0 } else { -1.0 };
        let weights = (0..(1u64 << num_bits))
            .map(|b| {
                (0..num_bits.saturating_sub(1))
                    .map(|i| coupling * spin(b, i) * spin(b, i + 1))
                    .sum()
            })
            .collect();
        DiagonalObservable { num_bits, weights }
    }

    /// Number of bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Expectation under a distribution: `Σ_b w(b) p(b)`.
    pub fn expectation(&self, dist: &Distribution) -> f64 {
        assert_eq!(dist.num_bits(), self.num_bits, "bit width mismatch");
        self.weights
            .iter()
            .zip(dist.values())
            .map(|(w, p)| w * p)
            .sum()
    }
}

/// Appends the rotations that diagonalise `pauli` onto `circuit`, returning
/// the rotated circuit and the sign mask of the now-diagonal observable.
/// Cut locations are unaffected (rotations go after every existing gate).
pub fn diagonalize_pauli(circuit: &Circuit, pauli: &PauliString) -> (Circuit, u64) {
    assert_eq!(
        pauli.len(),
        circuit.num_qubits(),
        "observable width mismatch"
    );
    let mut rotated = circuit.clone();
    let mut mask = 0u64;
    for (q, p) in pauli.paulis().iter().enumerate() {
        if *p != Pauli::I {
            append_basis_rotation(&mut rotated, *p, q);
            mask |= 1 << q;
        }
    }
    (rotated, mask)
}

/// Measures `<P>` for an arbitrary Pauli string through the cutting
/// pipeline: rotate, cut, reconstruct, take the signed sum.
pub fn pauli_expectation<B: Backend + ?Sized>(
    executor: &CutExecutor<'_, B>,
    circuit: &Circuit,
    cut: &CutSpec,
    policy: GoldenPolicy,
    options: &ExecutionOptions,
    pauli: &PauliString,
) -> Result<f64, PipelineError> {
    let (rotated, mask) = diagonalize_pauli(circuit, pauli);
    let run = executor.run(&rotated, cut, policy, options)?;
    Ok(DiagonalObservable::z_string(circuit.num_qubits(), mask).expectation(&run.distribution))
}

/// A Hermitian observable as a real combination of Pauli strings.
#[derive(Debug, Clone)]
pub struct PauliSumObservable {
    terms: Vec<(f64, PauliString)>,
}

impl PauliSumObservable {
    /// Builds from `(coefficient, string)` terms.
    pub fn new(terms: Vec<(f64, PauliString)>) -> Self {
        assert!(!terms.is_empty(), "observable needs at least one term");
        let n = terms[0].1.len();
        assert!(
            terms.iter().all(|(_, s)| s.len() == n),
            "all terms must act on the same register"
        );
        PauliSumObservable { terms }
    }

    /// The terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Measures the expectation by running the pipeline once per
    /// non-identity term (identity terms contribute their coefficient
    /// directly).
    pub fn measure<B: Backend + ?Sized>(
        &self,
        executor: &CutExecutor<'_, B>,
        circuit: &Circuit,
        cut: &CutSpec,
        policy: &GoldenPolicy,
        options: &ExecutionOptions,
    ) -> Result<f64, PipelineError> {
        let mut total = 0.0;
        for (coeff, string) in &self.terms {
            if string.weight() == 0 {
                total += coeff;
                continue;
            }
            total +=
                coeff * pauli_expectation(executor, circuit, cut, policy.clone(), options, string)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_device::ideal::IdealBackend;
    use qcut_sim::statevector::StateVector;

    fn exact_expectation(circuit: &Circuit, pauli: &PauliString) -> f64 {
        StateVector::from_circuit(circuit).expectation_pauli(pauli)
    }

    #[test]
    fn projector_expectation_is_probability() {
        let d = Distribution::from_values(2, vec![0.1, 0.2, 0.3, 0.4]);
        let proj = DiagonalObservable::projector(2, 0b10);
        assert!((proj.expectation(&d) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn z_string_signs() {
        let o = DiagonalObservable::z_string(2, 0b01);
        let d = Distribution::from_values(2, vec![0.5, 0.5, 0.0, 0.0]);
        // <Z_0> = p(even bit0) - p(odd bit0) = 0.5 - 0.5 = 0.
        assert!(o.expectation(&d).abs() < 1e-12);
        let point = Distribution::point_mass(2, 0b01);
        assert_eq!(o.expectation(&point), -1.0);
    }

    #[test]
    fn hamming_and_ising_weights() {
        let h = DiagonalObservable::hamming_weight(3);
        let d = Distribution::point_mass(3, 0b101);
        assert_eq!(h.expectation(&d), 2.0);
        let ising = DiagonalObservable::ising_chain(3, 1.0);
        // spins for 0b101: z0=-1, z1=+1, z2=-1: energy = (-1)(1) + (1)(-1) = -2.
        assert_eq!(ising.expectation(&d), -2.0);
    }

    #[test]
    fn diagonalize_appends_without_moving_cuts() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let p = PauliString::parse("XZIIY").unwrap();
        let (rotated, mask) = diagonalize_pauli(&circuit, &p);
        assert!(rotated.len() > circuit.len());
        // X on qubit 4, Z on qubit 3, Y on qubit 0 => mask bits {4, 0}... Z
        // needs no rotation but *is* part of the sign mask.
        assert_eq!(mask, (1 << 4) | (1 << 3) | (1 << 0));
        // Cut still validates on the rotated circuit.
        cut.validate(&rotated).expect("cut must survive rotation");
    }

    #[test]
    fn pauli_expectation_matches_statevector() {
        let (circuit, cut) = GoldenAnsatz::new(5, 11).build();
        let backend = IdealBackend::new(5);
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: 40_000,
            ..Default::default()
        };
        for label in ["ZIIII", "IIZZI", "XIIII", "IIIZX"] {
            let p = PauliString::parse(label).unwrap();
            let want = exact_expectation(&circuit, &p);
            let got = pauli_expectation(
                &executor,
                &circuit,
                &cut,
                GoldenPolicy::Disabled,
                &options,
                &p,
            )
            .unwrap();
            assert!(
                (got - want).abs() < 0.05,
                "<{label}>: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn golden_detection_survives_observable_rotations() {
        // A Y-observable on a *downstream* qubit keeps the upstream golden;
        // exact detection still neglects Y at the cut.
        let (circuit, cut) = GoldenAnsatz::new(5, 13).build();
        let mut p = PauliString::identity(5);
        p.set(4, Pauli::Y); // downstream output
        let backend = IdealBackend::new(7);
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: 30_000,
            ..Default::default()
        };
        let want = exact_expectation(&circuit, &p);
        let got = pauli_expectation(
            &executor,
            &circuit,
            &cut,
            GoldenPolicy::detect_exact(),
            &options,
            &p,
        )
        .unwrap();
        assert!((got - want).abs() < 0.05, "got {got}, want {want}");
    }

    #[test]
    fn y_observable_on_upstream_output_breaks_known_a_priori_golden() {
        // The documented subtlety: a Y rotation on an upstream output makes
        // the upstream complex. Exact detection correctly *refuses* to
        // neglect Y in that case (on generic seeds), while the rotated
        // expectation still reconstructs correctly without neglect.
        use crate::basis::BasisPlan;
        use crate::fragment::Fragmenter;
        use crate::reconstruction::exact_upstream_tensor;

        let mut found_breaking_seed = false;
        for seed in 0..10 {
            let (circuit, cut) = GoldenAnsatz::new(5, seed).build();
            let mut p = PauliString::identity(5);
            p.set(0, Pauli::Y); // upstream output qubit
            let (rotated, _) = diagonalize_pauli(&circuit, &p);
            let frags = Fragmenter::fragment(&rotated, &cut).unwrap();
            let up = exact_upstream_tensor(&frags.upstream, &BasisPlan::standard(1));
            if up.max_abs(&[Pauli::Y]) > 1e-6 {
                found_breaking_seed = true;
                break;
            }
        }
        assert!(
            found_breaking_seed,
            "expected some seed where the Y rotation destroys the golden point"
        );
    }

    #[test]
    fn pauli_sum_observable_measures_linearly() {
        let (circuit, cut) = GoldenAnsatz::new(5, 17).build();
        let obs = PauliSumObservable::new(vec![
            (0.5, PauliString::identity(5)),
            (1.0, PauliString::parse("IIIZI").unwrap()),
            (-2.0, PauliString::parse("ZIIII").unwrap()),
        ]);
        let backend = IdealBackend::new(9);
        let executor = CutExecutor::new(&backend);
        let options = ExecutionOptions {
            shots_per_setting: 40_000,
            ..Default::default()
        };
        let got = obs
            .measure(&executor, &circuit, &cut, &GoldenPolicy::Disabled, &options)
            .unwrap();
        let sv = StateVector::from_circuit(&circuit);
        let want = 0.5 + sv.expectation_pauli(&PauliString::parse("IIIZI").unwrap())
            - 2.0 * sv.expectation_pauli(&PauliString::parse("ZIIII").unwrap());
        assert!((got - want).abs() < 0.08, "got {got}, want {want}");
    }

    #[test]
    #[should_panic(expected = "same register")]
    fn mixed_width_terms_rejected() {
        PauliSumObservable::new(vec![
            (1.0, PauliString::identity(3)),
            (1.0, PauliString::identity(4)),
        ]);
    }
}
