//! Retry, timeout, and failure-handling policies for graph execution.
//!
//! Real device fleets fail transiently — throttled submissions, dropped
//! jobs, mid-queue recalibrations — and the engine's answer is a
//! [`RetryPolicy`] honored inside [`crate::jobgraph::JobGraph::execute_with`]:
//! only the failed nodes of a batch are re-submitted (successful siblings
//! are salvaged, and any counts already seeded into a node still offset
//! its retry, so no shot is ever re-bought), and the backoff between
//! attempts is pure *accounting* — a [`Duration`] accumulated into
//! [`crate::jobgraph::GraphStats::backoff_wait`], never slept — so tests
//! replay deterministically without a wall clock.
//!
//! What happens when retries are exhausted is the pipeline's decision,
//! captured by [`FailurePolicy`]: fail the run with a typed error that
//! names the failed and salvaged nodes, or degrade — drop the affected
//! basis settings, renormalize the reconstruction, and return a report
//! with the damage itemised.

use std::time::Duration;

/// How long to wait before a retry. All delays are deterministic
/// accounting (summed into `GraphStats::backoff_wait`), never slept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backoff {
    /// Retry immediately.
    #[default]
    None,
    /// The same delay before every retry.
    Fixed(Duration),
    /// `base · factor^(n−1)` before the `n`-th retry, capped at `cap`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Multiplier per further retry.
        factor: u32,
        /// Upper bound on any single delay.
        cap: Duration,
    },
}

impl Backoff {
    /// The delay before the `n`-th retry (`n ≥ 1`; `n = 0` returns zero).
    pub fn delay(&self, n: u32) -> Duration {
        if n == 0 {
            return Duration::ZERO;
        }
        match *self {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, factor, cap } => {
                let scale = factor.saturating_pow(n.saturating_sub(1));
                base.saturating_mul(scale).min(cap)
            }
        }
    }
}

/// Retry discipline for one graph execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total delivery attempts per node (1 = no retries; 0 is treated
    /// as 1).
    pub max_attempts: u32,
    /// Delay schedule between attempts (accounting only).
    pub backoff: Backoff,
    /// Deadline on a single job's *simulated* device time (from the
    /// backend's timing model): a job exceeding it counts as a
    /// [`qcut_device::backend::BackendError::Timeout`] — its counts are
    /// discarded, its device time is accrued as waste, and it is retried
    /// like any other transient fault. `None` disables the deadline.
    pub per_job_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    /// One attempt, no backoff, no deadline — exactly the pre-retry
    /// engine behaviour, so the fault-free path stays bit-identical.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::None,
            per_job_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and immediate retries.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..Self::default()
        }
    }
}

/// What the pipeline does when a node fails permanently (transient
/// retries exhausted, or a deterministic error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Return a typed error naming the failed nodes and the salvage
    /// state (which nodes succeeded). The default.
    #[default]
    Fail,
    /// Salvage the run: drop the basis settings served by failed nodes,
    /// renormalize the reconstruction over the surviving plan, widen the
    /// reported variance, and return `RunReport { degraded: true }` with
    /// per-node failure records instead of an error.
    Degrade,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_the_pre_retry_engine() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff, Backoff::None);
        assert_eq!(p.per_job_timeout, None);
        assert_eq!(FailurePolicy::default(), FailurePolicy::Fail);
    }

    #[test]
    fn exponential_backoff_grows_and_caps() {
        let b = Backoff::Exponential {
            base: Duration::from_millis(100),
            factor: 2,
            cap: Duration::from_millis(350),
        };
        assert_eq!(b.delay(0), Duration::ZERO);
        assert_eq!(b.delay(1), Duration::from_millis(100));
        assert_eq!(b.delay(2), Duration::from_millis(200));
        assert_eq!(b.delay(3), Duration::from_millis(350)); // capped from 400
        assert_eq!(b.delay(30), Duration::from_millis(350));
    }

    #[test]
    fn fixed_and_none_backoff() {
        assert_eq!(Backoff::None.delay(5), Duration::ZERO);
        let f = Backoff::Fixed(Duration::from_secs(1));
        assert_eq!(f.delay(1), Duration::from_secs(1));
        assert_eq!(f.delay(9), Duration::from_secs(1));
    }

    #[test]
    fn huge_exponents_saturate_instead_of_overflowing() {
        let b = Backoff::Exponential {
            base: Duration::from_secs(1),
            factor: 10,
            cap: Duration::from_secs(60),
        };
        assert_eq!(b.delay(u32::MAX), Duration::from_secs(60));
    }
}
