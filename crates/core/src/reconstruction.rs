//! Tensor reconstruction: combining fragment data into the uncut circuit's
//! bitstring distribution (paper Eq. 13/14).
//!
//! For every reconstruction Pauli string `M ∈ B^K` (with neglected bases
//! removed) two coefficient vectors are assembled:
//!
//! * upstream `A[M][b1] = Σ_r (Π_k r_k) · P(b1, r | setting(M))` — the
//!   eigenvalue-weighted joint statistics of the fragment outputs `b1` and
//!   the cut-qubit outcomes `r`;
//! * downstream `D[M][b2] = Σ_s (Π_k w_k) · P(b2 | prep(M, s))` — the
//!   signed sum over the preparation pair of each cut.
//!
//! The distribution is then the contraction
//! `p(b1 ⊕ b2) = 2^{-K} Σ_M A[M][b1] · D[M][b2]`, parallelised over `b1`.
//! Exact (infinite-shot) tensors computed from the state-vector simulator
//! are provided both for unit-testing the identity and for the exact
//! golden-point detector.

use crate::basis::{encode_meas, encode_paulis, encode_prep, BasisPlan};
use crate::execution::FragmentData;
use crate::fragment::{Fragment, FragmentRole, Fragments};
use crate::tomography::{build_downstream_circuit, build_upstream_circuit};
use qcut_math::Pauli;
use qcut_sim::statevector::StateVector;
use qcut_stats::distribution::Distribution;
use rayon::prelude::*;
use std::collections::HashMap;

/// Coefficient vectors per reconstruction Pauli string.
#[derive(Debug, Clone)]
pub struct CoefficientTensor {
    /// `encode_paulis(M)` → vector over output bitstrings.
    entries: HashMap<u64, Vec<f64>>,
    num_outputs: usize,
}

impl CoefficientTensor {
    /// Builds a tensor from raw entries (used by the SIC assembly path).
    pub fn from_entries(entries: HashMap<u64, Vec<f64>>, num_outputs: usize) -> Self {
        CoefficientTensor {
            entries,
            num_outputs,
        }
    }

    /// The coefficient vector for a Pauli string.
    pub fn get(&self, m: &[Pauli]) -> Option<&[f64]> {
        self.entries.get(&encode_paulis(m)).map(|v| v.as_slice())
    }

    /// Number of output bits (`b` index width).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of stored Pauli strings.
    pub fn num_strings(&self) -> usize {
        self.entries.len()
    }

    /// Largest absolute coefficient for a given string (used by golden
    /// detection: a negligible basis has all-zero vectors).
    pub fn max_abs(&self, m: &[Pauli]) -> f64 {
        self.get(m)
            .map(|v| v.iter().fold(0.0f64, |a, &x| a.max(x.abs())))
            .unwrap_or(0.0)
    }
}

/// Joint outcome table of one upstream setting: `(b1, r_bits) → probability`.
type Joint = HashMap<(u64, u64), f64>;

/// Builds the upstream tensor from measured counts.
pub fn upstream_tensor(
    fragment: &Fragment,
    plan: &BasisPlan,
    data: &FragmentData,
) -> CoefficientTensor {
    assert_eq!(fragment.role, FragmentRole::Upstream);
    let joints: HashMap<u64, Joint> = plan
        .all_meas_settings()
        .iter()
        .map(|setting| {
            let key = encode_meas(setting);
            let counts = data
                .upstream
                .get(&key)
                .unwrap_or_else(|| panic!("missing upstream counts for setting {setting:?}"));
            let total = counts.total().max(1) as f64;
            let joint: Joint = counts
                .split(&fragment.output_locals, &fragment.cut_ports)
                .into_iter()
                .map(|(k, n)| (k, n as f64 / total))
                .collect();
            (key, joint)
        })
        .collect();
    assemble_upstream(fragment, plan, &joints)
}

/// Builds the upstream tensor exactly via state-vector simulation.
pub fn exact_upstream_tensor(fragment: &Fragment, plan: &BasisPlan) -> CoefficientTensor {
    assert_eq!(fragment.role, FragmentRole::Upstream);
    let joints: HashMap<u64, Joint> = plan
        .all_meas_settings()
        .iter()
        .map(|setting| {
            let circuit = build_upstream_circuit(fragment, setting);
            let probs = StateVector::from_circuit(&circuit).probabilities();
            let mut joint = Joint::new();
            for (idx, &p) in probs.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                let b1 = extract_bits(idx as u64, &fragment.output_locals);
                let r = extract_bits(idx as u64, &fragment.cut_ports);
                *joint.entry((b1, r)).or_insert(0.0) += p;
            }
            (encode_meas(setting), joint)
        })
        .collect();
    assemble_upstream(fragment, plan, &joints)
}

fn assemble_upstream(
    fragment: &Fragment,
    plan: &BasisPlan,
    joints: &HashMap<u64, Joint>,
) -> CoefficientTensor {
    let n1 = fragment.num_outputs();
    let dim = 1usize << n1;
    let mut entries = HashMap::new();
    for m in plan.all_recon_strings() {
        let setting = plan.setting_for(&m);
        let joint = &joints[&encode_meas(&setting)];
        let mut vec = vec![0.0f64; dim];
        for (&(b1, rbits), &p) in joint {
            let mut sign = 1.0;
            for (k, &pauli) in m.iter().enumerate() {
                if pauli != Pauli::I && (rbits >> k) & 1 == 1 {
                    sign = -sign;
                }
            }
            vec[b1 as usize] += sign * p;
        }
        entries.insert(encode_paulis(&m), vec);
    }
    CoefficientTensor {
        entries,
        num_outputs: n1,
    }
}

/// Builds the downstream tensor from measured counts.
pub fn downstream_tensor(
    fragment: &Fragment,
    plan: &BasisPlan,
    data: &FragmentData,
) -> CoefficientTensor {
    assert_eq!(fragment.role, FragmentRole::Downstream);
    let dists: HashMap<u64, Vec<f64>> = plan
        .all_prep_settings()
        .iter()
        .map(|prep| {
            let key = encode_prep(prep);
            let counts = data
                .downstream
                .get(&key)
                .unwrap_or_else(|| panic!("missing downstream counts for prep {prep:?}"));
            let d = counts.marginal(&fragment.output_locals).to_distribution();
            (key, d.values().to_vec())
        })
        .collect();
    assemble_downstream(fragment, plan, &dists)
}

/// Builds the downstream tensor exactly via state-vector simulation.
pub fn exact_downstream_tensor(fragment: &Fragment, plan: &BasisPlan) -> CoefficientTensor {
    assert_eq!(fragment.role, FragmentRole::Downstream);
    let dists: HashMap<u64, Vec<f64>> = plan
        .all_prep_settings()
        .iter()
        .map(|prep| {
            let circuit = build_downstream_circuit(fragment, prep);
            let probs = StateVector::from_circuit(&circuit).probabilities();
            // Reorder full-width probabilities into output order.
            let dim = 1usize << fragment.num_outputs();
            let mut out = vec![0.0f64; dim];
            for (idx, &p) in probs.iter().enumerate() {
                let b2 = extract_bits(idx as u64, &fragment.output_locals);
                out[b2 as usize] += p;
            }
            (encode_prep(prep), out)
        })
        .collect();
    assemble_downstream(fragment, plan, &dists)
}

fn assemble_downstream(
    fragment: &Fragment,
    plan: &BasisPlan,
    dists: &HashMap<u64, Vec<f64>>,
) -> CoefficientTensor {
    let n2 = fragment.num_outputs();
    let dim = 1usize << n2;
    let num_cuts = plan.num_cuts();
    let mut entries = HashMap::new();
    for m in plan.all_recon_strings() {
        let mut vec = vec![0.0f64; dim];
        // Enumerate the 2^K signed preparation combinations for this M.
        let pairs: Vec<[(qcut_math::PrepState, f64); 2]> =
            (0..num_cuts).map(|k| plan.prep_pair(k, m[k])).collect();
        for combo in 0..(1usize << num_cuts) {
            let mut states = Vec::with_capacity(num_cuts);
            let mut weight = 1.0f64;
            for (k, pair) in pairs.iter().enumerate() {
                let (state, w) = pair[(combo >> k) & 1];
                states.push(state);
                weight *= w;
            }
            let q = &dists[&encode_prep(&states)];
            for (slot, &p) in vec.iter_mut().zip(q) {
                *slot += weight * p;
            }
        }
        entries.insert(encode_paulis(&m), vec);
    }
    CoefficientTensor {
        entries,
        num_outputs: n2,
    }
}

/// Contracts the two tensors into the reconstructed distribution over the
/// full circuit's qubits: `p(b) = 2^{-K} Σ_M A[M][b1] D[M][b2]` with `b`
/// assembled from the fragments' global output positions.
pub fn contract(
    fragments: &Fragments,
    plan: &BasisPlan,
    upstream: &CoefficientTensor,
    downstream: &CoefficientTensor,
) -> Distribution {
    let n = fragments.total_qubits;
    let n1 = fragments.upstream.num_outputs();
    let n2 = fragments.downstream.num_outputs();
    assert_eq!(upstream.num_outputs(), n1);
    assert_eq!(downstream.num_outputs(), n2);
    assert_eq!(n1 + n2, n, "fragment outputs must cover the circuit");

    // Assembly tables: local output bitstring → its global bit positions.
    let t1 = assembly_table(n1, &fragments.upstream.output_globals);
    let t2 = assembly_table(n2, &fragments.downstream.output_globals);

    let strings = plan.all_recon_strings();
    let scale = 0.5f64.powi(plan.num_cuts() as i32);
    // Pre-resolve the tensor vectors in string order.
    let a_vecs: Vec<&[f64]> = strings
        .iter()
        .map(|m| upstream.get(m).expect("upstream tensor entry"))
        .collect();
    let d_vecs: Vec<&[f64]> = strings
        .iter()
        .map(|m| downstream.get(m).expect("downstream tensor entry"))
        .collect();

    let dim2 = 1usize << n2;
    // Parallel over b1: each b1 writes a disjoint index set, collected as
    // rows and merged.
    let rows: Vec<(u64, Vec<f64>)> = (0..(1usize << n1))
        .into_par_iter()
        .map(|b1| {
            let mut row = vec![0.0f64; dim2];
            for (a, d) in a_vecs.iter().zip(&d_vecs) {
                let coeff = a[b1];
                if coeff == 0.0 {
                    continue;
                }
                for (slot, &dv) in row.iter_mut().zip(*d) {
                    *slot += coeff * dv;
                }
            }
            (t1[b1], row)
        })
        .collect();

    let mut values = vec![0.0f64; 1 << n];
    for (base, row) in rows {
        for (b2, &v) in row.iter().enumerate() {
            values[(base | t2[b2]) as usize] = v * scale;
        }
    }
    Distribution::from_values(n, values)
}

/// Full pipeline step: tensors from data, then contraction.
pub fn reconstruct(fragments: &Fragments, plan: &BasisPlan, data: &FragmentData) -> Distribution {
    let up = upstream_tensor(&fragments.upstream, plan, data);
    let down = downstream_tensor(&fragments.downstream, plan, data);
    contract(fragments, plan, &up, &down)
}

/// Infinite-shot reconstruction via exact fragment simulation. Must equal
/// the uncut circuit's distribution to numerical precision — the
/// correctness theorem of wire cutting (tested below).
pub fn exact_reconstruct(fragments: &Fragments, plan: &BasisPlan) -> Distribution {
    let up = exact_upstream_tensor(&fragments.upstream, plan);
    let down = exact_downstream_tensor(&fragments.downstream, plan);
    contract(fragments, plan, &up, &down)
}

/// Extracts the bits of `value` at `positions` (output bit `i` = input bit
/// `positions[i]`).
#[inline]
pub fn extract_bits(value: u64, positions: &[usize]) -> u64 {
    let mut out = 0u64;
    for (i, &p) in positions.iter().enumerate() {
        out |= ((value >> p) & 1) << i;
    }
    out
}

fn assembly_table(num_bits: usize, globals: &[usize]) -> Vec<u64> {
    (0..(1u64 << num_bits))
        .map(|b| {
            let mut out = 0u64;
            for (i, &g) in globals.iter().enumerate() {
                out |= ((b >> i) & 1) << g;
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};
    use qcut_circuit::circuit::Circuit;
    use qcut_circuit::cut::CutSpec;
    use qcut_stats::distance::total_variation_distance;

    fn truth(circuit: &Circuit) -> Distribution {
        let sv = StateVector::from_circuit(circuit);
        Distribution::from_values(circuit.num_qubits(), sv.probabilities())
    }

    #[test]
    fn extract_bits_reorders() {
        assert_eq!(extract_bits(0b1010, &[1, 3]), 0b11);
        assert_eq!(extract_bits(0b1010, &[0, 2]), 0b00);
        assert_eq!(extract_bits(0b1010, &[3, 1]), 0b11);
        assert_eq!(extract_bits(0b0010, &[3, 1]), 0b10);
    }

    /// The wire-cutting identity: exact reconstruction equals the uncut
    /// distribution. This is the correctness theorem (paper Eq. 13).
    #[test]
    fn exact_reconstruction_equals_uncut_distribution() {
        for seed in 0..6 {
            let (circuit, spec) = GoldenAnsatz::new(5, seed).build();
            let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
            let recon = exact_reconstruct(&frags, &BasisPlan::standard(1));
            let t = truth(&circuit);
            let d = total_variation_distance(&recon, &t);
            assert!(d < 1e-9, "seed {seed}: exact reconstruction off by {d}");
        }
    }

    /// With the golden ansatz, *neglecting Y* must not change the exact
    /// reconstruction — the designed golden cutting point (paper Def. 1).
    #[test]
    fn golden_reconstruction_matches_on_golden_ansatz() {
        for seed in 0..6 {
            let (circuit, spec) = GoldenAnsatz::new(5, seed).build();
            let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
            let golden = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
            let recon = exact_reconstruct(&frags, &golden);
            let t = truth(&circuit);
            let d = total_variation_distance(&recon, &t);
            assert!(d < 1e-9, "seed {seed}: golden reconstruction off by {d}");
        }
    }

    /// Conversely, neglecting Y on a NON-golden circuit must produce a
    /// wrong answer — the reduction is not free in general.
    #[test]
    fn neglecting_y_on_non_golden_circuit_is_wrong() {
        // Upstream: RX rotations + RZ give the cut qubit correlated X *and*
        // Y components. Downstream: the RX(0.5) rotates Y into Z so the Y
        // coefficient reaches the diagonal observable. (Both ingredients
        // are needed — without them Y silently drops out downstream and
        // neglecting it is accidentally harmless.)
        let mut c = Circuit::new(3);
        c.rx(1.1, 0).rx(0.9, 1).cx(0, 1).rz(0.8, 1);
        c.rx(0.5, 1).cx(1, 2).h(2);
        let spec = CutSpec::single(1, 2);
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let standard = exact_reconstruct(&frags, &BasisPlan::standard(1));
        let t = truth(&c);
        assert!(total_variation_distance(&standard, &t) < 1e-9);
        let golden = exact_reconstruct(&frags, &BasisPlan::with_neglected(vec![Some(Pauli::Y)]));
        let d = total_variation_distance(&golden, &t);
        assert!(d > 1e-3, "Y was not actually informative here (d = {d})");
    }

    #[test]
    fn seven_qubit_exact_reconstruction() {
        let (circuit, spec) = GoldenAnsatz::new(7, 2).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let recon = exact_reconstruct(&frags, &BasisPlan::with_neglected(vec![Some(Pauli::Y)]));
        let d = total_variation_distance(&recon, &truth(&circuit));
        assert!(d < 1e-9, "7-qubit golden reconstruction off by {d}");
    }

    #[test]
    fn multi_cut_exact_reconstruction() {
        for k in 1..=2usize {
            let (circuit, spec) = MultiCutAnsatz::new(k, 7).build();
            let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
            let recon = exact_reconstruct(&frags, &BasisPlan::standard(k));
            let d = total_variation_distance(&recon, &truth(&circuit));
            assert!(d < 1e-9, "K={k}: exact reconstruction off by {d}");
        }
    }

    #[test]
    fn multi_cut_all_golden_reconstruction() {
        // The product-structured ansatz makes every cut independently
        // golden for Y.
        let (circuit, spec) = MultiCutAnsatz::new(2, 3).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::Y), Some(Pauli::Y)]);
        let recon = exact_reconstruct(&frags, &plan);
        let d = total_variation_distance(&recon, &truth(&circuit));
        assert!(d < 1e-9, "all-golden 2-cut reconstruction off by {d}");
    }

    #[test]
    fn reconstructed_distribution_is_normalised() {
        let (circuit, spec) = GoldenAnsatz::new(5, 4).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let recon = exact_reconstruct(&frags, &BasisPlan::standard(1));
        assert!((recon.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn upstream_tensor_identity_string_is_marginal() {
        // A[I][b1] must be the plain output marginal (all signs +1).
        let (circuit, spec) = GoldenAnsatz::new(5, 5).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let a_i = up.get(&[Pauli::I]).unwrap();
        let total: f64 = a_i.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "identity coefficients sum to 1");
        assert!(a_i.iter().all(|&v| v >= -1e-12), "marginal is nonnegative");
    }

    #[test]
    fn golden_ansatz_y_coefficients_vanish_exactly() {
        // Direct verification of Definition 1 on the designed ansatz.
        let (circuit, spec) = GoldenAnsatz::new(5, 6).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let up = exact_upstream_tensor(&frags.upstream, &BasisPlan::standard(1));
        assert!(
            up.max_abs(&[Pauli::Y]) < 1e-10,
            "Y coefficient = {}",
            up.max_abs(&[Pauli::Y])
        );
        // X and Z generally carry information.
        assert!(up.max_abs(&[Pauli::Z]) > 1e-4 || up.max_abs(&[Pauli::X]) > 1e-4);
    }

    #[test]
    fn empirical_reconstruction_converges_to_truth() {
        use crate::execution::gather;
        use crate::tomography::ExperimentPlan;
        use qcut_device::ideal::IdealBackend;

        let (circuit, spec) = GoldenAnsatz::new(5, 8).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let experiment = ExperimentPlan::build(&frags, &plan);
        let backend = IdealBackend::new(42);
        let data = gather(&backend, &experiment, 40_000, true).unwrap();
        let recon = reconstruct(&frags, &plan, &data);
        let d = total_variation_distance(&recon.clip_renormalize(), &truth(&circuit));
        assert!(d < 0.03, "empirical reconstruction off by {d}");
    }

    #[test]
    fn z_neglect_round_trip() {
        // A circuit whose cut qubit is |+> before the cut: Z carries no
        // information (tr((Π⊗Z)ρ) = 0 when the cut qubit is X-polarised
        // and uncorrelated).
        let mut c = Circuit::new(2);
        c.h(0); // uncorrelated |+> on the cut wire
        c.h(1);
        c.cx(0, 1);
        let spec = CutSpec::single(0, 0);
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let up = exact_upstream_tensor(&frags.upstream, &BasisPlan::standard(1));
        assert!(up.max_abs(&[Pauli::Z]) < 1e-10, "Z should be negligible");
        assert!(
            up.max_abs(&[Pauli::Y]) < 1e-10,
            "Y should be negligible too"
        );
        // Neglect both: reconstruction still exact.
        let mut plan = BasisPlan::standard(1);
        plan.neglect(0, Pauli::Z);
        plan.neglect(0, Pauli::Y);
        let recon = exact_reconstruct(&frags, &plan);
        let d = total_variation_distance(&recon, &truth(&c));
        assert!(d < 1e-9, "double-neglect reconstruction off by {d}");
    }
}
