//! Static analysis of cutting workloads: coded lints over the circuit,
//! the cut, the predicted shot schedule, and the planned job graph.
//!
//! The paper trades a provably-bounded bias for shot savings, which makes
//! correctness rest on a web of invariants — budget exactness, dedup
//! soundness, consumer-stream uniqueness, neglect coverage — that the rest
//! of the workspace only checks *during* execution. [`analyze`] checks
//! them **before any shot is spent**: it is pure (no backend calls), runs
//! the registered [`Lint`]s layer by layer, and returns typed
//! [`Diagnostics`]. [`crate::pipeline::CutExecutor::run`] gates on it —
//! deny-level findings become [`crate::error::PipelineError::Analysis`]
//! and warnings ride along in
//! [`crate::report::RunReport::diagnostics`].
//!
//! Severity semantics:
//!
//! * [`Severity::Deny`] — the workload cannot produce a sound result
//!   (malformed IR, invalid bipartition, a budget no reachable plan fits);
//!   the pipeline refuses to execute it.
//! * [`Severity::Warn`] — the workload runs but something is off
//!   (wasteful, fragile, or predicted to fail at a later stage unless a
//!   dynamic step rescues it); surfaced in the run report.
//! * [`Severity::Allow`] — the finding is informational (structure hints,
//!   predicted sharing ratios) and suppressed by default; promote it via
//!   [`AnalysisConfig::with_override`] to see it.
//!
//! ```
//! use qcut_circuit::ansatz::GoldenAnsatz;
//! use qcut_core::analysis::analyze;
//! use qcut_core::pipeline::ExecutionOptions;
//!
//! let (circuit, cut) = GoldenAnsatz::new(5, 7).build();
//! let diags = analyze(&circuit, &cut, &ExecutionOptions::default());
//! assert!(diags.is_clean(), "example workloads lint clean: {diags}");
//! ```

use crate::allocation::{schedule_for_plan, schedule_sic, AllocationError, ShotAllocation};
use crate::basis::BasisPlan;
use crate::fragment::{Fragmenter, Fragments};
use crate::jobgraph::JobGraph;
use crate::pipeline::{ExecutionOptions, ReconstructionMethod};
use crate::planner::{add_downstream_jobs, add_sic_jobs, add_upstream_jobs};
use crate::retry::{FailurePolicy, RetryPolicy};
use qcut_cache::CacheConfig;
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cut::CutSpec;
use qcut_circuit::gate::Gate;
use qcut_device::backend::Backend;
use qcut_device::pool::MemberInfo;
use qcut_device::timing::TimingModel;
use qcut_math::Pauli;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use crate::dataflow::{cut_report, CutCandidate, CutReport};

/// How a finding is acted on (see the module docs for the semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; suppressed unless promoted by an override.
    Allow,
    /// Surfaced in [`crate::report::RunReport::diagnostics`]; the run
    /// proceeds.
    Warn,
    /// The pipeline rejects the workload
    /// ([`crate::error::PipelineError::Analysis`]).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// The registered diagnostic codes, grouped by layer: `QA0xx` circuit,
/// `QA1xx` cut, `QA2xx` schedule, `QA3xx` job graph, `QA4xx` warm-start
/// cache, `QA5xx` fault tolerance, `QA6xx` dataflow, `QA7xx` backend
/// pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// `QA001` — instruction operands out of range, wrong arity, or
    /// duplicated (malformed IR; deeper layers would panic on it).
    OutOfRangeOperand,
    /// `QA002` — a qubit with no instructions (its fragment membership is
    /// undefined, so fragmenting will reject the workload).
    IdleQubit,
    /// `QA003` — a gate that is the identity up to global phase (dead
    /// weight in every tomography variant).
    IdentityGate,
    /// `QA004` — adjacent gates on the same operands that a transpiler
    /// would fuse or cancel (adjoint pairs, same-axis rotations).
    FusibleAdjacent,
    /// `QA101` — the cut specification does not bipartition the circuit
    /// (lifted from `CutSpec::validate` / fragment extraction).
    InvalidCut,
    /// `QA102` — the `4^K` wire-cut sampling overhead exceeds
    /// [`AnalysisConfig::max_sampling_overhead`].
    SamplingOverhead,
    /// `QA103` — the upstream fragment applies only real gates: every cut
    /// is a golden-Y candidate the configured policy is not exploiting.
    GoldenStructure,
    /// `QA201` — the shot budget cannot cover even the fully-golden
    /// minimal plan, so no execution path can succeed.
    BudgetBelowFloor,
    /// `QA202` — a setting is scheduled at zero shots (its histogram
    /// would be empty and the contraction reads garbage).
    ZeroShotSetting,
    /// `QA203` — neglect-coverage report: standard vs fully-golden
    /// setting counts and whether static golden structure exists.
    NeglectCoverage,
    /// `QA204` — the budget starves the *standard* plan; only a golden
    /// shrink (detection) can let this run succeed.
    StandardPlanStarved,
    /// `QA301` — one consumer key is fed by several distinct circuits;
    /// their merged histograms would mix different distributions.
    ConsumerAliasing,
    /// `QA302` — a node whose consumers all request zero shots (it can
    /// only ever deliver an empty histogram).
    OrphanNode,
    /// `QA303` — structurally-hash-equal circuits occupying distinct
    /// nodes: missed merges with dedup off, true collisions with it on.
    MissedDedup,
    /// `QA304` — predicted prefix-sharing ratio of the planned batch.
    PrefixSharing,
    /// `QA401` — the warm-start cache is enabled but the backend does not
    /// guarantee deterministic seeding, so cached histograms will not be
    /// bit-reproducible across processes.
    CacheNondeterministicSeeding,
    /// `QA402` — the cache byte budget is below a single planned node's
    /// histogram entry: every store immediately evicts (thrash) and the
    /// cache can never serve a warm hit.
    CacheByteBudgetThrash,
    /// `QA403` — the configured cache file exists but its header is not a
    /// loadable current-format cache, so the run degrades to a cold start.
    CacheDegraded,
    /// `QA501` — the backend injects faults but retries are disabled
    /// (`max_attempts ≤ 1`): every transient fault is immediately
    /// permanent.
    FaultProneNoRetry,
    /// `QA502` — the per-job timeout is below a planned node's predicted
    /// device duration: that node can never deliver in time and every
    /// attempt is wasted device occupation.
    TimeoutBelowJobDuration,
    /// `QA503` — `FailurePolicy::Degrade` is configured where losing any
    /// one setting already makes reconstruction impossible (SIC
    /// preparations are informationally complete; a cut at two neglects
    /// has no basis left to drop), so degradation can never salvage.
    DegradeUnsalvageable,
    /// `QA601` — the chosen cut is Pareto-dominated by another wire edge
    /// under the dataflow cost model (at least as many proven-golden
    /// bases, no more settings, no more entangling crossings, better
    /// somewhere).
    DominatedCutPlacement,
    /// `QA602` — a whole-circuit dead gate the light-cone domain proves
    /// cannot affect the final distribution (prep-dead or measure-dead);
    /// single-gate effective identities stay `QA003`'s turf.
    OutOfConeDeadGate,
    /// `QA603` — the stabilizer prover certifies golden bases the
    /// configured plan is not neglecting; `GoldenPolicy::ProveStatic`
    /// would bank them with zero detection shots.
    ProvableGoldenUndetected,
    /// `QA701` — a planned node's circuit is wider than every pool
    /// member's qubit capacity: no placement can seat it and it fails
    /// before a single shot is submitted.
    PoolCapacityInfeasible,
    /// `QA702` — a warm-start cache is attached to a pool whose members
    /// carry distinct cache fingerprints: the reconstruction merges
    /// histograms measured under different fingerprints, and a failed-over
    /// node's histogram is stored under its *assigned* member's key even
    /// though a sibling measured it.
    PoolFingerprintMixing,
    /// `QA703` — the pool has more members than the planned graph has
    /// unique nodes, so some members necessarily sit idle every round.
    PoolIdleMember,
}

impl LintCode {
    /// Every registered code, in code order.
    pub const ALL: [LintCode; 27] = [
        LintCode::OutOfRangeOperand,
        LintCode::IdleQubit,
        LintCode::IdentityGate,
        LintCode::FusibleAdjacent,
        LintCode::InvalidCut,
        LintCode::SamplingOverhead,
        LintCode::GoldenStructure,
        LintCode::BudgetBelowFloor,
        LintCode::ZeroShotSetting,
        LintCode::NeglectCoverage,
        LintCode::StandardPlanStarved,
        LintCode::ConsumerAliasing,
        LintCode::OrphanNode,
        LintCode::MissedDedup,
        LintCode::PrefixSharing,
        LintCode::CacheNondeterministicSeeding,
        LintCode::CacheByteBudgetThrash,
        LintCode::CacheDegraded,
        LintCode::FaultProneNoRetry,
        LintCode::TimeoutBelowJobDuration,
        LintCode::DegradeUnsalvageable,
        LintCode::DominatedCutPlacement,
        LintCode::OutOfConeDeadGate,
        LintCode::ProvableGoldenUndetected,
        LintCode::PoolCapacityInfeasible,
        LintCode::PoolFingerprintMixing,
        LintCode::PoolIdleMember,
    ];

    /// The stable `QAxxx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::OutOfRangeOperand => "QA001",
            LintCode::IdleQubit => "QA002",
            LintCode::IdentityGate => "QA003",
            LintCode::FusibleAdjacent => "QA004",
            LintCode::InvalidCut => "QA101",
            LintCode::SamplingOverhead => "QA102",
            LintCode::GoldenStructure => "QA103",
            LintCode::BudgetBelowFloor => "QA201",
            LintCode::ZeroShotSetting => "QA202",
            LintCode::NeglectCoverage => "QA203",
            LintCode::StandardPlanStarved => "QA204",
            LintCode::ConsumerAliasing => "QA301",
            LintCode::OrphanNode => "QA302",
            LintCode::MissedDedup => "QA303",
            LintCode::PrefixSharing => "QA304",
            LintCode::CacheNondeterministicSeeding => "QA401",
            LintCode::CacheByteBudgetThrash => "QA402",
            LintCode::CacheDegraded => "QA403",
            LintCode::FaultProneNoRetry => "QA501",
            LintCode::TimeoutBelowJobDuration => "QA502",
            LintCode::DegradeUnsalvageable => "QA503",
            LintCode::DominatedCutPlacement => "QA601",
            LintCode::OutOfConeDeadGate => "QA602",
            LintCode::ProvableGoldenUndetected => "QA603",
            LintCode::PoolCapacityInfeasible => "QA701",
            LintCode::PoolFingerprintMixing => "QA702",
            LintCode::PoolIdleMember => "QA703",
        }
    }

    /// The severity a finding carries unless overridden in
    /// [`AnalysisConfig::overrides`].
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::OutOfRangeOperand
            | LintCode::InvalidCut
            | LintCode::BudgetBelowFloor
            | LintCode::ZeroShotSetting
            | LintCode::ConsumerAliasing
            | LintCode::PoolCapacityInfeasible => Severity::Deny,
            LintCode::IdleQubit
            | LintCode::IdentityGate
            | LintCode::SamplingOverhead
            | LintCode::StandardPlanStarved
            | LintCode::OrphanNode
            | LintCode::MissedDedup
            | LintCode::CacheNondeterministicSeeding
            | LintCode::CacheByteBudgetThrash
            | LintCode::CacheDegraded
            | LintCode::FaultProneNoRetry
            | LintCode::TimeoutBelowJobDuration
            | LintCode::DegradeUnsalvageable
            | LintCode::PoolFingerprintMixing => Severity::Warn,
            LintCode::FusibleAdjacent
            | LintCode::GoldenStructure
            | LintCode::NeglectCoverage
            | LintCode::PrefixSharing
            | LintCode::DominatedCutPlacement
            | LintCode::OutOfConeDeadGate
            | LintCode::ProvableGoldenUndetected
            | LintCode::PoolIdleMember => Severity::Allow,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of one lint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The code of the lint that fired.
    pub code: LintCode,
    /// The effective severity (after [`AnalysisConfig`] overrides).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.code, self.severity, self.message)
    }
}

/// The findings of one [`analyze`] pass (allow-level findings are already
/// filtered out; only warnings and denials remain).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// No findings at warn level or above.
    pub fn is_clean(&self) -> bool {
        self.items.is_empty()
    }

    /// True when any finding is deny-level (the pipeline refuses to run).
    pub fn has_deny(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Deny)
    }

    /// The deny-level findings.
    pub fn deny(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.items.iter().filter(|d| d.severity == Severity::Deny)
    }

    /// The warn-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.items.iter().filter(|d| d.severity == Severity::Warn)
    }

    /// All findings, in emission (layer) order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.items.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no findings.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when some finding carries `code`.
    pub fn contains(&self, code: LintCode) -> bool {
        self.items.iter().any(|d| d.code == code)
    }

    /// Consumes the findings as a vector (what the run report stores).
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.items.is_empty() {
            return f.write_str("no findings");
        }
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Configuration of the static-analysis gate, carried on
/// [`ExecutionOptions::analysis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Run [`analyze`] inside [`crate::pipeline::CutExecutor::run`]
    /// (default `true`). Off skips the gate entirely — no diagnostics are
    /// computed or reported.
    pub enabled: bool,
    /// [`LintCode::SamplingOverhead`] fires when the `4^K` wire-cut
    /// sampling overhead exceeds this bound (default `4^6 = 4096`).
    pub max_sampling_overhead: f64,
    /// Schedule and graph lints are skipped when the standard plan's
    /// setting count exceeds this bound, keeping [`analyze`] cheap at
    /// large `K` (default `10_000`).
    pub max_planned_jobs: usize,
    /// Per-code severity overrides, later entries winning. Demote a noisy
    /// warn to [`Severity::Allow`] or promote an informational lint to
    /// [`Severity::Warn`] to surface its report.
    pub overrides: Vec<(LintCode, Severity)>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            enabled: true,
            max_sampling_overhead: 4096.0,
            max_planned_jobs: 10_000,
            overrides: Vec::new(),
        }
    }
}

impl AnalysisConfig {
    /// The configuration that skips the gate entirely.
    pub fn disabled() -> Self {
        AnalysisConfig {
            enabled: false,
            ..Self::default()
        }
    }

    /// Returns the configuration with one more severity override.
    pub fn with_override(mut self, code: LintCode, severity: Severity) -> Self {
        self.overrides.push((code, severity));
        self
    }

    /// The effective severity of `code` under this configuration.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .iter()
            .rev()
            .find(|(c, _)| *c == code)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| code.default_severity())
    }
}

/// The pipeline layer a lint reads. [`analyze`] runs layers in order and
/// stops descending when a layer's soundness premise is broken (malformed
/// IR stops before fragmenting; an invalid cut stops before scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// The workload circuit itself.
    Circuit,
    /// The cut specification against the circuit.
    Cut,
    /// The predicted shot schedule for the standard plan.
    Schedule,
    /// The planned (unexecuted) job graph.
    Graph,
    /// The warm-start cache configuration (and, when a backend is known,
    /// its seeding discipline).
    Cache,
    /// The fault-tolerance configuration: retry policy, failure policy,
    /// and (when a backend is known) its fault discipline.
    Execution,
    /// The dataflow facts: stabilizer-domain golden proofs, light-cone
    /// dead gates, and the wire-edge cut cost model.
    Dataflow,
}

/// Everything a lint may read. Fields are `Option` because the layers are
/// populated progressively — a lint must skip (not fire) when its inputs
/// are absent, which is how [`lint_graph`] reuses the graph lints without
/// a workload.
pub struct AnalysisContext<'a> {
    /// The workload circuit.
    pub circuit: Option<&'a Circuit>,
    /// The cut specification.
    pub cut: Option<&'a CutSpec>,
    /// The fragments (present once the cut validated).
    pub fragments: Option<&'a Fragments>,
    /// The standard (pre-detection) basis plan.
    pub plan: Option<&'a BasisPlan>,
    /// The resolved, normalized shot-allocation policy.
    pub allocation: Option<ShotAllocation>,
    /// The downstream preparation scheme.
    pub method: ReconstructionMethod,
    /// Whether the engine will deduplicate structurally identical jobs.
    pub dedup: bool,
    /// The planned job graph (never executed by analysis).
    pub graph: Option<&'a JobGraph>,
    /// The warm-start cache configuration, when one is enabled.
    pub cache: Option<&'a CacheConfig>,
    /// Whether the backend guarantees deterministic seeding (known only
    /// on the [`analyze_with_backend`] path — [`analyze`] stays
    /// backend-free and leaves this `None`, so backend-dependent cache
    /// lints skip).
    pub backend_deterministic: Option<bool>,
    /// The retry policy the engine will honor.
    pub retry: Option<&'a RetryPolicy>,
    /// The failure policy of the run.
    pub failure: Option<FailurePolicy>,
    /// Whether the backend deliberately injects faults (known only on the
    /// [`analyze_with_backend`] path, like
    /// [`AnalysisContext::backend_deterministic`]).
    pub fault_prone: Option<bool>,
    /// The backend's timing model, for predicting per-job device
    /// durations against a configured timeout (backend-known path only).
    pub timing: Option<&'a TimingModel>,
    /// The members of the bound [`qcut_device::pool::BackendPool`], when
    /// the backend is one (backend-known path only; `None` on bare
    /// backends, `Some(empty)` on an empty pool).
    pub pool: Option<Vec<MemberInfo>>,
    /// The analysis configuration (thresholds, overrides).
    pub config: &'a AnalysisConfig,
}

impl<'a> AnalysisContext<'a> {
    /// A context carrying only a planned graph — what [`lint_graph`] runs
    /// the [`Layer::Graph`] lints against.
    pub fn for_graph(graph: &'a JobGraph, config: &'a AnalysisConfig) -> Self {
        AnalysisContext {
            circuit: None,
            cut: None,
            fragments: None,
            plan: None,
            allocation: None,
            method: ReconstructionMethod::Eigenstate,
            dedup: graph.dedup_enabled(),
            graph: Some(graph),
            cache: None,
            backend_deterministic: None,
            retry: None,
            failure: None,
            fault_prone: None,
            timing: None,
            pool: None,
            config,
        }
    }
}

/// Collects findings, resolving each code's effective severity and
/// dropping allow-level findings.
pub struct Sink<'c> {
    config: &'c AnalysisConfig,
    items: Vec<Diagnostic>,
}

impl<'c> Sink<'c> {
    fn new(config: &'c AnalysisConfig) -> Self {
        Sink {
            config,
            items: Vec::new(),
        }
    }

    /// Records one finding of `code`. The configured severity is attached
    /// here; allow-level findings are dropped.
    pub fn report(&mut self, code: LintCode, message: String) {
        let severity = self.config.severity(code);
        if severity != Severity::Allow {
            self.items.push(Diagnostic {
                code,
                severity,
                message,
            });
        }
    }

    fn finish(self) -> Diagnostics {
        Diagnostics { items: self.items }
    }
}

/// One static check. Implementations are registered in [`registry`] and
/// dispatched by [`analyze`] layer by layer; a lint reads its inputs from
/// the [`AnalysisContext`] and must skip silently when they are absent.
pub trait Lint {
    /// The diagnostic code this lint emits.
    fn code(&self) -> LintCode;
    /// One-line description of what the lint checks (the docs table).
    fn description(&self) -> &'static str;
    /// The pipeline layer the lint reads.
    fn layer(&self) -> Layer;
    /// Runs the check, reporting findings into `sink`.
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>);
}

/// The registered lints, in code order.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(OutOfRangeOperandLint),
        Box::new(IdleQubitLint),
        Box::new(IdentityGateLint),
        Box::new(FusibleAdjacentLint),
        Box::new(InvalidCutLint),
        Box::new(SamplingOverheadLint),
        Box::new(GoldenStructureLint),
        Box::new(BudgetBelowFloorLint),
        Box::new(ZeroShotSettingLint),
        Box::new(NeglectCoverageLint),
        Box::new(StandardPlanStarvedLint),
        Box::new(ConsumerAliasingLint),
        Box::new(OrphanNodeLint),
        Box::new(MissedDedupLint),
        Box::new(PrefixSharingLint),
        Box::new(CacheNondeterministicSeedingLint),
        Box::new(CacheByteBudgetThrashLint),
        Box::new(CacheDegradedLint),
        Box::new(FaultProneNoRetryLint),
        Box::new(TimeoutBelowJobDurationLint),
        Box::new(DegradeUnsalvageableLint),
        Box::new(DominatedCutPlacementLint),
        Box::new(OutOfConeDeadGateLint),
        Box::new(ProvableGoldenUndetectedLint),
        Box::new(PoolCapacityInfeasibleLint),
        Box::new(PoolFingerprintMixingLint),
        Box::new(PoolIdleMemberLint),
    ]
}

// ---------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------

/// Structural problems of an instruction stream: `(index, description)`
/// per malformed instruction. Empty for every circuit built through the
/// validating [`Circuit::push`] API; non-empty only for circuits imported
/// via [`Circuit::from_instructions_unchecked`].
fn invalid_instructions(circuit: &Circuit) -> Vec<(usize, String)> {
    let n = circuit.num_qubits();
    let mut bad = Vec::new();
    for (i, inst) in circuit.instructions().iter().enumerate() {
        if inst.qubits.len() != inst.gate.arity() {
            bad.push((
                i,
                format!(
                    "gate {} has {} operands, expects {}",
                    inst.gate,
                    inst.qubits.len(),
                    inst.gate.arity()
                ),
            ));
            continue;
        }
        if let Some(&q) = inst.qubits.iter().find(|&&q| q >= n) {
            bad.push((
                i,
                format!("operand qubit {q} outside the {n}-qubit register"),
            ));
            continue;
        }
        if inst.qubits.len() == 2 && inst.qubits[0] == inst.qubits[1] {
            bad.push((
                i,
                format!("two-qubit gate {} applied to one qubit twice", inst.gate),
            ));
        }
    }
    bad
}

/// The fully-golden floor: the smallest plan any detection outcome could
/// shrink the standard plan to — two neglected bases per cut, leaving one
/// measurement basis and one eigenstate pair. What a budget must at least
/// cover for *any* execution path to exist (lint `QA201`).
pub fn minimal_golden_plan(num_cuts: usize) -> BasisPlan {
    let mut plan = BasisPlan::standard(num_cuts);
    for k in 0..num_cuts {
        plan.neglect(k, Pauli::X);
        plan.neglect(k, Pauli::Y);
    }
    plan
}

/// Predicted schedule of `plan` under `allocation` — the same typed
/// scheduling functions the pipeline runs, called statically.
fn predicted_schedule(
    plan: &BasisPlan,
    method: ReconstructionMethod,
    allocation: ShotAllocation,
) -> Result<crate::allocation::ShotSchedule, AllocationError> {
    match method {
        ReconstructionMethod::Eigenstate => schedule_for_plan(plan, allocation),
        ReconstructionMethod::Sic => schedule_sic(plan, allocation),
    }
}

/// Setting count of `plan` without enumerating the cartesian products
/// (which would be exponential work for large `K`).
fn estimated_settings(plan: &BasisPlan, method: ReconstructionMethod) -> f64 {
    let num_cuts = plan.num_cuts();
    let up: f64 = (0..num_cuts)
        .map(|k| plan.meas_bases(k).len() as f64)
        .product();
    let down: f64 = match method {
        ReconstructionMethod::Eigenstate => (0..num_cuts)
            .map(|k| plan.prep_states(k).len() as f64)
            .product(),
        ReconstructionMethod::Sic => 4f64.powi(num_cuts as i32),
    };
    up + down
}

/// Whether `a` then `b` on identical operands is a pair a transpiler
/// would merge (same-axis rotations) or cancel (adjoint pairs).
fn fusible_pair(a: &Gate, b: &Gate) -> bool {
    let same_family = matches!(
        (a, b),
        (Gate::Rx(_), Gate::Rx(_))
            | (Gate::Ry(_), Gate::Ry(_))
            | (Gate::Rz(_), Gate::Rz(_))
            | (Gate::Phase(_), Gate::Phase(_))
            | (Gate::Crx(_), Gate::Crx(_))
            | (Gate::Cry(_), Gate::Cry(_))
            | (Gate::Crz(_), Gate::Crz(_))
            | (Gate::CPhase(_), Gate::CPhase(_))
    );
    same_family || *b == a.adjoint()
}

// ---------------------------------------------------------------------
// Circuit-layer lints (QA0xx).
// ---------------------------------------------------------------------

struct OutOfRangeOperandLint;

impl Lint for OutOfRangeOperandLint {
    fn code(&self) -> LintCode {
        LintCode::OutOfRangeOperand
    }
    fn description(&self) -> &'static str {
        "instruction operands out of range, wrong arity, or duplicated"
    }
    fn layer(&self) -> Layer {
        Layer::Circuit
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(circuit) = ctx.circuit else { return };
        for (i, what) in invalid_instructions(circuit) {
            sink.report(self.code(), format!("instruction #{i}: {what}"));
        }
    }
}

struct IdleQubitLint;

impl Lint for IdleQubitLint {
    fn code(&self) -> LintCode {
        LintCode::IdleQubit
    }
    fn description(&self) -> &'static str {
        "qubits without any instruction (undefined fragment membership)"
    }
    fn layer(&self) -> Layer {
        Layer::Circuit
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(circuit) = ctx.circuit else { return };
        let idle = circuit.idle_qubits();
        if !idle.is_empty() {
            sink.report(
                self.code(),
                format!(
                    "{} qubit(s) have no instructions ({idle:?}); fragmenting \
                     cannot assign them to a side of the cut",
                    idle.len()
                ),
            );
        }
    }
}

struct IdentityGateLint;

impl Lint for IdentityGateLint {
    fn code(&self) -> LintCode {
        LintCode::IdentityGate
    }
    fn description(&self) -> &'static str {
        "gates that are the identity up to global phase"
    }
    fn layer(&self) -> Layer {
        Layer::Circuit
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(circuit) = ctx.circuit else { return };
        for (i, inst) in circuit.instructions().iter().enumerate() {
            if inst.gate.is_effective_identity() {
                sink.report(
                    self.code(),
                    format!(
                        "instruction #{i} ({inst}) is the identity up to global \
                         phase; it costs simulation work in every tomography \
                         variant and changes nothing"
                    ),
                );
            }
        }
    }
}

struct FusibleAdjacentLint;

impl Lint for FusibleAdjacentLint {
    fn code(&self) -> LintCode {
        LintCode::FusibleAdjacent
    }
    fn description(&self) -> &'static str {
        "adjacent same-operand gates a transpiler would fuse or cancel"
    }
    fn layer(&self) -> Layer {
        Layer::Circuit
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(circuit) = ctx.circuit else { return };
        let instructions = circuit.instructions();
        for (i, inst) in instructions.iter().enumerate() {
            // The next instruction touching any of this one's qubits: if it
            // uses exactly the same operands, nothing can act between them
            // on those wires, so the pair is genuinely adjacent.
            let Some((j, next)) = instructions
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, n)| n.qubits.iter().any(|q| inst.qubits.contains(q)))
            else {
                continue;
            };
            if next.qubits == inst.qubits && fusible_pair(&inst.gate, &next.gate) {
                sink.report(
                    self.code(),
                    format!(
                        "instructions #{i} ({inst}) and #{j} ({next}) are \
                         adjacent on the same operands and would fuse to one \
                         gate (or cancel)"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cut-layer lints (QA1xx).
// ---------------------------------------------------------------------

struct InvalidCutLint;

impl Lint for InvalidCutLint {
    fn code(&self) -> LintCode {
        LintCode::InvalidCut
    }
    fn description(&self) -> &'static str {
        "the cut specification does not bipartition the circuit"
    }
    fn layer(&self) -> Layer {
        Layer::Cut
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(circuit), Some(cut)) = (ctx.circuit, ctx.cut) else {
            return;
        };
        if let Err(e) = Fragmenter::fragment(circuit, cut) {
            sink.report(self.code(), format!("cut does not fragment: {e}"));
        }
    }
}

struct SamplingOverheadLint;

impl Lint for SamplingOverheadLint {
    fn code(&self) -> LintCode {
        LintCode::SamplingOverhead
    }
    fn description(&self) -> &'static str {
        "4^K sampling overhead beyond the configured bound"
    }
    fn layer(&self) -> Layer {
        Layer::Cut
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(cut) = ctx.cut else { return };
        let k = cut.num_cuts();
        let overhead = 4f64.powi(k as i32);
        if overhead > ctx.config.max_sampling_overhead {
            sink.report(
                self.code(),
                format!(
                    "{k} wire cuts carry a 4^{k} = {overhead:.0} sampling \
                     overhead, above the configured bound of {:.0}; shot \
                     requirements grow by that factor for the same accuracy",
                    ctx.config.max_sampling_overhead
                ),
            );
        }
    }
}

struct GoldenStructureLint;

impl Lint for GoldenStructureLint {
    fn code(&self) -> LintCode {
        LintCode::GoldenStructure
    }
    fn description(&self) -> &'static str {
        "real upstream fragment: golden-Y structure the policy could exploit"
    }
    fn layer(&self) -> Layer {
        Layer::Cut
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(fragments) = ctx.fragments else {
            return;
        };
        if fragments.upstream.circuit.is_real() {
            sink.report(
                self.code(),
                format!(
                    "the upstream fragment applies only real gates, so every \
                     state at the {} cut port(s) is real and its Y expectation \
                     vanishes identically — each cut is a golden-Y candidate; \
                     GoldenPolicy::detect_exact() or DetectOnline would shrink \
                     the plan",
                    fragments.num_cuts
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Schedule-layer lints (QA2xx).
// ---------------------------------------------------------------------

struct BudgetBelowFloorLint;

impl Lint for BudgetBelowFloorLint {
    fn code(&self) -> LintCode {
        LintCode::BudgetBelowFloor
    }
    fn description(&self) -> &'static str {
        "budget below the fully-golden floor: no execution path can succeed"
    }
    fn layer(&self) -> Layer {
        Layer::Schedule
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(plan), Some(allocation)) = (ctx.plan, ctx.allocation) else {
            return;
        };
        let floor = minimal_golden_plan(plan.num_cuts());
        if let Err(e) = predicted_schedule(&floor, ctx.method, allocation) {
            sink.report(
                self.code(),
                format!(
                    "the budget cannot cover even the fully-golden minimal \
                     plan, so no detection outcome can make this run \
                     schedulable: {e}"
                ),
            );
        }
    }
}

struct ZeroShotSettingLint;

impl Lint for ZeroShotSettingLint {
    fn code(&self) -> LintCode {
        LintCode::ZeroShotSetting
    }
    fn description(&self) -> &'static str {
        "settings scheduled at zero shots"
    }
    fn layer(&self) -> Layer {
        Layer::Schedule
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(plan), Some(allocation)) = (ctx.plan, ctx.allocation) else {
            return;
        };
        if let ShotAllocation::Uniform {
            shots_per_setting: 0,
        } = allocation
        {
            sink.report(
                self.code(),
                "the uniform policy schedules zero shots per setting; every \
                 histogram would be empty and the contraction reads garbage"
                    .to_string(),
            );
            return;
        }
        if let Ok(sched) = predicted_schedule(plan, ctx.method, allocation) {
            if sched.num_settings() > 0 && sched.min_shots() == 0 {
                sink.report(
                    self.code(),
                    "the predicted schedule leaves at least one setting at \
                     zero shots; its empty histogram would poison the \
                     contraction"
                        .to_string(),
                );
            }
        }
    }
}

struct NeglectCoverageLint;

impl Lint for NeglectCoverageLint {
    fn code(&self) -> LintCode {
        LintCode::NeglectCoverage
    }
    fn description(&self) -> &'static str {
        "neglect-coverage report: standard vs fully-golden setting counts"
    }
    fn layer(&self) -> Layer {
        Layer::Schedule
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(plan), Some(fragments)) = (ctx.plan, ctx.fragments) else {
            return;
        };
        let standard = estimated_settings(plan, ctx.method);
        let floor = estimated_settings(&minimal_golden_plan(plan.num_cuts()), ctx.method);
        let golden = if fragments.upstream.circuit.is_real() {
            "static golden-Y structure present"
        } else {
            "no static golden structure detected"
        };
        sink.report(
            self.code(),
            format!(
                "plan coverage over {} cut(s): {standard:.0} settings standard, \
                 {floor:.0} at the fully-golden floor; {golden}",
                plan.num_cuts()
            ),
        );
    }
}

struct StandardPlanStarvedLint;

impl Lint for StandardPlanStarvedLint {
    fn code(&self) -> LintCode {
        LintCode::StandardPlanStarved
    }
    fn description(&self) -> &'static str {
        "budget starves the standard plan; only a golden shrink can rescue it"
    }
    fn layer(&self) -> Layer {
        Layer::Schedule
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(plan), Some(allocation)) = (ctx.plan, ctx.allocation) else {
            return;
        };
        // Only meaningful when some plan fits (otherwise QA201 already
        // denies the workload outright).
        let floor = minimal_golden_plan(plan.num_cuts());
        if predicted_schedule(&floor, ctx.method, allocation).is_err() {
            return;
        }
        if let Err(e) = predicted_schedule(plan, ctx.method, allocation) {
            sink.report(
                self.code(),
                format!(
                    "the budget starves the standard (no-neglect) plan — the \
                     run fails at allocation time unless golden detection \
                     shrinks the plan first: {e}"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Graph-layer lints (QA3xx).
// ---------------------------------------------------------------------

struct ConsumerAliasingLint;

impl Lint for ConsumerAliasingLint {
    fn code(&self) -> LintCode {
        LintCode::ConsumerAliasing
    }
    fn description(&self) -> &'static str {
        "one consumer key fed by several distinct circuits"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(graph) = ctx.graph else { return };
        let mut feeders: std::collections::HashMap<crate::jobgraph::ConsumerKey, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, (_, consumers)) in graph.node_jobs().enumerate() {
            for &(key, _) in consumers {
                feeders.entry(key).or_default().push(i);
            }
        }
        let mut aliased: Vec<_> = feeders.into_iter().filter(|(_, v)| v.len() > 1).collect();
        aliased.sort_by_key(|(k, _)| *k);
        for (key, nodes) in aliased {
            sink.report(
                self.code(),
                format!(
                    "consumer {key:?} is fed by {} distinct circuits (nodes \
                     {nodes:?}); their histograms would merge into one stream \
                     and mix different distributions",
                    nodes.len()
                ),
            );
        }
    }
}

struct OrphanNodeLint;

impl Lint for OrphanNodeLint {
    fn code(&self) -> LintCode {
        LintCode::OrphanNode
    }
    fn description(&self) -> &'static str {
        "nodes whose consumers all request zero shots"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(graph) = ctx.graph else { return };
        let orphans: Vec<usize> = graph
            .node_jobs()
            .enumerate()
            .filter(|(_, (_, consumers))| consumers.iter().map(|&(_, s)| s).max().unwrap_or(0) == 0)
            .map(|(i, _)| i)
            .collect();
        if !orphans.is_empty() {
            sink.report(
                self.code(),
                format!(
                    "{} of {} nodes are orphaned (every consumer requests zero \
                     shots, e.g. nodes {:?}); they can only deliver empty \
                     histograms",
                    orphans.len(),
                    graph.num_nodes(),
                    &orphans[..orphans.len().min(5)]
                ),
            );
        }
    }
}

struct MissedDedupLint;

impl Lint for MissedDedupLint {
    fn code(&self) -> LintCode {
        LintCode::MissedDedup
    }
    fn description(&self) -> &'static str {
        "structurally-hash-equal circuits in distinct nodes"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(graph) = ctx.graph else { return };
        let mut by_hash: std::collections::HashMap<u64, Vec<(usize, &Circuit)>> =
            std::collections::HashMap::new();
        for (i, (circuit, _)) in graph.node_jobs().enumerate() {
            by_hash
                .entry(circuit.structural_hash())
                .or_default()
                .push((i, circuit));
        }
        let mut groups: Vec<_> = by_hash.into_values().filter(|g| g.len() > 1).collect();
        groups.sort_by_key(|g| g[0].0);
        for group in groups {
            let indices: Vec<usize> = group.iter().map(|&(i, _)| i).collect();
            let all_equal = group.windows(2).all(|w| w[0].1 == w[1].1);
            let message = if all_equal {
                format!(
                    "nodes {indices:?} hold structurally identical circuits \
                     that were not merged (dedup disabled?); each executes \
                     its shots separately"
                )
            } else {
                format!(
                    "nodes {indices:?} collide on the 64-bit structural hash \
                     while holding different circuits; dedup stays sound (it \
                     confirms equality) but hash-keyed caches must too"
                )
            };
            sink.report(self.code(), message);
        }
    }
}

struct PrefixSharingLint;

impl Lint for PrefixSharingLint {
    fn code(&self) -> LintCode {
        LintCode::PrefixSharing
    }
    fn description(&self) -> &'static str {
        "predicted prefix-sharing ratio of the planned batch"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let Some(graph) = ctx.graph else { return };
        if graph.num_nodes() == 0 {
            return;
        }
        let profile = graph.prefix_profile();
        let saved = profile.gates_saved();
        let ratio = if profile.gates_naive == 0 {
            0.0
        } else {
            100.0 * saved as f64 / profile.gates_naive as f64
        };
        sink.report(
            self.code(),
            format!(
                "planned batch of {} unique jobs: {} naive gate applications \
                 → {} on a prefix-sharing backend ({ratio:.1}% predicted \
                 saving)",
                profile.circuits, profile.gates_naive, profile.gates_shared
            ),
        );
    }
}

// ---------------------------------------------------------------------
// Cache-layer lints (QA4xx).
// ---------------------------------------------------------------------

struct CacheNondeterministicSeedingLint;

impl Lint for CacheNondeterministicSeedingLint {
    fn code(&self) -> LintCode {
        LintCode::CacheNondeterministicSeeding
    }
    fn description(&self) -> &'static str {
        "warm-start cache enabled on a nondeterministically seeded backend"
    }
    fn layer(&self) -> Layer {
        Layer::Cache
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        if ctx.cache.is_none() {
            return;
        }
        // Backend-free analyze() leaves the discipline unknown: skip, don't
        // guess (a lint must not fire on absent inputs).
        if ctx.backend_deterministic == Some(false) {
            sink.report(
                self.code(),
                "the warm-start cache is enabled but the backend does not \
                 guarantee deterministic seeding; cached histograms remain \
                 statistically valid samples, but warm reruns will not be \
                 bit-reproducible across processes"
                    .to_string(),
            );
        }
    }
}

struct CacheByteBudgetThrashLint;

impl Lint for CacheByteBudgetThrashLint {
    fn code(&self) -> LintCode {
        LintCode::CacheByteBudgetThrash
    }
    fn description(&self) -> &'static str {
        "cache byte budget below one planned node's histogram entry"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(cache), Some(graph)) = (ctx.cache, ctx.graph) else {
            return;
        };
        // The worst single entry the planned graph could store: if even one
        // node's histogram cannot fit, storing it evicts everything and the
        // cache thrashes without ever serving a warm hit.
        let worst = graph
            .node_jobs()
            .map(|(circuit, consumers)| {
                let shots = consumers.iter().map(|&(_, s)| s).max().unwrap_or(0);
                qcut_cache::estimated_entry_bytes(circuit, shots)
            })
            .max();
        if let Some(worst) = worst {
            if worst > cache.byte_budget {
                sink.report(
                    self.code(),
                    format!(
                        "the cache byte budget ({} B) is below the largest \
                         planned node's estimated histogram entry ({worst} B); \
                         every store of that node immediately evicts it and \
                         warm runs stay cold",
                        cache.byte_budget
                    ),
                );
            }
        }
    }
}

struct CacheDegradedLint;

impl Lint for CacheDegradedLint {
    fn code(&self) -> LintCode {
        LintCode::CacheDegraded
    }
    fn description(&self) -> &'static str {
        "configured cache file is not a loadable current-format cache"
    }
    fn layer(&self) -> Layer {
        Layer::Cache
    }
    // Bounded IO exception to the "analysis is pure" rule: this lint reads
    // at most the 10-byte header (magic + version) of the one configured
    // cache file — never the body, never the backend. A missing file is
    // *not* a finding (a cold start is the normal first run).
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        use std::io::Read as _;
        let Some(path) = ctx.cache.and_then(|c| c.path.as_ref()) else {
            return;
        };
        let mut header = [0u8; 10];
        let mut filled = 0usize;
        match std::fs::File::open(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
            Err(e) => {
                sink.report(
                    self.code(),
                    format!(
                        "cache file {} is unreadable ({e}); the run degrades \
                         to a cold start",
                        path.display()
                    ),
                );
                return;
            }
            Ok(mut file) => loop {
                match file.read(&mut header[filled..]) {
                    Ok(0) => break,
                    Ok(n) => {
                        filled += n;
                        if filled == header.len() {
                            break;
                        }
                    }
                    Err(e) => {
                        sink.report(
                            self.code(),
                            format!(
                                "cache file {} failed to read ({e}); the run \
                                 degrades to a cold start",
                                path.display()
                            ),
                        );
                        return;
                    }
                }
            },
        }
        let version = if filled == header.len() {
            u16::from_le_bytes([header[8], header[9]])
        } else {
            0
        };
        if filled < header.len() || &header[..8] != qcut_cache::disk::MAGIC {
            sink.report(
                self.code(),
                format!(
                    "cache file {} is not a warm-start cache (bad or \
                     truncated header); the run degrades to a cold start and \
                     will not overwrite it until a successful persist",
                    path.display()
                ),
            );
        } else if version != qcut_cache::disk::VERSION {
            sink.report(
                self.code(),
                format!(
                    "cache file {} has format version {version}, this build \
                     reads version {}; the run degrades to a cold start",
                    path.display(),
                    qcut_cache::disk::VERSION
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Execution-layer lints (QA5xx): fault tolerance.
// ---------------------------------------------------------------------

struct FaultProneNoRetryLint;

impl Lint for FaultProneNoRetryLint {
    fn code(&self) -> LintCode {
        LintCode::FaultProneNoRetry
    }
    fn description(&self) -> &'static str {
        "fault-injecting backend with retries disabled"
    }
    fn layer(&self) -> Layer {
        Layer::Execution
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        // Backend-free analyze() leaves the fault discipline unknown:
        // skip, don't guess.
        let (Some(true), Some(retry)) = (ctx.fault_prone, ctx.retry) else {
            return;
        };
        if retry.max_attempts <= 1 {
            sink.report(
                self.code(),
                "the backend reports itself fault-prone but retries are \
                 disabled (max_attempts ≤ 1): every transient fault is \
                 immediately permanent; set RetryPolicy::max_attempts > 1 \
                 to ride out the fault schedule"
                    .to_string(),
            );
        }
    }
}

struct TimeoutBelowJobDurationLint;

impl Lint for TimeoutBelowJobDurationLint {
    fn code(&self) -> LintCode {
        LintCode::TimeoutBelowJobDuration
    }
    fn description(&self) -> &'static str {
        "per-job timeout below a planned node's predicted device duration"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(graph), Some(timing), Some(retry)) = (ctx.graph, ctx.timing, ctx.retry) else {
            return;
        };
        let Some(timeout) = retry.per_job_timeout else {
            return;
        };
        let doomed: Vec<(usize, f64)> = graph
            .node_jobs()
            .enumerate()
            .filter_map(|(i, (circuit, consumers))| {
                let shots = consumers.iter().map(|&(_, s)| s).max().unwrap_or(0);
                let predicted = timing.job_duration(circuit, shots);
                (predicted > timeout.as_secs_f64()).then_some((i, predicted))
            })
            .collect();
        if let Some(&(node, predicted)) = doomed.first() {
            sink.report(
                self.code(),
                format!(
                    "{} of {} planned node(s) predict a device duration above \
                     the {:.3} s per-job timeout (e.g. node {node} at \
                     {predicted:.3} s); those jobs time out on every attempt \
                     and each attempt still wastes the full device occupation",
                    doomed.len(),
                    graph.num_nodes(),
                    timeout.as_secs_f64(),
                ),
            );
        }
    }
}

struct DegradeUnsalvageableLint;

impl Lint for DegradeUnsalvageableLint {
    fn code(&self) -> LintCode {
        LintCode::DegradeUnsalvageable
    }
    fn description(&self) -> &'static str {
        "Degrade policy where losing any one setting is unsalvageable"
    }
    fn layer(&self) -> Layer {
        Layer::Execution
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        if ctx.failure != Some(FailurePolicy::Degrade) {
            return;
        }
        if ctx.method == ReconstructionMethod::Sic {
            sink.report(
                self.code(),
                "FailurePolicy::Degrade is configured with SIC preparations, \
                 but the SIC frame is informationally complete: losing any \
                 one preparation makes the 4×4 solve singular, so a \
                 downstream failure can never degrade gracefully — it fails \
                 exactly like FailurePolicy::Fail"
                    .to_string(),
            );
            return;
        }
        let Some(plan) = ctx.plan else { return };
        let saturated: Vec<usize> = (0..plan.num_cuts())
            .filter(|&k| plan.neglected()[k].len() >= 2)
            .collect();
        if !saturated.is_empty() {
            sink.report(
                self.code(),
                format!(
                    "FailurePolicy::Degrade is configured but cut(s) \
                     {saturated:?} already neglect two bases — no further \
                     basis can be dropped there, so losing one of their \
                     settings cannot degrade gracefully"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Dataflow-layer lints (QA6xx).
// ---------------------------------------------------------------------

struct DominatedCutPlacementLint;

impl Lint for DominatedCutPlacementLint {
    fn code(&self) -> LintCode {
        LintCode::DominatedCutPlacement
    }
    fn description(&self) -> &'static str {
        "the chosen cut is Pareto-dominated under the dataflow cost model"
    }
    fn layer(&self) -> Layer {
        Layer::Dataflow
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        // Scoring every wire edge fragments the circuit per edge — too much
        // work for a finding the default (allow) severity would drop anyway.
        if ctx.config.severity(self.code()) == Severity::Allow {
            return;
        }
        let (Some(circuit), Some(cut)) = (ctx.circuit, ctx.cut) else {
            return;
        };
        if cut.num_cuts() != 1 {
            return;
        }
        let loc = cut.cuts()[0];
        // Static facts only (no statevector simulation inside a lint).
        let report = crate::dataflow::cut_report(circuit, &AnalysisConfig::disabled());
        let Some(chosen) = report
            .candidates
            .iter()
            .find(|c| c.qubit == loc.qubit && c.position == loc.after_op)
        else {
            return;
        };
        let dominating = report.candidates.iter().find(|d| {
            d.feasible
                && (d.qubit, d.position) != (chosen.qubit, chosen.position)
                && d.proven_golden.len() >= chosen.proven_golden.len()
                && d.settings <= chosen.settings
                && d.entangling_crossings <= chosen.entangling_crossings
                && (d.proven_golden.len() > chosen.proven_golden.len()
                    || d.settings < chosen.settings
                    || d.entangling_crossings < chosen.entangling_crossings)
        });
        if let Some(d) = dominating {
            sink.report(
                self.code(),
                format!(
                    "the cut at qubit {} position {} is dominated by the wire \
                     edge at qubit {} position {}: {} vs {} proven-golden \
                     bases, {} vs {} settings, {} vs {} entangling crossings",
                    loc.qubit,
                    loc.after_op,
                    d.qubit,
                    d.position,
                    d.proven_golden.len(),
                    chosen.proven_golden.len(),
                    d.settings,
                    chosen.settings,
                    d.entangling_crossings,
                    chosen.entangling_crossings,
                ),
            );
        }
    }
}

struct OutOfConeDeadGateLint;

impl Lint for OutOfConeDeadGateLint {
    fn code(&self) -> LintCode {
        LintCode::OutOfConeDeadGate
    }
    fn description(&self) -> &'static str {
        "light-cone-proven dead gates (prep-dead or measure-dead)"
    }
    fn layer(&self) -> Layer {
        Layer::Dataflow
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        if ctx.config.severity(self.code()) == Severity::Allow {
            return;
        }
        let Some(circuit) = ctx.circuit else { return };
        let insts = circuit.instructions();
        for dead in qcut_circuit::cone::dead_instructions(circuit) {
            let inst = &insts[dead.index];
            // Single-gate effective identities are QA003's finding.
            if inst.gate.is_effective_identity() {
                continue;
            }
            let why = match dead.kind {
                qcut_circuit::cone::DeadGateKind::PrepDead => {
                    "acts by a global phase on the still-|0> operands"
                }
                qcut_circuit::cone::DeadGateKind::MeasureDead => {
                    "its forward light cone is all diagonal, so it commutes \
                     to the final measurement it cannot affect"
                }
            };
            sink.report(
                self.code(),
                format!(
                    "instruction #{} ({inst}) cannot affect the final \
                     distribution: {why}",
                    dead.index
                ),
            );
        }
    }
}

struct ProvableGoldenUndetectedLint;

impl Lint for ProvableGoldenUndetectedLint {
    fn code(&self) -> LintCode {
        LintCode::ProvableGoldenUndetected
    }
    fn description(&self) -> &'static str {
        "statically-provable golden bases the plan is not neglecting"
    }
    fn layer(&self) -> Layer {
        Layer::Dataflow
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        if ctx.config.severity(self.code()) == Severity::Allow {
            return;
        }
        let (Some(fragments), Some(plan)) = (ctx.fragments, ctx.plan) else {
            return;
        };
        let proofs = crate::dataflow::prove_golden_bases(&fragments.upstream, fragments.num_cuts);
        for (cut, proven) in proofs.iter().enumerate() {
            let missed: Vec<Pauli> = proven
                .iter()
                .copied()
                .filter(|p| !plan.neglected()[cut].contains(p))
                .collect();
            if !missed.is_empty() {
                sink.report(
                    self.code(),
                    format!(
                        "cut {cut}: the stabilizer prover certifies {missed:?} \
                         golden but the plan still measures them; \
                         GoldenPolicy::ProveStatic would neglect them with \
                         zero detection shots"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pool-layer lints (QA7xx): multi-backend sharding.
// ---------------------------------------------------------------------

struct PoolCapacityInfeasibleLint;

impl Lint for PoolCapacityInfeasibleLint {
    fn code(&self) -> LintCode {
        LintCode::PoolCapacityInfeasible
    }
    fn description(&self) -> &'static str {
        "a planned node is wider than every pool member's capacity"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(graph), Some(members)) = (ctx.graph, ctx.pool.as_deref()) else {
            return;
        };
        let ceiling = members.iter().map(|m| m.capacity).max().unwrap_or(0);
        let doomed: Vec<(usize, usize)> = graph
            .node_jobs()
            .enumerate()
            .filter_map(|(i, (circuit, _))| {
                let width = circuit.num_qubits();
                (width > ceiling).then_some((i, width))
            })
            .collect();
        if let Some(&(node, width)) = doomed.first() {
            sink.report(
                self.code(),
                format!(
                    "{} of {} planned node(s) exceed every pool member's \
                     capacity (e.g. node {node} at {width} qubits vs a \
                     {ceiling}-qubit ceiling across {} member(s)); no \
                     placement can seat them and they fail before submission",
                    doomed.len(),
                    graph.num_nodes(),
                    members.len(),
                ),
            );
        }
    }
}

struct PoolFingerprintMixingLint;

impl Lint for PoolFingerprintMixingLint {
    fn code(&self) -> LintCode {
        LintCode::PoolFingerprintMixing
    }
    fn description(&self) -> &'static str {
        "warm cache on a pool whose members carry distinct fingerprints"
    }
    fn layer(&self) -> Layer {
        Layer::Cache
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(_), Some(members)) = (ctx.cache, ctx.pool.as_deref()) else {
            return;
        };
        let distinct: std::collections::HashSet<u64> =
            members.iter().map(|m| m.fingerprint).collect();
        if distinct.len() > 1 {
            sink.report(
                self.code(),
                format!(
                    "the warm-start cache is enabled on a pool whose {} \
                     members carry {} distinct cache fingerprints; the \
                     reconstruction merges histograms measured under \
                     different fingerprints, and a failed-over node's \
                     histogram is stored under its assigned member's key \
                     even though a sibling measured it",
                    members.len(),
                    distinct.len(),
                ),
            );
        }
    }
}

struct PoolIdleMemberLint;

impl Lint for PoolIdleMemberLint {
    fn code(&self) -> LintCode {
        LintCode::PoolIdleMember
    }
    fn description(&self) -> &'static str {
        "more pool members than unique planned jobs: members sit idle"
    }
    fn layer(&self) -> Layer {
        Layer::Graph
    }
    fn check(&self, ctx: &AnalysisContext<'_>, sink: &mut Sink<'_>) {
        let (Some(graph), Some(members)) = (ctx.graph, ctx.pool.as_deref()) else {
            return;
        };
        let nodes = graph.num_nodes();
        if nodes > 0 && members.len() > nodes {
            sink.report(
                self.code(),
                format!(
                    "the pool has {} members but the planned graph holds only \
                     {nodes} unique node(s); at least {} member(s) sit idle \
                     every round regardless of the placement policy",
                    members.len(),
                    members.len() - nodes,
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

fn run_layer(
    lints: &[Box<dyn Lint>],
    layer: Layer,
    ctx: &AnalysisContext<'_>,
    sink: &mut Sink<'_>,
) {
    for lint in lints.iter().filter(|l| l.layer() == layer) {
        lint.check(ctx, sink);
    }
}

/// Statically analyzes a workload: the circuit, the cut against it, the
/// predicted shot schedule, the planned job graph, and the warm-start
/// cache configuration. Pure up to one bounded exception — nothing
/// executes, no backend is touched, and the planned graph is built with
/// the same planner the pipeline uses and then only *inspected*; the sole
/// IO is `QA403`'s 10-byte header read of a configured cache file.
///
/// Layers run in order and stop descending when a premise is broken:
/// malformed IR (`QA001`) stops before fragmenting, an invalid cut
/// (`QA101`) stops before scheduling, and an over-budget setting count
/// ([`AnalysisConfig::max_planned_jobs`]) skips the schedule/graph layers
/// so analysis stays cheap at large `K`.
pub fn analyze(circuit: &Circuit, cut: &CutSpec, options: &ExecutionOptions) -> Diagnostics {
    analyze_inner(circuit, cut, options, None, None, None, None)
}

/// [`analyze`] plus the backend-dependent lints: knowing the backend
/// lets `QA401` check its seeding discipline, `QA501` its fault
/// discipline, `QA502` predict per-job device durations from its
/// timing model, and the `QA70x` pool lints read its member roster when
/// it is a [`qcut_device::pool::BackendPool`]. Still static — the
/// backend is only *queried* ([`Backend::deterministic_seeding`],
/// [`Backend::is_fault_prone`], [`Backend::timing`],
/// [`Backend::as_pool`]), never run. This is the entry point
/// [`crate::pipeline::CutExecutor::run`] gates on.
pub fn analyze_with_backend<B: Backend + ?Sized>(
    circuit: &Circuit,
    cut: &CutSpec,
    options: &ExecutionOptions,
    backend: &B,
) -> Diagnostics {
    analyze_inner(
        circuit,
        cut,
        options,
        Some(backend.deterministic_seeding()),
        Some(backend.is_fault_prone()),
        Some(backend.timing()),
        backend.as_pool().map(|p| p.member_info()),
    )
}

fn analyze_inner(
    circuit: &Circuit,
    cut: &CutSpec,
    options: &ExecutionOptions,
    backend_deterministic: Option<bool>,
    fault_prone: Option<bool>,
    timing: Option<&TimingModel>,
    pool: Option<Vec<MemberInfo>>,
) -> Diagnostics {
    let config = &options.analysis;
    let lints = registry();
    let mut sink = Sink::new(config);
    let allocation = options.resolved_allocation().normalized();

    let mut ctx = AnalysisContext {
        circuit: Some(circuit),
        cut: Some(cut),
        fragments: None,
        plan: None,
        allocation: Some(allocation),
        method: options.method,
        dedup: options.dedup,
        graph: None,
        cache: options.cache.as_deref().map(qcut_cache::WarmCache::config),
        backend_deterministic,
        retry: Some(&options.retry),
        failure: Some(options.failure),
        fault_prone,
        timing,
        pool,
        config,
    };
    // Cache-configuration and execution-policy lints read no circuit
    // state, so they run first and always — a malformed workload stopping
    // the descent below must not hide a misconfigured cache or a doomed
    // retry/degrade configuration.
    run_layer(&lints, Layer::Cache, &ctx, &mut sink);
    run_layer(&lints, Layer::Execution, &ctx, &mut sink);
    run_layer(&lints, Layer::Circuit, &ctx, &mut sink);

    // Malformed IR makes every deeper inspection meaningless (and unsafe
    // to index) regardless of how QA001's severity is configured.
    if !invalid_instructions(circuit).is_empty() {
        return sink.finish();
    }

    let fragments = Fragmenter::fragment(circuit, cut).ok();
    ctx.fragments = fragments.as_ref();
    run_layer(&lints, Layer::Cut, &ctx, &mut sink);
    let Some(fragments) = fragments.as_ref() else {
        // QA101 reported the failure; nothing deeper is well-defined.
        return sink.finish();
    };

    let plan = BasisPlan::standard(fragments.num_cuts);
    ctx.plan = Some(&plan);
    // Dataflow lints read the circuit, the cut, the fragments and the
    // standard plan — all present once the cut validated.
    run_layer(&lints, Layer::Dataflow, &ctx, &mut sink);
    if estimated_settings(&plan, options.method) > config.max_planned_jobs as f64 {
        // Schedule and graph lints would enumerate the settings; skip them
        // to keep analysis cheap (QA102 has already flagged the blowup).
        return sink.finish();
    }
    run_layer(&lints, Layer::Schedule, &ctx, &mut sink);

    // Plan (but never execute) the gather graph the pipeline would build.
    let graph = predicted_schedule(&plan, options.method, allocation)
        .ok()
        .map(|sched| {
            let mut graph = if options.dedup {
                JobGraph::new()
            } else {
                JobGraph::without_dedup()
            };
            add_upstream_jobs(&mut graph, fragments, &plan, &sched.upstream);
            match options.method {
                ReconstructionMethod::Eigenstate => {
                    add_downstream_jobs(&mut graph, fragments, &plan, &sched.downstream);
                }
                ReconstructionMethod::Sic => {
                    add_sic_jobs(
                        &mut graph,
                        &fragments.downstream,
                        fragments.num_cuts,
                        &sched.downstream,
                    );
                }
            }
            graph
        });
    ctx.graph = graph.as_ref();
    run_layer(&lints, Layer::Graph, &ctx, &mut sink);
    sink.finish()
}

/// Runs only the [`Layer::Graph`] lints against an explicit planned graph
/// — the entry point for callers that build graphs directly on the engine
/// rather than through [`crate::pipeline::CutExecutor`].
pub fn lint_graph(graph: &JobGraph, config: &AnalysisConfig) -> Diagnostics {
    let lints = registry();
    let ctx = AnalysisContext::for_graph(graph, config);
    let mut sink = Sink::new(config);
    run_layer(&lints, Layer::Graph, &ctx, &mut sink);
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_circuit::circuit::Instruction;

    #[test]
    fn registry_covers_every_code_once() {
        let lints = registry();
        assert_eq!(lints.len(), LintCode::ALL.len());
        for code in LintCode::ALL {
            assert_eq!(
                lints.iter().filter(|l| l.code() == code).count(),
                1,
                "{code} must be registered exactly once"
            );
            assert!(!lints
                .iter()
                .find(|l| l.code() == code)
                .map(|l| l.description().is_empty())
                .unwrap_or(true));
        }
    }

    #[test]
    fn codes_display_stably() {
        assert_eq!(LintCode::OutOfRangeOperand.to_string(), "QA001");
        assert_eq!(LintCode::PrefixSharing.to_string(), "QA304");
        assert_eq!(LintCode::CacheNondeterministicSeeding.to_string(), "QA401");
        assert_eq!(LintCode::CacheByteBudgetThrash.to_string(), "QA402");
        assert_eq!(LintCode::CacheDegraded.to_string(), "QA403");
        assert_eq!(LintCode::FaultProneNoRetry.to_string(), "QA501");
        assert_eq!(LintCode::TimeoutBelowJobDuration.to_string(), "QA502");
        assert_eq!(LintCode::DegradeUnsalvageable.to_string(), "QA503");
        assert_eq!(LintCode::DominatedCutPlacement.to_string(), "QA601");
        assert_eq!(LintCode::OutOfConeDeadGate.to_string(), "QA602");
        assert_eq!(LintCode::ProvableGoldenUndetected.to_string(), "QA603");
        assert_eq!(LintCode::PoolCapacityInfeasible.to_string(), "QA701");
        assert_eq!(LintCode::PoolFingerprintMixing.to_string(), "QA702");
        assert_eq!(LintCode::PoolIdleMember.to_string(), "QA703");
    }

    #[test]
    fn overrides_replace_default_severity() {
        let config = AnalysisConfig::default()
            .with_override(LintCode::PrefixSharing, Severity::Warn)
            .with_override(LintCode::IdleQubit, Severity::Allow);
        assert_eq!(config.severity(LintCode::PrefixSharing), Severity::Warn);
        assert_eq!(config.severity(LintCode::IdleQubit), Severity::Allow);
        assert_eq!(config.severity(LintCode::OutOfRangeOperand), Severity::Deny);
        // Later overrides win.
        let config = config.with_override(LintCode::IdleQubit, Severity::Deny);
        assert_eq!(config.severity(LintCode::IdleQubit), Severity::Deny);
    }

    #[test]
    fn invalid_instructions_catches_all_three_shapes() {
        let c = Circuit::from_instructions_unchecked(
            2,
            vec![
                Instruction {
                    gate: Gate::H,
                    qubits: vec![5],
                },
                Instruction {
                    gate: Gate::Cx,
                    qubits: vec![0],
                },
                Instruction {
                    gate: Gate::Cx,
                    qubits: vec![1, 1],
                },
            ],
        );
        let bad = invalid_instructions(&c);
        assert_eq!(bad.len(), 3);
        assert!(bad[0].1.contains("outside"));
        assert!(bad[1].1.contains("expects 2"));
        assert!(bad[2].1.contains("twice"));
    }

    #[test]
    fn minimal_golden_plan_is_one_meas_basis_per_cut() {
        let plan = minimal_golden_plan(2);
        assert_eq!(plan.all_meas_settings().len(), 1);
        assert_eq!(plan.all_prep_settings().len(), 4);
        assert_eq!(
            estimated_settings(&plan, ReconstructionMethod::Eigenstate),
            5.0
        );
    }

    #[test]
    fn estimated_settings_matches_enumeration_on_small_plans() {
        for k in 1..=3usize {
            let plan = BasisPlan::standard(k);
            assert_eq!(
                estimated_settings(&plan, ReconstructionMethod::Eigenstate),
                plan.total_settings() as f64,
                "K={k}"
            );
        }
    }

    #[test]
    fn analyze_is_clean_on_the_golden_ansatz() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let diags = analyze(&circuit, &cut, &ExecutionOptions::default());
        assert!(diags.is_clean(), "unexpected findings: {diags}");
    }

    /// An ideal backend whose seeding discipline is disavowed — stands in
    /// for a third-party backend sampling from an OS entropy source.
    struct NondeterministicBackend(qcut_device::ideal::IdealBackend);

    impl Backend for NondeterministicBackend {
        fn name(&self) -> &str {
            "nondet"
        }
        fn num_qubits(&self) -> usize {
            self.0.num_qubits()
        }
        fn timing(&self) -> &qcut_device::timing::TimingModel {
            self.0.timing()
        }
        fn run(
            &self,
            circuit: &Circuit,
            shots: u64,
        ) -> Result<qcut_device::backend::ExecutionResult, qcut_device::backend::BackendError>
        {
            self.0.run(circuit, shots)
        }
        fn deterministic_seeding(&self) -> bool {
            false
        }
    }

    fn cached_options() -> ExecutionOptions {
        ExecutionOptions {
            cache: Some(std::sync::Arc::new(qcut_cache::WarmCache::open(
                CacheConfig::in_memory(),
            ))),
            ..Default::default()
        }
    }

    #[test]
    fn qa401_fires_only_with_cache_on_a_nondeterministic_backend() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let nondet = NondeterministicBackend(qcut_device::ideal::IdealBackend::new(1));
        let options = cached_options();

        let diags = analyze_with_backend(&circuit, &cut, &options, &nondet);
        assert!(
            diags.contains(LintCode::CacheNondeterministicSeeding),
            "cache + nondeterministic backend must warn: {diags}"
        );

        // Deterministic backend: clean.
        let ideal = qcut_device::ideal::IdealBackend::new(1);
        assert!(!analyze_with_backend(&circuit, &cut, &options, &ideal)
            .contains(LintCode::CacheNondeterministicSeeding));
        // No cache: clean even on the nondeterministic backend.
        assert!(
            !analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &nondet)
                .contains(LintCode::CacheNondeterministicSeeding)
        );
        // Backend-free analyze: the discipline is unknown, so skip.
        assert!(!analyze(&circuit, &cut, &options).contains(LintCode::CacheNondeterministicSeeding));
    }

    #[test]
    fn qa402_fires_when_one_entry_cannot_fit_the_byte_budget() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let starved = ExecutionOptions {
            cache: Some(std::sync::Arc::new(qcut_cache::WarmCache::open(
                CacheConfig::in_memory().with_byte_budget(8),
            ))),
            ..Default::default()
        };
        let diags = analyze(&circuit, &cut, &starved);
        assert!(
            diags.contains(LintCode::CacheByteBudgetThrash),
            "an 8-byte budget cannot hold any histogram entry: {diags}"
        );
        // The default budget comfortably fits the planned entries.
        assert!(
            !analyze(&circuit, &cut, &cached_options()).contains(LintCode::CacheByteBudgetThrash)
        );
    }

    #[test]
    fn qa403_static_header_check_flags_foreign_and_accepts_valid_files() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let path = std::env::temp_dir().join(format!("qcut-qa403-{}.qwc", std::process::id()));
        let opts_at = |path: &std::path::Path| ExecutionOptions {
            cache: Some(std::sync::Arc::new(qcut_cache::WarmCache::open(
                CacheConfig::at_path(path),
            ))),
            ..Default::default()
        };

        // Missing file: a cold start is the normal first run, not a finding.
        std::fs::remove_file(&path).ok();
        assert!(!analyze(&circuit, &cut, &opts_at(&path)).contains(LintCode::CacheDegraded));

        // Foreign bytes: flagged.
        std::fs::write(&path, b"PNG\x89 or whatever this is").expect("write temp file");
        assert!(analyze(&circuit, &cut, &opts_at(&path)).contains(LintCode::CacheDegraded));

        // A genuinely persisted cache: clean.
        let writer = qcut_cache::WarmCache::open(CacheConfig::at_path(&path));
        writer.take_degradation();
        writer.persist().expect("persist empty cache");
        assert!(!analyze(&circuit, &cut, &opts_at(&path)).contains(LintCode::CacheDegraded));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn qa501_fires_for_a_fault_prone_backend_without_retries() {
        use qcut_device::fault::FaultInjectingBackend;
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let flaky = FaultInjectingBackend::new(qcut_device::ideal::IdealBackend::new(1))
            .with_fault_probability(0.2, 7);

        // Default RetryPolicy is a single attempt: warn.
        let diags = analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &flaky);
        assert!(
            diags.contains(LintCode::FaultProneNoRetry),
            "fault-prone backend + no retries must warn: {diags}"
        );

        // Retries enabled: clean.
        let retrying = ExecutionOptions {
            retry: RetryPolicy::with_attempts(3),
            ..Default::default()
        };
        assert!(!analyze_with_backend(&circuit, &cut, &retrying, &flaky)
            .contains(LintCode::FaultProneNoRetry));

        // A transparent wrapper (no fault schedule) is not fault-prone.
        let plain = FaultInjectingBackend::new(qcut_device::ideal::IdealBackend::new(1));
        assert!(
            !analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &plain)
                .contains(LintCode::FaultProneNoRetry)
        );

        // Backend-free analyze: the fault discipline is unknown, so skip.
        assert!(!analyze(&circuit, &cut, &ExecutionOptions::default())
            .contains(LintCode::FaultProneNoRetry));
    }

    #[test]
    fn qa502_fires_when_the_timeout_undercuts_predicted_job_durations() {
        use qcut_device::timing::TimingModel;
        use std::time::Duration;
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let timed = qcut_device::ideal::IdealBackend::new(1).with_timing(TimingModel::ibm_like());
        let with_timeout = |timeout| ExecutionOptions {
            retry: RetryPolicy {
                per_job_timeout: Some(timeout),
                ..RetryPolicy::with_attempts(2)
            },
            ..Default::default()
        };

        // 1 ns cannot fit any ibm-like job: every planned node is doomed.
        let diags = analyze_with_backend(
            &circuit,
            &cut,
            &with_timeout(Duration::from_nanos(1)),
            &timed,
        );
        assert!(
            diags.contains(LintCode::TimeoutBelowJobDuration),
            "1 ns timeout must flag every planned node: {diags}"
        );

        // A generous deadline: clean.
        assert!(!analyze_with_backend(
            &circuit,
            &cut,
            &with_timeout(Duration::from_secs(3600)),
            &timed
        )
        .contains(LintCode::TimeoutBelowJobDuration));
        // No deadline at all: clean.
        assert!(
            !analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &timed)
                .contains(LintCode::TimeoutBelowJobDuration)
        );
        // Instantaneous timing model: nothing can exceed the deadline.
        let instant = qcut_device::ideal::IdealBackend::new(1);
        assert!(!analyze_with_backend(
            &circuit,
            &cut,
            &with_timeout(Duration::from_nanos(1)),
            &instant
        )
        .contains(LintCode::TimeoutBelowJobDuration));
        // Backend-free analyze: no timing model, so skip.
        assert!(
            !analyze(&circuit, &cut, &with_timeout(Duration::from_nanos(1)))
                .contains(LintCode::TimeoutBelowJobDuration)
        );
    }

    #[test]
    fn qa503_fires_for_degrade_with_sic_preparations() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let sic_degrade = ExecutionOptions {
            method: ReconstructionMethod::Sic,
            failure: FailurePolicy::Degrade,
            ..Default::default()
        };
        let diags = analyze(&circuit, &cut, &sic_degrade);
        assert!(
            diags.contains(LintCode::DegradeUnsalvageable),
            "SIC + Degrade must warn: {diags}"
        );

        // SIC with the default Fail policy: clean.
        let sic_fail = ExecutionOptions {
            method: ReconstructionMethod::Sic,
            ..Default::default()
        };
        assert!(!analyze(&circuit, &cut, &sic_fail).contains(LintCode::DegradeUnsalvageable));
        // Eigenstate + Degrade on the standard plan: salvageable, clean.
        let eig_degrade = ExecutionOptions {
            failure: FailurePolicy::Degrade,
            ..Default::default()
        };
        assert!(!analyze(&circuit, &cut, &eig_degrade).contains(LintCode::DegradeUnsalvageable));
    }

    /// An empty context for exercising single lints directly.
    fn bare_ctx(config: &AnalysisConfig) -> AnalysisContext<'_> {
        AnalysisContext {
            circuit: None,
            cut: None,
            fragments: None,
            plan: None,
            allocation: None,
            method: ReconstructionMethod::Eigenstate,
            dedup: true,
            graph: None,
            cache: None,
            backend_deterministic: None,
            retry: None,
            failure: None,
            fault_prone: None,
            timing: None,
            pool: None,
            config,
        }
    }

    #[test]
    fn qa503_fires_when_a_cut_already_neglects_two_bases() {
        // The pipeline always analyzes the standard plan, so the saturated
        // arm is exercised against a hand-built context, the same way
        // engine-level callers can lint their own plans.
        let mut plan = BasisPlan::standard(2);
        assert!(plan.try_neglect(1, qcut_math::Pauli::X));
        assert!(plan.try_neglect(1, qcut_math::Pauli::Y));
        let config = AnalysisConfig::default();
        let ctx = AnalysisContext {
            plan: Some(&plan),
            failure: Some(FailurePolicy::Degrade),
            ..bare_ctx(&config)
        };
        let mut sink = Sink::new(&config);
        DegradeUnsalvageableLint.check(&ctx, &mut sink);
        let diags = sink.finish();
        assert!(
            diags.contains(LintCode::DegradeUnsalvageable),
            "a cut at two neglects cannot degrade further: {diags}"
        );
        assert!(diags.to_string().contains("[1]"), "names the cut: {diags}");

        // One neglect per cut still leaves room: clean.
        let roomy = BasisPlan::with_neglected(vec![Some(qcut_math::Pauli::Y), None]);
        let ctx = AnalysisContext {
            plan: Some(&roomy),
            failure: Some(FailurePolicy::Degrade),
            ..bare_ctx(&config)
        };
        let mut sink = Sink::new(&config);
        DegradeUnsalvageableLint.check(&ctx, &mut sink);
        assert!(!sink.finish().contains(LintCode::DegradeUnsalvageable));
    }

    #[test]
    fn qa601_flags_a_dominated_cut_and_accepts_the_dominant_one() {
        // Cutting after the T leaves a widened (proof-free) 9-setting cut;
        // cutting qubit 1 after the CX is provably golden in two bases with
        // zero remaining entangling crossings — strictly better everywhere.
        let mut c = Circuit::new(2);
        c.h(0);
        c.t(0);
        c.cx(0, 1);
        c.h(1);
        let promoted = ExecutionOptions {
            analysis: AnalysisConfig::default()
                .with_override(LintCode::DominatedCutPlacement, Severity::Warn),
            ..Default::default()
        };
        let diags = analyze(&c, &CutSpec::single(0, 1), &promoted);
        assert!(
            diags.contains(LintCode::DominatedCutPlacement),
            "the post-T cut is dominated: {diags}"
        );
        assert!(
            !analyze(&c, &CutSpec::single(1, 0), &promoted)
                .contains(LintCode::DominatedCutPlacement),
            "nothing dominates the proven-golden zero-crossing cut"
        );
        // Default severity is allow: the finding is suppressed (and the
        // lint body never runs).
        assert!(
            !analyze(&c, &CutSpec::single(0, 1), &ExecutionOptions::default())
                .contains(LintCode::DominatedCutPlacement)
        );
    }

    #[test]
    fn qa602_reports_cone_dead_gates_but_not_effective_identities() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.s(0); // measure-dead: nothing after it on any wire
        c.rz(0.0, 1); // dead too, but as a single-gate identity (QA003)
        let config =
            AnalysisConfig::default().with_override(LintCode::OutOfConeDeadGate, Severity::Warn);
        let ctx = AnalysisContext {
            circuit: Some(&c),
            ..bare_ctx(&config)
        };
        let mut sink = Sink::new(&config);
        OutOfConeDeadGateLint.check(&ctx, &mut sink);
        let diags = sink.finish();
        assert!(diags.contains(LintCode::OutOfConeDeadGate));
        let rendered = diags.to_string();
        assert!(rendered.contains("instruction #2"), "{rendered}");
        assert!(
            !rendered.contains("instruction #3"),
            "effective identities stay QA003's turf: {rendered}"
        );
    }

    #[test]
    fn qa603_recommends_prove_static_for_provable_golden_bases() {
        // The golden ansatz is real (not Clifford): the real-component
        // argument proves Y, which the standard plan measures anyway.
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let promoted = ExecutionOptions {
            analysis: AnalysisConfig::default()
                .with_override(LintCode::ProvableGoldenUndetected, Severity::Warn),
            ..Default::default()
        };
        let diags = analyze(&circuit, &cut, &promoted);
        assert!(
            diags.contains(LintCode::ProvableGoldenUndetected),
            "provable Y left undetected must surface: {diags}"
        );
        assert!(
            diags.to_string().contains("ProveStatic"),
            "the finding names the fix: {diags}"
        );
    }

    fn pool_of(members: usize, capacity: usize) -> qcut_device::pool::BackendPool {
        use qcut_device::pool::{BackendPool, PlacementPolicy};
        let mut pool = BackendPool::new(PlacementPolicy::RoundRobin);
        for i in 0..members {
            pool = pool.with_backend(
                qcut_device::ideal::IdealBackend::new(i as u64 + 1).with_capacity(capacity),
            );
        }
        pool
    }

    #[test]
    fn qa701_denies_nodes_wider_than_every_pool_member() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let cramped = pool_of(2, 2);
        let diags = analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &cramped);
        assert!(
            diags.contains(LintCode::PoolCapacityInfeasible),
            "2-qubit members cannot seat the planned fragments: {diags}"
        );
        assert!(diags.has_deny(), "QA701 denies by default: {diags}");

        // Roomy members: clean.
        assert!(!analyze_with_backend(
            &circuit,
            &cut,
            &ExecutionOptions::default(),
            &pool_of(2, 32)
        )
        .contains(LintCode::PoolCapacityInfeasible));
        // A bare backend has no member roster: skip, even when cramped.
        let bare = qcut_device::ideal::IdealBackend::new(1).with_capacity(2);
        assert!(
            !analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &bare)
                .contains(LintCode::PoolCapacityInfeasible)
        );
    }

    #[test]
    fn qa702_warns_for_a_cached_pool_with_distinct_fingerprints() {
        use qcut_device::pool::{BackendPool, PlacementPolicy};
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        // Different capacities → different default fingerprints.
        let hetero = BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(qcut_device::ideal::IdealBackend::new(1))
            .with_backend(qcut_device::ideal::IdealBackend::new(2).with_capacity(16));
        let diags = analyze_with_backend(&circuit, &cut, &cached_options(), &hetero);
        assert!(
            diags.contains(LintCode::PoolFingerprintMixing),
            "cache + mixed fingerprints must warn: {diags}"
        );

        // Homogeneous members share one fingerprint: clean.
        assert!(
            !analyze_with_backend(&circuit, &cut, &cached_options(), &pool_of(2, 32))
                .contains(LintCode::PoolFingerprintMixing)
        );
        // No cache: nothing to mix.
        let hetero = BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(qcut_device::ideal::IdealBackend::new(1))
            .with_backend(qcut_device::ideal::IdealBackend::new(2).with_capacity(16));
        assert!(
            !analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &hetero)
                .contains(LintCode::PoolFingerprintMixing)
        );
    }

    #[test]
    fn qa703_reports_idle_members_when_promoted() {
        let (circuit, cut) = GoldenAnsatz::new(5, 3).build();
        let promoted = ExecutionOptions {
            analysis: AnalysisConfig::default()
                .with_override(LintCode::PoolIdleMember, Severity::Warn),
            ..Default::default()
        };
        let crowded = pool_of(16, 32);
        let diags = analyze_with_backend(&circuit, &cut, &promoted, &crowded);
        assert!(
            diags.contains(LintCode::PoolIdleMember),
            "16 members over a handful of nodes must report idleness: {diags}"
        );

        // Two members over the standard plan's nodes: everyone works.
        assert!(
            !analyze_with_backend(&circuit, &cut, &promoted, &pool_of(2, 32))
                .contains(LintCode::PoolIdleMember)
        );
        // Default severity is allow: suppressed.
        assert!(
            !analyze_with_backend(&circuit, &cut, &ExecutionOptions::default(), &crowded)
                .contains(LintCode::PoolIdleMember)
        );
    }

    #[test]
    fn diagnostics_display_is_line_per_finding() {
        let d = Diagnostics {
            items: vec![
                Diagnostic {
                    code: LintCode::IdleQubit,
                    severity: Severity::Warn,
                    message: "one".into(),
                },
                Diagnostic {
                    code: LintCode::InvalidCut,
                    severity: Severity::Deny,
                    message: "two".into(),
                },
            ],
        };
        let s = d.to_string();
        assert!(s.contains("QA002 [warn] one"));
        assert!(s.contains("QA101 [deny] two"));
        assert!(d.has_deny());
        assert_eq!(d.warnings().count(), 1);
        assert_eq!(Diagnostics::default().to_string(), "no findings");
    }
}
