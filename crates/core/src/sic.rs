//! SIC-basis downstream preparation (paper §II-B).
//!
//! The eigenstate preparation scheme is *overcomplete*: 6 states per cut
//! where 4 informationally-complete ones suffice. The paper notes that the
//! symmetric informationally-complete (SIC) basis achieves `O(4^K)` circuit
//! evaluations "without invoking golden circuit cutting formalism …
//! However, employing the SICC basis would require more involved
//! implementation, namely, solving linear systems".
//!
//! This module implements exactly that: downstream fragments are prepared
//! in the `4^K` tetrahedral SIC states, and each reconstruction Pauli `M`
//! is expanded over SIC projectors by solving the 4×4 frame system
//! `Σ_j α_j^{(P)} |ψ_j><ψ_j| = P` once per Pauli.

use crate::basis::{encode_paulis, BasisPlan};
use crate::fragment::{Fragment, FragmentRole, Fragments};
use crate::jobgraph::{Channel, GraphFailure, JobGraph};
use crate::reconstruction::{contract, extract_bits, CoefficientTensor};
use crate::retry::RetryPolicy;
use qcut_circuit::circuit::Circuit;
use qcut_device::backend::Backend;
use qcut_math::{solve_real, Pauli, SicState};
use qcut_sim::basis_change::sic_prep_circuit;
use qcut_sim::counts::Counts;
use qcut_sim::statevector::StateVector;
use std::collections::HashMap;
use std::time::Duration;

/// The expansion coefficients `α_j` with `P = Σ_j α_j |ψ_j><ψ_j|` for each
/// Pauli `P` over the four SIC states.
#[derive(Debug, Clone)]
pub struct SicFrame {
    /// `alpha[pauli_index][sic_index]`, Pauli order `I, X, Y, Z`.
    alpha: [[f64; 4]; 4],
}

impl SicFrame {
    /// Solves the frame system once.
    pub fn new() -> Self {
        // Build the 4×4 system: columns are SIC states, rows are the Pauli
        // coordinates (tr-normalised): ρ_j = ½(I + n_j·σ) has coordinates
        // (½, ½n_x, ½n_y, ½n_z) in the (I, X, Y, Z)/1 basis.
        let mut b = [0.0f64; 16];
        for (j, s) in SicState::ALL.iter().enumerate() {
            let [x, y, z] = s.bloch();
            b[j] = 0.5; // I row
            b[4 + j] = 0.5 * x;
            b[8 + j] = 0.5 * y;
            b[12 + j] = 0.5 * z;
        }
        let mut alpha = [[0.0f64; 4]; 4];
        for (pi, target) in [
            [1.0, 0.0, 0.0, 0.0], // I
            [0.0, 1.0, 0.0, 0.0], // X
            [0.0, 0.0, 1.0, 0.0], // Y
            [0.0, 0.0, 0.0, 1.0], // Z
        ]
        .iter()
        .enumerate()
        {
            let x = solve_real(&b, 4, target).expect("SIC frame is invertible");
            alpha[pi] = [x[0], x[1], x[2], x[3]];
        }
        SicFrame { alpha }
    }

    /// Coefficients for one Pauli.
    pub fn coefficients(&self, p: Pauli) -> [f64; 4] {
        self.alpha[match p {
            Pauli::I => 0,
            Pauli::X => 1,
            Pauli::Y => 2,
            Pauli::Z => 3,
        }]
    }
}

impl Default for SicFrame {
    fn default() -> Self {
        Self::new()
    }
}

/// Downstream data gathered under SIC preparations: one histogram per
/// `SicState^K` combination.
#[derive(Debug, Clone)]
pub struct SicData {
    /// Keyed by base-4 encoding of the SIC combination.
    pub counts: HashMap<u64, Counts>,
    /// Shots per preparation.
    pub shots_per_setting: u64,
    /// Number of downstream subcircuits executed (`4^K`).
    pub subcircuits: usize,
    /// Simulated device time spent.
    pub simulated_device_time: Duration,
}

/// Base-4 encoding of a SIC combination.
pub fn encode_sic(states: &[SicState]) -> u64 {
    let mut key = 0u64;
    for &s in states.iter().rev() {
        key = key * 4
            + match s {
                SicState::S0 => 0,
                SicState::S1 => 1,
                SicState::S2 => 2,
                SicState::S3 => 3,
            };
    }
    key
}

/// All `4^K` SIC combinations.
pub fn all_sic_settings(num_cuts: usize) -> Vec<Vec<SicState>> {
    let mut out = vec![Vec::new()];
    for _ in 0..num_cuts {
        let mut next = Vec::with_capacity(out.len() * 4);
        for prefix in &out {
            for s in SicState::ALL {
                let mut v = prefix.clone();
                v.push(s);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// The downstream fragment with SIC preparations prepended.
pub fn build_sic_circuit(fragment: &Fragment, states: &[SicState]) -> Circuit {
    assert_eq!(fragment.role, FragmentRole::Downstream);
    assert_eq!(states.len(), fragment.cut_ports.len());
    let mut c = Circuit::new(fragment.circuit.num_qubits());
    for (k, &s) in states.iter().enumerate() {
        c.extend(&sic_prep_circuit(s, c.num_qubits(), fragment.cut_ports[k]));
    }
    c.extend(&fragment.circuit);
    c
}

/// Runs all `4^K` SIC preparations of the downstream fragment as one
/// batched, deduplicated engine submission.
pub fn gather_sic<B: Backend + ?Sized>(
    backend: &B,
    fragment: &Fragment,
    num_cuts: usize,
    shots_per_setting: u64,
    parallel: bool,
) -> Result<SicData, Box<GraphFailure>> {
    gather_sic_with(
        backend,
        fragment,
        num_cuts,
        shots_per_setting,
        parallel,
        &RetryPolicy::default(),
    )
}

/// Like [`gather_sic`] but honoring a [`RetryPolicy`] inside the engine.
///
/// SIC preparations are informationally complete, not overcomplete: a
/// permanently failed preparation makes the 4×4 frame system singular, so
/// there is no degraded salvage for SIC data — callers must either retry
/// until delivery or fail the run.
pub fn gather_sic_with<B: Backend + ?Sized>(
    backend: &B,
    fragment: &Fragment,
    num_cuts: usize,
    shots_per_setting: u64,
    parallel: bool,
    retry: &RetryPolicy,
) -> Result<SicData, Box<GraphFailure>> {
    let mut graph = JobGraph::new();
    crate::planner::add_sic_jobs(&mut graph, fragment, num_cuts, &[shots_per_setting]);
    let mut run = graph.execute_with(backend, parallel, retry)?;
    let counts = run.take_channel(Channel::SicPrep);
    Ok(SicData {
        subcircuits: counts.len(),
        counts,
        shots_per_setting,
        simulated_device_time: run.stats.simulated_device_time,
    })
}

/// Downstream coefficient tensor from SIC data: for each reconstruction
/// string `M`, `D[M][b2] = Σ_t (Π_k α^{M_k}_{t_k}) P(b2 | prep t)`.
pub fn sic_downstream_tensor(
    fragment: &Fragment,
    plan: &BasisPlan,
    data: &SicData,
) -> CoefficientTensor {
    let dists: HashMap<u64, Vec<f64>> = data
        .counts
        .iter()
        .map(|(&key, counts)| {
            let d = counts.marginal(&fragment.output_locals).to_distribution();
            (key, d.values().to_vec())
        })
        .collect();
    assemble_sic(fragment, plan, &dists)
}

/// Exact SIC downstream tensor via state-vector simulation.
pub fn exact_sic_downstream_tensor(fragment: &Fragment, plan: &BasisPlan) -> CoefficientTensor {
    let dists: HashMap<u64, Vec<f64>> = all_sic_settings(plan.num_cuts())
        .iter()
        .map(|states| {
            let circuit = build_sic_circuit(fragment, states);
            let probs = StateVector::from_circuit(&circuit).probabilities();
            let dim = 1usize << fragment.num_outputs();
            let mut out = vec![0.0f64; dim];
            for (idx, &p) in probs.iter().enumerate() {
                out[extract_bits(idx as u64, &fragment.output_locals) as usize] += p;
            }
            (encode_sic(states), out)
        })
        .collect();
    assemble_sic(fragment, plan, &dists)
}

fn assemble_sic(
    fragment: &Fragment,
    plan: &BasisPlan,
    dists: &HashMap<u64, Vec<f64>>,
) -> CoefficientTensor {
    let frame = SicFrame::new();
    let n2 = fragment.num_outputs();
    let dim = 1usize << n2;
    let num_cuts = plan.num_cuts();
    let settings = all_sic_settings(num_cuts);
    let mut entries = HashMap::new();
    for m in plan.all_recon_strings() {
        let coeffs: Vec<[f64; 4]> = m.iter().map(|&p| frame.coefficients(p)).collect();
        let mut vec = vec![0.0f64; dim];
        for states in &settings {
            let mut weight = 1.0f64;
            for (k, &s) in states.iter().enumerate() {
                let j = match s {
                    SicState::S0 => 0,
                    SicState::S1 => 1,
                    SicState::S2 => 2,
                    SicState::S3 => 3,
                };
                weight *= coeffs[k][j];
            }
            if weight == 0.0 {
                continue;
            }
            let q = &dists[&encode_sic(states)];
            for (slot, &p) in vec.iter_mut().zip(q) {
                *slot += weight * p;
            }
        }
        entries.insert(encode_paulis(&m), vec);
    }
    CoefficientTensor::from_entries(entries, n2)
}

/// SIC-variant exact reconstruction (upstream tensor is the standard
/// Pauli-measurement one).
pub fn exact_sic_reconstruct(
    fragments: &Fragments,
    plan: &BasisPlan,
) -> qcut_stats::distribution::Distribution {
    let up = crate::reconstruction::exact_upstream_tensor(&fragments.upstream, plan);
    let down = exact_sic_downstream_tensor(&fragments.downstream, plan);
    contract(fragments, plan, &up, &down)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};
    use qcut_math::Matrix;
    use qcut_stats::distance::total_variation_distance;
    use qcut_stats::distribution::Distribution;

    #[test]
    fn frame_expands_every_pauli() {
        let frame = SicFrame::new();
        for p in Pauli::ALL {
            let alpha = frame.coefficients(p);
            let mut sum = Matrix::zeros(2, 2);
            for (j, s) in SicState::ALL.iter().enumerate() {
                sum = &sum + &s.density().scale(qcut_math::c64(alpha[j], 0.0));
            }
            assert!(
                sum.approx_eq(&p.matrix(), 1e-9),
                "frame expansion failed for {p}"
            );
        }
    }

    #[test]
    fn identity_coefficients_are_half() {
        // Σ_j ½ ρ_j = I by the SIC resolution of identity.
        let frame = SicFrame::new();
        for a in frame.coefficients(Pauli::I) {
            assert!((a - 0.5).abs() < 1e-9, "identity coefficient {a}");
        }
    }

    #[test]
    fn sic_settings_count_is_four_to_k() {
        assert_eq!(all_sic_settings(1).len(), 4);
        assert_eq!(all_sic_settings(2).len(), 16);
        assert_eq!(all_sic_settings(3).len(), 64);
    }

    #[test]
    fn encode_sic_is_injective() {
        let keys: std::collections::HashSet<u64> =
            all_sic_settings(3).iter().map(|s| encode_sic(s)).collect();
        assert_eq!(keys.len(), 64);
    }

    #[test]
    fn exact_sic_reconstruction_equals_uncut() {
        for seed in 0..4 {
            let (circuit, spec) = GoldenAnsatz::new(5, seed).build();
            let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
            let recon = exact_sic_reconstruct(&frags, &BasisPlan::standard(1));
            let sv = StateVector::from_circuit(&circuit);
            let t = Distribution::from_values(5, sv.probabilities());
            let d = total_variation_distance(&recon, &t);
            assert!(d < 1e-9, "seed {seed}: SIC reconstruction off by {d}");
        }
    }

    #[test]
    fn sic_with_golden_plan_still_reconstructs() {
        // Golden plan shrinks the contraction (3 Paulis) while SIC keeps
        // 4 preparations; result must still be exact on the golden ansatz.
        let (circuit, spec) = GoldenAnsatz::new(5, 3).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
        let recon = exact_sic_reconstruct(&frags, &plan);
        let sv = StateVector::from_circuit(&circuit);
        let t = Distribution::from_values(5, sv.probabilities());
        assert!(total_variation_distance(&recon, &t) < 1e-9);
    }

    #[test]
    fn multi_cut_sic_reconstruction() {
        let (circuit, spec) = MultiCutAnsatz::new(2, 5).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let recon = exact_sic_reconstruct(&frags, &BasisPlan::standard(2));
        let sv = StateVector::from_circuit(&circuit);
        let t = Distribution::from_values(circuit.num_qubits(), sv.probabilities());
        assert!(total_variation_distance(&recon, &t) < 1e-9);
    }

    #[test]
    fn empirical_sic_reconstruction_converges() {
        use qcut_device::ideal::IdealBackend;
        let (circuit, spec) = GoldenAnsatz::new(5, 7).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let backend = IdealBackend::new(11);
        let data = gather_sic(&backend, &frags.downstream, 1, 60_000, true).unwrap();
        assert_eq!(data.subcircuits, 4);
        let up = crate::reconstruction::exact_upstream_tensor(&frags.upstream, &plan);
        let down = sic_downstream_tensor(&frags.downstream, &plan, &data);
        let recon = contract(&frags, &plan, &up, &down);
        let sv = StateVector::from_circuit(&circuit);
        let t = Distribution::from_values(5, sv.probabilities());
        let d = total_variation_distance(&recon.clip_renormalize(), &t);
        assert!(d < 0.05, "empirical SIC reconstruction off by {d}");
    }

    #[test]
    fn sic_uses_fewer_preparations_than_eigenstates() {
        // The headline trade-off: 4^K vs 6^K.
        for k in 1..=3 {
            let sic = all_sic_settings(k).len();
            let eigen = BasisPlan::standard(k).all_prep_settings().len();
            assert!(sic < eigen, "K={k}: {sic} !< {eigen}");
            assert_eq!(sic, 4usize.pow(k as u32));
            assert_eq!(eigen, 6usize.pow(k as u32));
        }
    }
}
