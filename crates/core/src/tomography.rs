//! Tomography experiment planning: the concrete subcircuit variants that
//! realise a [`BasisPlan`] on a pair of fragments.
//!
//! * Upstream variant for setting `(b_1 … b_K)`: the fragment circuit with
//!   a basis rotation appended on each cut port, measured entirely in Z.
//! * Downstream variant for preparation `(t_1 … t_K)`: the prep circuit on
//!   each cut port prepended to the fragment circuit.
//!
//! The number of variants is the paper's headline cost:
//! `3^{K_r} 2^{K_g} + 6^{K_r} 4^{K_g}` (9 vs 6 for a single cut).

use crate::basis::{BasisPlan, MeasBasis};
use crate::fragment::{Fragment, FragmentRole, Fragments};
use qcut_circuit::circuit::Circuit;
use qcut_math::PrepState;
use qcut_sim::basis_change::{append_basis_rotation, prep_circuit};

/// One upstream subcircuit variant.
#[derive(Debug, Clone)]
pub struct UpstreamVariant {
    /// The measurement setting per cut.
    pub setting: Vec<MeasBasis>,
    /// The executable circuit (rotations appended).
    pub circuit: Circuit,
}

/// One downstream subcircuit variant.
#[derive(Debug, Clone)]
pub struct DownstreamVariant {
    /// The preparation per cut.
    pub preparation: Vec<PrepState>,
    /// The executable circuit (preps prepended).
    pub circuit: Circuit,
}

/// The full experiment plan for one cut circuit.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// Upstream variants, one per measurement setting.
    pub upstream: Vec<UpstreamVariant>,
    /// Downstream variants, one per preparation combination.
    pub downstream: Vec<DownstreamVariant>,
}

impl ExperimentPlan {
    /// Builds all subcircuit variants for `fragments` under `plan`.
    pub fn build(fragments: &Fragments, plan: &BasisPlan) -> Self {
        assert_eq!(
            plan.num_cuts(),
            fragments.num_cuts,
            "basis plan cut count does not match fragments"
        );
        let upstream = plan
            .all_meas_settings()
            .into_iter()
            .map(|setting| UpstreamVariant {
                circuit: build_upstream_circuit(&fragments.upstream, &setting),
                setting,
            })
            .collect();
        let downstream = plan
            .all_prep_settings()
            .into_iter()
            .map(|preparation| DownstreamVariant {
                circuit: build_downstream_circuit(&fragments.downstream, &preparation),
                preparation,
            })
            .collect();
        ExperimentPlan {
            upstream,
            downstream,
        }
    }

    /// Total number of subcircuits (the quantity the golden method
    /// reduces by 33 % for one cut).
    pub fn num_subcircuits(&self) -> usize {
        self.upstream.len() + self.downstream.len()
    }

    /// Total shots for a per-setting budget.
    pub fn total_shots(&self, shots_per_setting: u64) -> u64 {
        self.num_subcircuits() as u64 * shots_per_setting
    }
}

/// The upstream fragment with basis rotations appended on its cut ports.
pub fn build_upstream_circuit(fragment: &Fragment, setting: &[MeasBasis]) -> Circuit {
    assert_eq!(fragment.role, FragmentRole::Upstream, "wrong fragment role");
    assert_eq!(setting.len(), fragment.cut_ports.len(), "setting arity");
    let mut c = fragment.circuit.clone();
    for (k, &basis) in setting.iter().enumerate() {
        append_basis_rotation(&mut c, basis.pauli(), fragment.cut_ports[k]);
    }
    c
}

/// The downstream fragment with preparation circuits prepended on its cut
/// ports.
pub fn build_downstream_circuit(fragment: &Fragment, preparation: &[PrepState]) -> Circuit {
    assert_eq!(
        fragment.role,
        FragmentRole::Downstream,
        "wrong fragment role"
    );
    assert_eq!(
        preparation.len(),
        fragment.cut_ports.len(),
        "preparation arity"
    );
    let mut c = Circuit::new(fragment.circuit.num_qubits());
    for (k, &state) in preparation.iter().enumerate() {
        let prep = prep_circuit(state, c.num_qubits(), fragment.cut_ports[k]);
        c.extend(&prep);
    }
    c.extend(&fragment.circuit);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};
    use qcut_math::Pauli;
    use qcut_sim::statevector::StateVector;

    fn fragments_for(width: usize, seed: u64) -> Fragments {
        let (c, spec) = GoldenAnsatz::new(width, seed).build();
        Fragmenter::fragment(&c, &spec).unwrap()
    }

    #[test]
    fn standard_plan_has_nine_subcircuits() {
        let frags = fragments_for(5, 0);
        let plan = ExperimentPlan::build(&frags, &BasisPlan::standard(1));
        assert_eq!(plan.upstream.len(), 3);
        assert_eq!(plan.downstream.len(), 6);
        assert_eq!(plan.num_subcircuits(), 9);
        assert_eq!(plan.total_shots(1000), 9000);
    }

    #[test]
    fn golden_plan_has_six_subcircuits() {
        let frags = fragments_for(5, 0);
        let basis = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
        let plan = ExperimentPlan::build(&frags, &basis);
        assert_eq!(plan.num_subcircuits(), 6);
        // 4.5e5 -> 3.0e5 shots at 1000 shots/setting × 50 trials (paper
        // Fig. 5 accounting): per trial it is 9000 vs 6000.
        assert_eq!(plan.total_shots(1000), 6000);
    }

    #[test]
    fn multi_cut_variant_counts() {
        let (c, spec) = MultiCutAnsatz::new(2, 1).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let standard = ExperimentPlan::build(&frags, &BasisPlan::standard(2));
        assert_eq!(standard.upstream.len(), 9);
        assert_eq!(standard.downstream.len(), 36);
        let golden = ExperimentPlan::build(
            &frags,
            &BasisPlan::with_neglected(vec![Some(Pauli::Y), Some(Pauli::Y)]),
        );
        assert_eq!(golden.upstream.len(), 4);
        assert_eq!(golden.downstream.len(), 16);
    }

    #[test]
    fn upstream_variants_differ_only_in_rotations() {
        let frags = fragments_for(5, 1);
        let plan = ExperimentPlan::build(&frags, &BasisPlan::standard(1));
        let base_len = frags.upstream.circuit.len();
        for v in &plan.upstream {
            let extra = v.circuit.len() - base_len;
            match v.setting[0] {
                MeasBasis::Z => assert_eq!(extra, 0),
                MeasBasis::X => assert_eq!(extra, 1), // H
                MeasBasis::Y => assert_eq!(extra, 2), // Sdg, H
            }
            // The prefix is the fragment itself.
            assert_eq!(
                &v.circuit.instructions()[..base_len],
                frags.upstream.circuit.instructions()
            );
        }
    }

    #[test]
    fn downstream_variants_prepare_the_right_state() {
        // For each variant, simulating just the prep prefix must put the
        // cut port into the declared state.
        let frags = fragments_for(5, 2);
        let basis = BasisPlan::standard(1);
        let plan = ExperimentPlan::build(&frags, &basis);
        let port = frags.downstream.cut_ports[0];
        for v in &plan.downstream {
            let prep_len = v.circuit.len() - frags.downstream.circuit.len();
            let mut prefix = Circuit::new(v.circuit.num_qubits());
            for inst in &v.circuit.instructions()[..prep_len] {
                prefix.push(inst.gate.clone(), &inst.qubits);
            }
            let sv = StateVector::from_circuit(&prefix);
            let rho = sv.reduced_density_matrix(&[port]);
            let want = v.preparation[0].density();
            assert!(
                rho.approx_eq(&want, 1e-10),
                "prep {:?} produced the wrong state",
                v.preparation
            );
        }
    }

    #[test]
    fn variants_keep_fragment_width() {
        let frags = fragments_for(7, 3);
        let plan = ExperimentPlan::build(&frags, &BasisPlan::standard(1));
        for v in &plan.upstream {
            assert_eq!(v.circuit.num_qubits(), frags.upstream.width());
        }
        for v in &plan.downstream {
            assert_eq!(v.circuit.num_qubits(), frags.downstream.width());
        }
    }

    #[test]
    #[should_panic(expected = "does not match fragments")]
    fn plan_arity_mismatch_panics() {
        let frags = fragments_for(5, 0);
        ExperimentPlan::build(&frags, &BasisPlan::standard(2));
    }
}
