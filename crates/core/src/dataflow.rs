//! Dataflow analysis over the circuit DAG: stabilizer-domain golden
//! proofs and the light-cone cut adviser.
//!
//! Two abstract domains from `qcut-circuit` feed this module:
//!
//! * the **stabilizer tableau domain**
//!   ([`qcut_circuit::tableau::StabilizerTableau`]) — Clifford
//!   instructions transform generators exactly, non-Clifford instructions
//!   widen their support to ⊤;
//! * the **light-cone domain** ([`qcut_circuit::cone::LightCones`]) —
//!   forward/backward instruction reachability over wire edges.
//!
//! On the first domain, [`prove_golden_bases`] turns the surviving
//! generators at the end of an upstream fragment into *symbolic proofs*
//! that Pauli coefficients vanish: every upstream coefficient the
//! reconstruction consumes is an expectation `tr((|b1><b1| ⊗ M) ρ)`, the
//! projector expands over Z-strings, and any Pauli string that
//! anticommutes with a surviving stabilizer has expectation exactly zero.
//! Whether *all* strings carrying a candidate basis at one cut anticommute
//! somewhere reduces to the insolubility of a GF(2) linear system — no
//! simulation, no shots. [`crate::golden::GoldenPolicy::ProveStatic`]
//! feeds the resulting plan into the neglect pipeline with
//! `detection_shots == 0`.
//!
//! On both domains, [`cut_report`] scores every wire edge of a circuit as
//! a cut candidate — entangling-gate crossings, settings after
//! statically-proven neglect, sampling overhead, and (for fragments small
//! enough to simulate) a planning-time [`variance_from_schedule`]
//! surrogate — the static cost model behind the `QA6xx` advisory lints
//! and the ROADMAP's automatic cut-point discovery.

use crate::allocation::{schedule_for_plan, ShotAllocation};
use crate::analysis::AnalysisConfig;
use crate::basis::BasisPlan;
use crate::fragment::{Fragment, Fragmenter};
use crate::golden::ExactDetector;
use crate::reconstruction::{exact_downstream_tensor, exact_upstream_tensor};
use crate::variance::variance_from_schedule;
use qcut_circuit::circuit::Circuit;
use qcut_circuit::cone::LightCones;
use qcut_circuit::cut::CutSpec;
use qcut_circuit::dag::CircuitDag;
use qcut_circuit::tableau::{StabilizerTableau, MAX_TABLEAU_QUBITS};
use qcut_math::Pauli;

/// Fragments wider than this are not statevector-simulated by the cut
/// adviser (the static facts are still computed for them).
const SIM_WIDTH_LIMIT: usize = 10;

/// Total shot budget of the adviser's planning-time variance surrogate.
/// Candidates are compared at *equal total budget*, so a cut whose proven
/// plan needs fewer settings gets more shots per setting — the same
/// economy the golden pipeline banks at execution time.
const ADVISER_BUDGET: u64 = 9_000;

/// Proves negligible bases for each cut of an upstream fragment, by
/// stabilizer dataflow alone. Returns the proven bases per cut, in the
/// detector's `[Y, X, Z]` preference order.
///
/// Soundness: a proof here implies the exact upstream coefficients vanish
/// (what [`ExactDetector`] measures against its tolerance), regardless of
/// widening — widening only *loses* proofs, never fabricates them. On a
/// fully Clifford fragment the tableau stays full-rank and the proof is
/// also complete: every basis the exact detector would find is proven.
///
/// Fragments wider than [`MAX_TABLEAU_QUBITS`] get no proofs (empty sets).
pub fn prove_golden_bases(upstream: &Fragment, num_cuts: usize) -> Vec<Vec<Pauli>> {
    assert_eq!(
        upstream.cut_ports.len(),
        num_cuts,
        "fragment has {} cut ports, caller claims {num_cuts}",
        upstream.cut_ports.len()
    );
    if upstream.width() > MAX_TABLEAU_QUBITS {
        return vec![Vec::new(); num_cuts];
    }
    let tableau = StabilizerTableau::from_circuit(&upstream.circuit);
    let real = RealComponents::new(upstream);
    (0..num_cuts)
        .map(|cut| {
            [Pauli::Y, Pauli::X, Pauli::Z]
                .into_iter()
                .filter(|&p| {
                    stabilizer_proves_zero(
                        &tableau,
                        &upstream.output_locals,
                        &upstream.cut_ports,
                        cut,
                        p,
                    ) || (p == Pauli::Y && real.proves_y(cut))
                })
                .collect()
        })
        .collect()
}

/// The [`BasisPlan`] built from [`prove_golden_bases`]: proven bases are
/// neglected in the detector's `[Y, X, Z]` order, capped at two per cut
/// (one basis must survive to carry the identity marginal) — exactly the
/// shape [`ExactDetector::detect`] produces, so on fully Clifford
/// fragments the two plans are identical.
pub fn proven_plan(upstream: &Fragment, num_cuts: usize) -> BasisPlan {
    let proofs = prove_golden_bases(upstream, num_cuts);
    let mut plan = BasisPlan::standard(num_cuts);
    for (cut, proven) in proofs.iter().enumerate() {
        for &p in proven {
            // `try_neglect` enforces the two-per-cut cap; a refused third
            // proof is simply not banked.
            let _ = plan.try_neglect(cut, p);
        }
    }
    plan
}

/// Whether the stabilizer certificate proves every upstream coefficient
/// carrying `candidate` at cut `cut` to be exactly zero.
///
/// Every consumed coefficient is `tr((|b1><b1|_outputs ⊗ M_ports) ρ)`;
/// expanding the projector over Z-strings, the full family of relevant
/// observables is `Q = Z_S ⊗ M' ⊗ candidate` with `S` ranging over output
/// subsets and `M'` over Pauli strings on the *other* ports. If every `Q`
/// in the family anticommutes with some surviving generator, every
/// coefficient is zero. The complement — some `Q` commutes with all
/// generators — is a GF(2) linear system in the free bits of `Q` (one
/// symplectic-product equation per generator); the basis is proven golden
/// exactly when Gaussian elimination shows that system insoluble.
fn stabilizer_proves_zero(
    tableau: &StabilizerTableau,
    outputs: &[usize],
    ports: &[usize],
    cut: usize,
    candidate: Pauli,
) -> bool {
    let qk = ports[cut];
    let (px, pz) = pauli_bits(candidate);
    let others: Vec<usize> = (0..ports.len())
        .filter(|&i| i != cut)
        .map(|i| ports[i])
        .collect();
    let o = outputs.len();
    let num_vars = o + 2 * others.len();
    assert!(
        num_vars < 128,
        "GF(2) system exceeds the u128 row representation"
    );
    let const_bit = 1u128 << num_vars;
    let var_mask = const_bit - 1;

    // One equation per generator g: <Q, g> = 0, i.e.
    //   Σ_j s_j·gx(out_j)  +  Σ_i ( x_i·gz(port_i) + z_i·gx(port_i) )
    //     = candidate_x·gz(q_k) + candidate_z·gx(q_k)   (mod 2)
    // with variables s_j (Q's Z-bit on output j — Q is Z-type there) and
    // (x_i, z_i) (Q's bits on the other ports).
    let mut pivot_of: Vec<Option<u128>> = vec![None; num_vars];
    for g in tableau.generators() {
        let mut row: u128 = 0;
        for (j, &q) in outputs.iter().enumerate() {
            if (g.x >> q) & 1 == 1 {
                row |= 1 << j;
            }
        }
        for (t, &q) in others.iter().enumerate() {
            if (g.z >> q) & 1 == 1 {
                row |= 1 << (o + 2 * t);
            }
            if (g.x >> q) & 1 == 1 {
                row |= 1 << (o + 2 * t + 1);
            }
        }
        let rhs = (px && (g.z >> qk) & 1 == 1) ^ (pz && (g.x >> qk) & 1 == 1);
        if rhs {
            row |= const_bit;
        }
        // Reduce against the pivots collected so far; the pivot of each
        // stored row is its lowest set variable bit, so the lowest set bit
        // strictly increases and the loop terminates.
        loop {
            let vars = row & var_mask;
            if vars == 0 {
                if row != 0 {
                    // 0 = 1: no commuting Q exists — proven.
                    return true;
                }
                break;
            }
            let v = vars.trailing_zeros() as usize;
            match pivot_of[v] {
                Some(p) => row ^= p,
                None => {
                    pivot_of[v] = Some(row);
                    break;
                }
            }
        }
    }
    false
}

fn pauli_bits(p: Pauli) -> (bool, bool) {
    match p {
        Pauli::I => (false, false),
        Pauli::X => (true, false),
        Pauli::Y => (true, true),
        Pauli::Z => (false, true),
    }
}

/// The real-amplitude component argument (the paper's designed golden
/// point, which arbitrary-angle `Ry` ansätze realise *outside* the
/// Clifford fragment the tableau can track): qubits are grouped into
/// connected components by shared multi-qubit instructions; a component
/// whose gates are all real produces a real-amplitude factor state. A
/// single `Y` inside a real factor is a purely imaginary Hermitian
/// observable, so its expectation vanishes identically.
struct RealComponents {
    // Per-qubit component root; only test introspection reads it back
    // out (`component_of`), the lint path goes through `proves_y`.
    #[cfg_attr(not(test), allow(dead_code))]
    root: Vec<usize>,
    component_real: Vec<bool>,
    port_roots: Vec<usize>,
}

impl RealComponents {
    fn new(upstream: &Fragment) -> Self {
        let n = upstream.width();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut q: usize) -> usize {
            while parent[q] != q {
                parent[q] = parent[parent[q]];
                q = parent[q];
            }
            q
        }
        for inst in upstream.circuit.instructions() {
            for w in inst.qubits.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let root: Vec<usize> = (0..n).map(|q| find(&mut parent, q)).collect();
        let mut component_real = vec![true; n];
        for inst in upstream.circuit.instructions() {
            if !inst.gate.is_real() {
                component_real[root[inst.qubits[0]]] = false;
            }
        }
        let port_roots = upstream.cut_ports.iter().map(|&q| root[q]).collect();
        RealComponents {
            root,
            component_real,
            port_roots,
        }
    }

    /// Whether the real-component argument proves `Y` golden at `cut`:
    /// the port's component is all-real *and* contains no other cut port
    /// (two ports in one factor would only prove the joint `Y⊗Y`-type
    /// strings zero, not each single-`Y` string — e.g. a Bell-pair factor
    /// has `<Y⊗Y> = -1`).
    fn proves_y(&self, cut: usize) -> bool {
        let r = self.port_roots[cut];
        self.component_real[r]
            && self
                .port_roots
                .iter()
                .enumerate()
                .all(|(i, &pr)| i == cut || pr != r)
    }

    #[cfg(test)]
    fn component_of(&self, q: usize) -> usize {
        self.root[q]
    }
}

/// One wire edge scored as a cut candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CutCandidate {
    /// Qubit whose wire the edge lies on.
    pub qubit: usize,
    /// Wire position (instruction count on the wire before the cut) —
    /// feed straight into [`CutSpec::single`].
    pub position: usize,
    /// Instruction index upstream of the edge.
    pub from: usize,
    /// Instruction index downstream of the edge.
    pub to: usize,
    /// Whether cutting here yields a valid bipartition.
    pub feasible: bool,
    /// Two-qubit instructions inside the forward cone of `to` — work the
    /// downstream fragment still has to entangle after the cut.
    pub entangling_crossings: usize,
    /// Bases proven negligible by the stabilizer/real-component prover.
    pub proven_golden: Vec<Pauli>,
    /// Bases the exact (simulating) detector finds beyond the proofs.
    /// Empty when simulation was skipped (fragment too wide or analysis
    /// disabled).
    pub likely_golden: Vec<Pauli>,
    /// Total subcircuit settings after proven neglect (9 standard, 6
    /// golden, 3 doubly-golden for a single cut).
    pub settings: usize,
    /// Sampling-overhead factor of this cut under the proven plan (the
    /// `9^K` family; `K = 1` here).
    pub sampling_overhead: f64,
    /// Planning-time RMS shot-noise surrogate from
    /// [`variance_from_schedule`] at an equal total budget; `None` when
    /// simulation was skipped.
    pub predicted_rms: Option<f64>,
    /// Composite score, lower is better; infinite for infeasible edges.
    pub score: f64,
}

/// The cut adviser's output: every wire edge scored, best-first index.
#[derive(Debug, Clone, PartialEq)]
pub struct CutReport {
    /// All candidates, in wire-edge (DAG) order.
    pub candidates: Vec<CutCandidate>,
    /// Index into `candidates` of the lowest-scoring feasible edge.
    pub best: Option<usize>,
}

impl CutReport {
    /// The winning candidate, if any edge is feasible.
    pub fn best_candidate(&self) -> Option<&CutCandidate> {
        self.best.map(|i| &self.candidates[i])
    }
}

/// Scores every wire edge of `circuit` as a single-cut candidate.
///
/// The static facts (feasibility, crossings, proofs, settings, overhead)
/// are always computed. The simulation-backed enrichment (`likely_golden`,
/// `predicted_rms`) runs only when `options.enabled` and both fragments
/// fit under the adviser's width limit; candidates whose sampling
/// overhead exceeds `options.max_sampling_overhead` are marked
/// infeasible. Re-exported as `analysis::cut_report`.
pub fn cut_report(circuit: &Circuit, options: &AnalysisConfig) -> CutReport {
    let dag = CircuitDag::new(circuit);
    let cones = LightCones::new(&dag);
    let insts = circuit.instructions();
    let mut candidates = Vec::with_capacity(dag.wire_edges().len());
    for edge in dag.wire_edges() {
        let spec = CutSpec::single(edge.qubit, edge.position);
        let fragments = match spec.validate(circuit) {
            Ok(_) => Fragmenter::fragment(circuit, &spec).ok(),
            Err(_) => None,
        };
        let entangling_crossings = insts
            .iter()
            .enumerate()
            .skip(edge.to)
            .filter(|&(j, inst)| cones.reaches(edge.to, j) && inst.qubits.len() == 2)
            .count();
        let mut candidate = CutCandidate {
            qubit: edge.qubit,
            position: edge.position,
            from: edge.from,
            to: edge.to,
            feasible: false,
            entangling_crossings,
            proven_golden: Vec::new(),
            likely_golden: Vec::new(),
            settings: BasisPlan::standard(1).total_settings(),
            sampling_overhead: 9.0,
            predicted_rms: None,
            score: f64::INFINITY,
        };
        if let Some(frags) = fragments {
            candidate.feasible = true;
            candidate.proven_golden = prove_golden_bases(&frags.upstream, 1).remove(0);
            let plan = proven_plan(&frags.upstream, 1);
            candidate.settings = plan.total_settings();
            candidate.sampling_overhead = plan.total_settings() as f64;
            let simulate = options.enabled
                && frags.upstream.width() <= SIM_WIDTH_LIMIT
                && frags.downstream.width() <= SIM_WIDTH_LIMIT;
            if simulate {
                let detected = ExactDetector::default().detect(&frags.upstream, 1);
                candidate.likely_golden = detected.neglected()[0]
                    .iter()
                    .copied()
                    .filter(|p| !candidate.proven_golden.contains(p))
                    .collect();
                let up = exact_upstream_tensor(&frags.upstream, &plan);
                let down = exact_downstream_tensor(&frags.downstream, &plan);
                if let Ok(schedule) = schedule_for_plan(
                    &plan,
                    ShotAllocation::TotalBudget {
                        total: ADVISER_BUDGET,
                    },
                ) {
                    candidate.predicted_rms = Some(
                        variance_from_schedule(&frags, &plan, &up, &down, &schedule).rms_error(),
                    );
                }
            }
            if candidate.sampling_overhead > options.max_sampling_overhead {
                candidate.feasible = false;
            }
        }
        if candidate.feasible {
            // The variance surrogate is the primary score; the static
            // fallback (settings × crossing pressure, normalised so both
            // stay O(1)) ranks edges the simulator cannot reach.
            candidate.score = candidate.predicted_rms.unwrap_or_else(|| {
                (candidate.settings as f64 / 9.0) * (1.0 + candidate.entangling_crossings as f64)
            });
        }
        candidates.push(candidate);
    }
    let best = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.feasible)
        .min_by(|(_, a), (_, b)| a.score.total_cmp(&b.score))
        .map(|(i, _)| i);
    CutReport { candidates, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{resolve_static_policy, GoldenPolicy};
    use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};

    /// A Clifford-upstream golden workload: H/S/CX/CZ block on qubits
    /// 0..=2 leaving the cut qubit 2 in a real separable state, then a
    /// downstream block.
    fn clifford_golden_circuit() -> (Circuit, CutSpec) {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.s(0);
        c.h(2);
        c.cz(1, 2);
        let pos = c.instructions().iter().filter(|i| i.acts_on(2)).count() - 1;
        c.cx(2, 3);
        c.ry(0.7, 3);
        (c, CutSpec::single(2, pos))
    }

    fn upstream_of(c: &Circuit, spec: &CutSpec) -> Fragment {
        Fragmenter::fragment(c, spec).unwrap().upstream
    }

    #[test]
    fn proves_y_on_the_clifford_golden_workload() {
        let (c, spec) = clifford_golden_circuit();
        let up = upstream_of(&c, &spec);
        let proofs = prove_golden_bases(&up, 1);
        assert!(proofs[0].contains(&Pauli::Y), "{proofs:?}");
        // And agrees with the exact detector.
        let detected = ExactDetector::default().detect(&up, 1);
        assert_eq!(proven_plan(&up, 1), detected, "plans must agree");
    }

    #[test]
    fn prover_agrees_with_detector_on_a_trivial_zero_port() {
        // Upstream leaves the cut qubit in |0>: X and Y provably golden,
        // Z must survive.
        let mut c = Circuit::new(2);
        c.h(1);
        c.h(1);
        c.cx(1, 0);
        let spec = CutSpec::single(1, 1);
        let up = upstream_of(&c, &spec);
        let proofs = prove_golden_bases(&up, 1);
        assert!(proofs[0].contains(&Pauli::X));
        assert!(proofs[0].contains(&Pauli::Y));
        assert!(!proofs[0].contains(&Pauli::Z));
        assert_eq!(proven_plan(&up, 1), ExactDetector::default().detect(&up, 1));
    }

    #[test]
    fn widening_keeps_the_prover_sound_but_incomplete() {
        // The golden ansatz upstream is real but not Clifford: the tableau
        // widens away, yet the real-component argument still proves Y.
        let (c, spec) = GoldenAnsatz::new(5, 3).build();
        let up = upstream_of(&c, &spec);
        let proofs = prove_golden_bases(&up, 1);
        assert!(proofs[0].contains(&Pauli::Y), "{proofs:?}");
        // Soundness: everything proven is also detected.
        let detected = ExactDetector::default().detect(&up, 1);
        for p in &proofs[0] {
            assert!(
                detected.neglected()[0].contains(p),
                "proved {p} but the detector disagrees"
            );
        }
    }

    #[test]
    fn multi_cut_proofs_respect_port_entanglement() {
        // Multi-cut golden ansatz: Y provable at each cut by the
        // real-component argument only if the ports sit in distinct
        // components; the soundness check below is the real assertion.
        let (c, spec) = MultiCutAnsatz::new(2, 7).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let proofs = prove_golden_bases(&frags.upstream, 2);
        let detected = ExactDetector::default().detect(&frags.upstream, 2);
        for (cut, proven) in proofs.iter().enumerate() {
            for p in proven {
                assert!(
                    detected.neglected()[cut].contains(p),
                    "cut {cut}: proved {p} unsoundly"
                );
            }
        }
    }

    #[test]
    fn entangled_real_ports_do_not_prove_single_y() {
        // Two cut ports inside one real component (joined by a CX): the
        // single-Y argument must refuse, even though each gate is real.
        let mut c = Circuit::new(4);
        c.ry(0.9, 0);
        c.ry(0.4, 1);
        c.cx(0, 1);
        let p0 = c.instructions().iter().filter(|i| i.acts_on(0)).count() - 1;
        let p1 = c.instructions().iter().filter(|i| i.acts_on(1)).count() - 1;
        c.cx(0, 2);
        c.cx(1, 3);
        let spec = CutSpec::new(vec![
            qcut_circuit::cut::CutLocation {
                qubit: 0,
                after_op: p0,
            },
            qcut_circuit::cut::CutLocation {
                qubit: 1,
                after_op: p1,
            },
        ]);
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let up = frags.upstream;
        let real = RealComponents::new(&up);
        assert_eq!(
            real.component_of(up.cut_ports[0]),
            real.component_of(up.cut_ports[1])
        );
        assert!(!real.proves_y(0));
        assert!(!real.proves_y(1));
        // The GF(2) path may still prove bases; whatever it proves must be
        // sound.
        let proofs = prove_golden_bases(&up, 2);
        let detected = ExactDetector::default().detect(&up, 2);
        for (cut, proven) in proofs.iter().enumerate() {
            for p in proven {
                assert!(detected.neglected()[cut].contains(p));
            }
        }
    }

    #[test]
    fn prove_static_policy_resolves_to_the_proven_plan() {
        let (c, spec) = clifford_golden_circuit();
        let up = upstream_of(&c, &spec);
        let plan = resolve_static_policy(&GoldenPolicy::ProveStatic, &up, 1)
            .expect("static policy resolves without a backend");
        assert_eq!(plan, proven_plan(&up, 1));
        assert!(plan.num_golden() >= 1);
    }

    #[test]
    fn cut_report_scores_every_wire_edge() {
        let (c, _) = GoldenAnsatz::new(5, 11).build();
        let report = cut_report(&c, &AnalysisConfig::default());
        assert_eq!(
            report.candidates.len(),
            CircuitDag::new(&c).wire_edges().len()
        );
        let best = report.best_candidate().expect("ansatz has feasible cuts");
        assert!(best.feasible);
        assert!(best.score.is_finite());
        // Feasible candidates got the simulation enrichment at this width.
        assert!(best.predicted_rms.is_some());
    }

    #[test]
    fn cut_report_prefers_the_designed_golden_cut() {
        // On the golden ansatz, the designed cut is provably (by
        // simulation) golden: 6 settings vs 9 — the adviser must rank a
        // candidate with the designed cut's (qubit, position) best.
        let (c, spec) = GoldenAnsatz::new(5, 4).build();
        let report = cut_report(&c, &AnalysisConfig::default());
        let best = report.best_candidate().expect("feasible cut exists");
        let designed = spec.cuts()[0];
        assert_eq!(
            (best.qubit, best.position),
            (designed.qubit, designed.after_op),
            "adviser picked {best:?}"
        );
    }

    #[test]
    fn disabled_config_skips_simulation_but_keeps_static_facts() {
        let (c, _) = GoldenAnsatz::new(5, 2).build();
        let report = cut_report(&c, &AnalysisConfig::disabled());
        assert!(report.best.is_some());
        for cand in &report.candidates {
            assert!(cand.predicted_rms.is_none());
            assert!(cand.likely_golden.is_empty());
        }
    }

    #[test]
    fn infeasible_edges_score_infinite() {
        let (c, _) = GoldenAnsatz::new(5, 6).build();
        let report = cut_report(&c, &AnalysisConfig::default());
        assert!(report
            .candidates
            .iter()
            .all(|cand| cand.feasible || cand.score.is_infinite()));
        // The ansatz has edges interior to one side — not every edge is a
        // valid bipartition.
        assert!(report.candidates.iter().any(|cand| !cand.feasible));
    }
}
