//! # qcut-core
//!
//! The paper's contribution: quantum circuit cutting with **golden cutting
//! points** — neglecting basis elements whose upstream coefficients vanish
//! (Chen, Hansen, et al., IPPS 2023, arXiv:2304.04093).
//!
//! The crate implements, from the cut specification down to the final
//! distribution:
//!
//! * [`fragment`] — bipartitioning a circuit along validated wire cuts;
//! * [`basis`] — the measurement/preparation/reconstruction enumerations
//!   and how golden cuts shrink them (`3→2`, `6→4`, `4→3` per cut);
//! * [`tomography`] — concrete subcircuit variants;
//! * [`jobgraph`] — the batched, deduplicating JobGraph engine every
//!   backend execution (eigenstate, SIC, online detection, uncut) routes
//!   through: structurally identical subcircuits execute once and fan back
//!   out to every consumer;
//! * [`planner`] — graph builders translating a [`basis::BasisPlan`] into
//!   engine jobs;
//! * [`allocation`] — shot-allocation policies over the settings: the
//!   paper's uniform protocol, exact total-budget splits, usage-weighted
//!   budgets, and the two-round variance-adaptive pilot → refine policy;
//! * [`execution`] — parallel fragment data gathering on any backend;
//! * [`reconstruction`] — the tensor contraction of paper Eq. 13/14, plus
//!   exact (infinite-shot) variants used for verification and detection;
//! * [`variance`] — shot-noise propagation through the contraction:
//!   error bars, schedule scoring, and the adaptive policy's Neyman
//!   weights;
//! * [`golden`] — a-priori, exact, online, and statically-proven
//!   golden-point detection (online realises the paper's §IV future work);
//! * [`dataflow`] — abstract interpretation over the circuit DAG: the
//!   stabilizer-tableau domain behind
//!   [`golden::GoldenPolicy::ProveStatic`]'s zero-shot symbolic golden
//!   proofs, and the light-cone domain behind the wire-edge cut adviser
//!   ([`dataflow::cut_report`]);
//! * [`sic`] — the SIC-basis preparation alternative discussed in §II-B;
//! * [`observable`] — Pauli/diagonal observable estimation on top of the
//!   reconstructed distribution;
//! * [`retry`] — fault-tolerance policies: [`retry::RetryPolicy`]
//!   (attempts / deterministic backoff / per-job timeout, honored inside
//!   the engine) and [`retry::FailurePolicy`] (fail with a typed salvage
//!   error vs degrade to a renormalized surviving plan);
//! * [`report`] — the accounting every run returns ([`report::RunReport`]);
//! * [`analysis`] — the static lint pass ([`analysis::analyze`]) every
//!   run is gated on: coded diagnostics over the circuit, the cut, the
//!   predicted schedule, the planned job graph, and the warm-start cache
//!   configuration, before any shot;
//! * [`pipeline`] — the one-call API: [`pipeline::CutExecutor`], with
//!   optional cross-run warm-start caching
//!   ([`pipeline::ExecutionOptions::cache`], backed by `qcut-cache`).
//!
//! ```
//! use qcut_circuit::ansatz::GoldenAnsatz;
//! use qcut_core::golden::GoldenPolicy;
//! use qcut_core::pipeline::{CutExecutor, ExecutionOptions};
//! use qcut_device::ideal::IdealBackend;
//! use qcut_math::Pauli;
//!
//! let (circuit, cut) = GoldenAnsatz::new(5, 42).build();
//! let backend = IdealBackend::new(7);
//! let executor = CutExecutor::new(&backend);
//! let run = executor
//!     .run(
//!         &circuit,
//!         &cut,
//!         GoldenPolicy::KnownAPriori(vec![(0, Pauli::Y)]),
//!         &ExecutionOptions { shots_per_setting: 2000, ..Default::default() },
//!     )
//!     .unwrap();
//! assert_eq!(run.report.subcircuits_executed, 6); // not 9: Y neglected
//! ```

#![forbid(unsafe_code)]

pub mod allocation;
pub mod analysis;
pub mod basis;
pub mod dataflow;
pub mod error;
pub mod execution;
pub mod fragment;
pub mod golden;
pub mod jobgraph;
pub mod observable;
pub mod pipeline;
pub mod planner;
pub mod reconstruction;
pub mod report;
pub mod retry;
pub mod sic;
pub mod tomography;
pub mod variance;

/// Cut specification types, re-exported from `qcut-circuit` for
/// convenience (they live there so ansatz generators can return them).
pub mod cut {
    pub use qcut_circuit::cut::{CutError, CutLocation, CutSpec};
}

/// Common re-exports.
pub mod prelude {
    pub use crate::allocation::{
        schedule, schedule_for_plan, schedule_sic, usage_counts, AllocationError, ShotAllocation,
        ShotSchedule,
    };
    pub use crate::analysis::{
        analyze, analyze_with_backend, lint_graph, registry, AnalysisConfig, AnalysisContext,
        Diagnostic, Diagnostics, Layer, Lint, LintCode, Severity,
    };
    pub use crate::basis::{BasisPlan, MeasBasis};
    pub use crate::cut::{CutError, CutLocation, CutSpec};
    pub use crate::dataflow::{
        cut_report, prove_golden_bases, proven_plan, CutCandidate, CutReport,
    };
    pub use crate::error::{ExecutionFailure, PipelineError};
    pub use crate::execution::{gather, gather_scheduled, gather_scheduled_with, FragmentData};
    pub use crate::fragment::{Fragment, FragmentError, FragmentRole, Fragmenter, Fragments};
    pub use crate::golden::{
        ExactDetector, GoldenPolicy, GoldenVerdict, OnlineConfig, OnlineDetector,
    };
    pub use crate::jobgraph::{
        Channel, ConsumerKey, GraphFailure, GraphRun, GraphStats, JobGraph, NodeFailure,
    };
    pub use crate::observable::{
        diagonalize_pauli, pauli_expectation, DiagonalObservable, PauliSumObservable,
    };
    pub use crate::pipeline::{
        CutExecutor, CutRun, ExecutionOptions, PostProcess, ReconstructionMethod, UncutRun,
    };
    pub use crate::planner::{add_downstream_jobs, add_sic_jobs, add_upstream_jobs, uncut_graph};
    pub use crate::reconstruction::{
        contract, downstream_tensor, exact_reconstruct, reconstruct, upstream_tensor,
        CoefficientTensor,
    };
    pub use crate::report::{FailureRecord, RunReport, UncutReport};
    pub use crate::retry::{Backoff, FailurePolicy, RetryPolicy};
    pub use crate::sic::{gather_sic, gather_sic_with, sic_downstream_tensor, SicData, SicFrame};
    pub use crate::tomography::ExperimentPlan;
    pub use crate::variance::{
        empirical_variance, reconstruction_variance, variance_from_schedule, variance_from_tensors,
        ReconstructionError,
    };
}

pub use prelude::*;
