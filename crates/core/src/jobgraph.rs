//! The JobGraph execution engine: one batched, deduplicating job-planning
//! layer that every backend execution in the workspace routes through.
//!
//! The paper's contribution is cutting the *number of subcircuit
//! executions* (neglecting basis elements shrinks `6^{K_r} 4^{K_g}`
//! variants); this module extends the same economy to the execution layer
//! itself. Callers register jobs as `(circuit, consumer, shots)` triples;
//! the graph keys each circuit by its [structural
//! hash](qcut_circuit::circuit::Circuit::structural_hash) so that
//! structurally identical subcircuits — across tomography settings, across
//! pipeline stages (online detection feeding the main gather), or across
//! reconstruction terms — become a single node. Execution is then one
//! batched [`Backend::run_batch`] submission, and each node's counts are
//! fanned back out to every consumer that asked for them.
//!
//! ```text
//! add_job(c, consumer, shots)  ──┐
//! add_job(c', consumer', shots) ─┼─▶ nodes (unique circuits, hash-keyed)
//! seed_counts(c, counts)  ───────┘        │
//!                                         ▼ execute(backend, parallel)
//!                     one run_batch over `max(shots) − cached` per node
//!                                         │
//!                                         ▼ fan-out
//!                    GraphRun: counts per consumer + dedup accounting
//! ```
//!
//! Determinism contract: nodes execute in insertion order, so on a
//! seed-deterministic backend a parallel `execute` is bit-identical to a
//! sequential one, and (absent duplicates) to the pre-engine per-job
//! submission order. The equivalence tests in `tests/integration_jobgraph.rs`
//! pin this down.
//!
//! # Example
//!
//! Two consumers of one circuit share a single execution at the larger
//! budget, and both receive the full merged histogram:
//!
//! ```
//! use qcut_circuit::circuit::Circuit;
//! use qcut_core::jobgraph::{Channel, JobGraph};
//! use qcut_device::ideal::IdealBackend;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let mut graph = JobGraph::new();
//! graph.add_job(bell.clone(), (Channel::UpstreamMeas, 0), 500);
//! graph.add_job(bell, (Channel::UpstreamMeas, 1), 800); // dedups
//!
//! let run = graph.execute(&IdealBackend::new(1), true).unwrap();
//! assert_eq!(run.stats.jobs_planned, 2);
//! assert_eq!(run.stats.jobs_executed, 1);   // one node serves both
//! assert_eq!(run.stats.shots_executed, 800); // max budget, executed once
//! assert_eq!(run.stats.shots_saved, 500);
//! let counts = run.counts(&(Channel::UpstreamMeas, 0)).unwrap();
//! assert_eq!(counts.total(), 800); // never less data than requested
//! ```

use crate::retry::RetryPolicy;
use qcut_circuit::circuit::Circuit;
use qcut_device::backend::{Backend, BackendError, BatchStats, JobSpec};
use qcut_device::pool::BackendPool;
use qcut_sim::counts::Counts;
use qcut_sim::prefix::{PrefixForest, PrefixProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Logical result channel a job's counts are delivered to. Together with a
/// dense per-channel key (see [`crate::basis::encode_meas`] and friends)
/// this identifies one consumer of execution results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Channel {
    /// Upstream fragment measured in a basis setting (key: `encode_meas`).
    UpstreamMeas,
    /// Downstream fragment under an eigenstate preparation (key:
    /// `encode_prep`).
    DownstreamPrep,
    /// Downstream fragment under a SIC preparation (key: `encode_sic`).
    SicPrep,
    /// Online golden detection batch (key: `encode_meas` of the setting).
    Detection,
    /// Uncut reference execution (key: caller-chosen, usually 0).
    Uncut,
}

/// Consumer identity: which channel, and which setting within it.
pub type ConsumerKey = (Channel, u64);

/// One unique circuit in the graph plus everyone who wants its counts.
#[derive(Debug, Clone)]
struct JobNode {
    circuit: Circuit,
    consumers: Vec<(ConsumerKey, u64)>,
    /// Counts already available without executing anything (seeded from an
    /// earlier stage, e.g. online-detection batches, or the warm-start
    /// cache).
    cached: Option<Counts>,
    /// How many of the `cached` shots came from the *cross-run* warm-start
    /// cache (vs in-process seeding) — attributed to `cache_shots_reused`
    /// rather than `shots_saved` in the accounting.
    cache_seeded: u64,
}

impl JobNode {
    /// Shots this node must deliver to satisfy its hungriest consumer.
    fn required_shots(&self) -> u64 {
        self.consumers.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }

    fn cached_shots(&self) -> u64 {
        self.cached.as_ref().map(|c| c.total()).unwrap_or(0)
    }
}

/// Dedup and batching accounting for one [`JobGraph::execute`] call.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Jobs registered by callers (one per `add_job`).
    pub jobs_planned: usize,
    /// Unique jobs actually submitted to the backend (`≤ jobs_planned`).
    pub jobs_executed: usize,
    /// Shots requested across all planned jobs.
    pub shots_requested: u64,
    /// Shots actually executed on the backend.
    pub shots_executed: u64,
    /// Shots that in-process reuse saved: structural dedup plus seeding
    /// from earlier stages of the *same* run (detection batches, the
    /// adaptive pilot round). Excludes warm-start cache reuse, which is
    /// attributed to `cache_shots_reused`; the exact split is
    /// `shots_requested = shots_executed + shots_saved + cache_shots_reused`.
    pub shots_saved: u64,
    /// Nodes whose histogram was served (at least partly) from the
    /// warm-start cache.
    pub cache_hits: u64,
    /// Shots served from warm-start cache entries instead of executing.
    pub cache_shots_reused: u64,
    /// Fork states served from the backend's tier-2 state cache (0 when
    /// the backend has none attached).
    pub states_reused: u64,
    /// Gate applications the backend performed simulating the batch
    /// (shared circuit prefixes counted once on prefix-sharing backends).
    pub gates_applied: u64,
    /// Gate applications a per-job simulation would have performed minus
    /// `gates_applied`: what prefix sharing saved (0 on non-sharing paths).
    pub gates_saved: u64,
    /// Sum of simulated device durations over executed jobs — including
    /// attempts that failed a per-job timeout (the device time was spent
    /// even though the counts were discarded).
    pub simulated_device_time: Duration,
    /// Host CPU time spent inside backend runs.
    pub host_time: Duration,
    /// Total per-job delivery attempts (`jobs_executed` when nothing was
    /// retried).
    pub attempts: u64,
    /// Job re-submissions after transient faults or timeouts
    /// (`attempts − jobs_executed`).
    pub jobs_retried: u64,
    /// Shots requested from nodes that failed permanently and delivered
    /// nothing. Extends the accounting split to `shots_requested =
    /// shots_executed + shots_saved + cache_shots_reused + shots_lost`.
    pub shots_lost: u64,
    /// Deterministic backoff accounting: the total delay a wall-clock
    /// retry loop would have waited between attempts. Never actually
    /// slept.
    pub backoff_wait: Duration,
    /// Jobs *delivered* by each pool member, indexed by member position
    /// (empty on single-backend runs). A job that failed over counts for
    /// the sibling that actually delivered it.
    pub jobs_per_member: Vec<u64>,
    /// Shots delivered by each pool member (empty on single-backend runs).
    pub shots_per_member: Vec<u64>,
    /// Simulated device time each pool member spent — including attempts
    /// that timed out (the device time was consumed even though the counts
    /// were discarded). The run's sharded wall-clock is the max entry;
    /// empty on single-backend runs.
    pub member_makespan: Vec<Duration>,
    /// Jobs a transiently failing member handed to a healthy sibling that
    /// then delivered them (pool runs only).
    pub jobs_failed_over: u64,
}

impl GraphStats {
    /// How well the pool's members shared the load: Σ member makespans /
    /// max member makespan — `N` when `N` members split the device time
    /// perfectly evenly, `1.0` when one member did everything (and on
    /// single-backend runs, which have no member accounting).
    pub fn pool_parallel_ratio(&self) -> f64 {
        let max = self
            .member_makespan
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0f64, f64::max);
        if max > 0.0 {
            let total: f64 = self.member_makespan.iter().map(Duration::as_secs_f64).sum();
            total / max
        } else {
            1.0
        }
    }

    /// Folds another execution's accounting into this one (used to combine
    /// detection rounds with the main gather).
    pub fn absorb(&mut self, other: &GraphStats) {
        self.jobs_planned += other.jobs_planned;
        self.jobs_executed += other.jobs_executed;
        self.shots_requested += other.shots_requested;
        self.shots_executed += other.shots_executed;
        self.shots_saved += other.shots_saved;
        self.cache_hits += other.cache_hits;
        self.cache_shots_reused += other.cache_shots_reused;
        self.states_reused += other.states_reused;
        self.gates_applied += other.gates_applied;
        self.gates_saved += other.gates_saved;
        self.simulated_device_time += other.simulated_device_time;
        self.host_time += other.host_time;
        self.attempts += other.attempts;
        self.jobs_retried += other.jobs_retried;
        self.shots_lost += other.shots_lost;
        self.backoff_wait += other.backoff_wait;
        self.jobs_failed_over += other.jobs_failed_over;
        // Per-member vectors add element-wise; runs against pools of
        // different sizes (or a pooled gather absorbed into a pool-less
        // detection round) widen to the larger member set.
        if self.jobs_per_member.len() < other.jobs_per_member.len() {
            self.jobs_per_member.resize(other.jobs_per_member.len(), 0);
        }
        for (a, b) in self.jobs_per_member.iter_mut().zip(&other.jobs_per_member) {
            *a += b;
        }
        if self.shots_per_member.len() < other.shots_per_member.len() {
            self.shots_per_member
                .resize(other.shots_per_member.len(), 0);
        }
        for (a, b) in self
            .shots_per_member
            .iter_mut()
            .zip(&other.shots_per_member)
        {
            *a += b;
        }
        if self.member_makespan.len() < other.member_makespan.len() {
            self.member_makespan
                .resize(other.member_makespan.len(), Duration::ZERO);
        }
        for (a, b) in self.member_makespan.iter_mut().zip(&other.member_makespan) {
            *a += *b;
        }
    }
}

/// One node that failed permanently: its retries (if any) were exhausted
/// or its error was deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFailure {
    /// Node index in graph insertion order.
    pub node: usize,
    /// Every consumer this node was serving — i.e. which basis settings
    /// lost their data.
    pub consumers: Vec<ConsumerKey>,
    /// The error of the final attempt.
    pub error: BackendError,
    /// Delivery attempts made before giving up.
    pub attempts: u32,
    /// Shots this node's consumers requested and never received.
    pub shots_lost: u64,
}

/// A graph execution with permanent node failures: the typed error names
/// the failed nodes *and* carries the salvage — every sibling that did
/// succeed, with full accounting — so callers never lose delivered data
/// to an unrelated node's failure.
#[derive(Debug)]
pub struct GraphFailure {
    /// Permanently failed nodes, in graph insertion order.
    pub failures: Vec<NodeFailure>,
    /// The surviving run: counts for every consumer whose node succeeded,
    /// plus the full [`GraphStats`] (including the failures' accounting).
    pub salvage: GraphRun,
}

impl GraphFailure {
    /// The first failed node's error (the conventional cause for
    /// `std::error::Error::source`).
    pub fn first_error(&self) -> Option<&BackendError> {
        self.failures.first().map(|f| &f.error)
    }

    /// Consumer keys that did receive counts (the salvage state).
    pub fn succeeded(&self) -> Vec<ConsumerKey> {
        let mut keys: Vec<ConsumerKey> = self.salvage.counts.keys().copied().collect();
        keys.sort();
        keys
    }
}

impl fmt::Display for GraphFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self
            .failures
            .first()
            .map(|n| n.error.to_string())
            .unwrap_or_else(|| "unknown".to_string());
        write!(
            f,
            "{} node(s) failed permanently (first: node {} after {} attempt(s): {first}); \
             salvaged {} consumer(s), lost {} shot(s)",
            self.failures.len(),
            self.failures.first().map(|n| n.node).unwrap_or(0),
            self.failures.first().map(|n| n.attempts).unwrap_or(0),
            self.salvage.counts.len(),
            self.salvage.stats.shots_lost,
        )
    }
}

impl std::error::Error for GraphFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.first_error()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Results of one graph execution: per-consumer counts plus accounting.
#[derive(Debug)]
pub struct GraphRun {
    counts: HashMap<ConsumerKey, Counts>,
    /// Batching/dedup accounting.
    pub stats: GraphStats,
}

impl GraphRun {
    /// Counts delivered to one consumer.
    pub fn counts(&self, key: &ConsumerKey) -> Option<&Counts> {
        self.counts.get(key)
    }

    /// Drains every consumer of `channel` into a key → counts map. The
    /// delivered histogram totals are the *realized* per-setting shots —
    /// ≥ a consumer's requested budget when deduplicated nodes merged to a
    /// larger max budget or seeded counts topped a node up
    /// ([`crate::execution::FragmentData::from_counts`] derives the
    /// realized schedule from exactly these totals).
    pub fn take_channel(&mut self, channel: Channel) -> HashMap<u64, Counts> {
        let keys: Vec<ConsumerKey> = self
            .counts
            .keys()
            .filter(|(c, _)| *c == channel)
            .copied()
            .collect();
        keys.into_iter()
            .map(|k| (k.1, self.counts.remove(&k).expect("key just listed")))
            .collect()
    }
}

/// A batched, deduplicating execution plan over one backend submission.
#[derive(Debug, Clone)]
pub struct JobGraph {
    nodes: Vec<JobNode>,
    /// Structural hash → node indices with that hash (collision chain).
    index: HashMap<u64, Vec<usize>>,
    dedup: bool,
    jobs_planned: usize,
}

impl Default for JobGraph {
    /// Same as [`JobGraph::new`]: dedup enabled. (A derived `Default`
    /// would silently yield the no-dedup ablation graph.)
    fn default() -> Self {
        Self::new()
    }
}

impl JobGraph {
    /// An empty graph with structural dedup enabled (the default).
    pub fn new() -> Self {
        JobGraph {
            nodes: Vec::new(),
            index: HashMap::new(),
            dedup: true,
            jobs_planned: 0,
        }
    }

    /// An empty graph that never merges jobs — every `add_job` becomes its
    /// own backend submission and [`JobGraph::seed_counts`] is a no-op.
    /// This is the ablation baseline for the dedup benchmarks and the
    /// engine-invariance proptests.
    pub fn without_dedup() -> Self {
        JobGraph {
            dedup: false,
            ..Self::new()
        }
    }

    /// Whether structural dedup is enabled.
    pub fn dedup_enabled(&self) -> bool {
        self.dedup
    }

    /// Jobs registered so far (fan-out edges, not unique circuits).
    pub fn jobs_planned(&self) -> usize {
        self.jobs_planned
    }

    /// Unique circuits in the graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// True when some registered job delivers to `channel`.
    pub fn has_channel(&self, channel: Channel) -> bool {
        self.nodes
            .iter()
            .any(|n| n.consumers.iter().any(|((c, _), _)| *c == channel))
    }

    /// Locates the node holding a structurally identical circuit.
    fn find_node(&self, circuit: &Circuit, hash: u64) -> Option<usize> {
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&i| self.nodes[i].circuit == *circuit)
    }

    /// Locates a node holding this exact `(circuit, consumer)` pair (used
    /// to keep the no-double-count contract even with dedup disabled).
    fn find_consumer_node(
        &self,
        circuit: &Circuit,
        hash: u64,
        consumer: ConsumerKey,
    ) -> Option<usize> {
        self.index.get(&hash)?.iter().copied().find(|&i| {
            self.nodes[i].circuit == *circuit
                && self.nodes[i].consumers.iter().any(|&(k, _)| k == consumer)
        })
    }

    /// Registers one job: `consumer` wants `shots` shots of `circuit`.
    /// Structurally identical circuits share a node (when dedup is on), so
    /// the batch executes each unique circuit once with the maximum
    /// requested budget and fans the counts back out. Re-registering the
    /// same `(circuit, consumer)` pair raises that consumer's demand to the
    /// larger budget rather than delivering (and double-counting) the
    /// node's histogram twice (the contract holds in both dedup modes).
    pub fn add_job(&mut self, circuit: Circuit, consumer: ConsumerKey, shots: u64) {
        self.jobs_planned += 1;
        let hash = circuit.structural_hash();
        if let Some(i) = self.find_consumer_node(&circuit, hash, consumer) {
            let (_, demand) = self.nodes[i]
                .consumers
                .iter_mut()
                .find(|(k, _)| *k == consumer)
                .expect("find_consumer_node matched this key");
            *demand = (*demand).max(shots);
            return;
        }
        if self.dedup {
            if let Some(i) = self.find_node(&circuit, hash) {
                self.nodes[i].consumers.push((consumer, shots));
                return;
            }
        }
        let i = self.nodes.len();
        self.nodes.push(JobNode {
            circuit,
            consumers: vec![(consumer, shots)],
            cached: None,
            cache_seeded: 0,
        });
        self.index.entry(hash).or_default().push(i);
    }

    /// The unique circuits in insertion order — which is also backend
    /// submission order (the planner relies on this to make its
    /// trie-locality emission order reach the device layer intact).
    pub fn node_circuits(&self) -> impl Iterator<Item = &Circuit> + '_ {
        self.nodes.iter().map(|n| &n.circuit)
    }

    /// Per-node static view: each unique circuit with its consumer
    /// fan-out `(key, requested shots)`, in insertion order. What the
    /// graph-layer lints of [`crate::analysis`] inspect without
    /// executing anything.
    pub fn node_jobs(&self) -> impl Iterator<Item = (&Circuit, &[(ConsumerKey, u64)])> + '_ {
        self.nodes
            .iter()
            .map(|n| (&n.circuit, n.consumers.as_slice()))
    }

    /// The prefix metadata of the planned graph: how much of the nodes'
    /// simulation work is shared instruction prefixes, computed by building
    /// the same [`PrefixForest`] a prefix-sharing backend will build over
    /// this graph's unique circuits. Lets planners and reports predict the
    /// gate economy (`O(G + Σ suffix)` instead of `O(V·G)` for `V`
    /// variants of a `G`-gate fragment) before anything executes.
    pub fn prefix_profile(&self) -> PrefixProfile {
        let circuits: Vec<&Circuit> = self.nodes.iter().map(|n| &n.circuit).collect();
        PrefixForest::build(&circuits).profile()
    }

    /// Feeds counts already measured for `circuit` (e.g. by an online
    /// detection round) into the matching node, reducing how many shots the
    /// backend must still execute for it. Returns `true` when a node
    /// matched. No-op (always `false`) when dedup is disabled.
    pub fn seed_counts(&mut self, circuit: &Circuit, counts: &Counts) -> bool {
        if !self.dedup {
            return false;
        }
        let hash = circuit.structural_hash();
        match self.find_node(circuit, hash) {
            Some(i) => {
                match &mut self.nodes[i].cached {
                    Some(c) => c.merge(counts),
                    slot @ None => *slot = Some(counts.clone()),
                }
                true
            }
            None => false,
        }
    }

    /// Like [`Self::seed_counts`], but for counts recovered from the
    /// *cross-run* warm-start cache. Behaves identically for execution
    /// planning (the node only runs the shot increment beyond what is
    /// seeded), but records the seeded amount so [`Self::execute`] can
    /// attribute the reuse to `cache_shots_reused` instead of
    /// `shots_saved`. Returns `true` when a node matched; no-op when dedup
    /// is disabled (cache keys are structural, so serving them without the
    /// dedup equality confirmation would be unsound).
    pub fn seed_counts_from_cache(&mut self, circuit: &Circuit, counts: &Counts) -> bool {
        if !self.dedup {
            return false;
        }
        let hash = circuit.structural_hash();
        match self.find_node(circuit, hash) {
            Some(i) => {
                match &mut self.nodes[i].cached {
                    Some(c) => c.merge(counts),
                    slot @ None => *slot = Some(counts.clone()),
                }
                self.nodes[i].cache_seeded += counts.total();
                true
            }
            None => false,
        }
    }

    /// Executes the graph as one batched backend submission and fans the
    /// results out to every consumer.
    ///
    /// Per node, the backend runs `max(consumer shots) − cached shots`
    /// (clamped at zero — fully cached nodes cost nothing), and every
    /// consumer receives the node's full merged histogram. `parallel`
    /// selects the backend's native batched dispatch vs a sequential loop;
    /// on the workspace backends both produce bit-identical counts.
    ///
    /// Runs under the default [`RetryPolicy`] (one attempt, no deadline).
    /// On permanent node failure the error is a [`GraphFailure`] naming
    /// the failed nodes *and* carrying the salvage — the counts of every
    /// sibling that succeeded — instead of discarding them.
    pub fn execute<B: Backend + ?Sized>(
        &self,
        backend: &B,
        parallel: bool,
    ) -> Result<GraphRun, Box<GraphFailure>> {
        self.execute_with(backend, parallel, &RetryPolicy::default())
    }

    /// [`Self::execute`] under an explicit [`RetryPolicy`].
    ///
    /// Each attempt submits only the still-pending nodes as one batch:
    /// successful siblings are salvaged immediately and never re-run, and
    /// counts already seeded into a node keep offsetting its retry, so no
    /// delivered shot is ever re-bought. A job whose result arrives with
    /// `simulated_duration` over `per_job_timeout` counts as a
    /// [`BackendError::Timeout`] — its device time is accrued as waste,
    /// its counts are discarded, and it retries like any transient fault.
    /// Backoff between attempts is deterministic accounting
    /// ([`GraphStats::backoff_wait`]), never an actual sleep. With the
    /// default policy this is structurally the single-submission engine
    /// of previous revisions — the fault-free path is bit-identical.
    pub fn execute_with<B: Backend + ?Sized>(
        &self,
        backend: &B,
        parallel: bool,
        retry: &RetryPolicy,
    ) -> Result<GraphRun, Box<GraphFailure>> {
        if let Some(pool) = backend.as_pool() {
            // Pool-aware path: per-member sharding, per-member accounting,
            // and same-round sibling failover. The `parallel` flag is
            // moot here — each member batch is one native submission.
            return self.execute_pool(pool, retry);
        }
        let mut pending: Vec<(usize, u64)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let missing = node.required_shots().saturating_sub(node.cached_shots());
            if missing > 0 {
                pending.push((i, missing));
            }
        }

        let mut stats = GraphStats {
            jobs_planned: self.jobs_planned,
            jobs_executed: pending.len(),
            shots_requested: self
                .nodes
                .iter()
                .flat_map(|n| n.consumers.iter().map(|&(_, s)| s))
                .sum(),
            ..GraphStats::default()
        };
        let mut delivered: HashMap<usize, Counts> = HashMap::with_capacity(pending.len());
        let mut permanent: Vec<NodeFailure> = Vec::new();

        let max_attempts = retry.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            if pending.is_empty() {
                break;
            }
            if attempt > 1 {
                stats.jobs_retried += pending.len() as u64;
                stats.backoff_wait += retry.backoff.delay(attempt - 1);
            }
            stats.attempts += pending.len() as u64;
            let specs: Vec<JobSpec<'_>> = pending
                .iter()
                .map(|&(i, shots)| JobSpec::new(&self.nodes[i].circuit, shots))
                .collect();
            let (results, batch_stats) = if parallel {
                let run = backend.run_batch_stats(&specs);
                (run.results, run.stats)
            } else {
                let results: Vec<_> = specs
                    .iter()
                    .map(|j| backend.run(j.circuit, j.shots))
                    .collect();
                let batch_stats = BatchStats::unshared(&specs, &results);
                (results, batch_stats)
            };
            stats.gates_applied += batch_stats.gates_applied;
            stats.gates_saved += batch_stats.gates_saved();
            stats.states_reused += batch_stats.states_reused;

            let last_round = attempt == max_attempts;
            let mut still_pending: Vec<(usize, u64)> = Vec::new();
            for (&(i, shots), result) in pending.iter().zip(results) {
                match result {
                    Ok(r) => {
                        stats.simulated_device_time += r.simulated_duration;
                        stats.host_time += r.host_duration;
                        match retry.per_job_timeout {
                            Some(deadline) if r.simulated_duration > deadline => {
                                // The deadline passed before the data
                                // arrived: device time spent, counts lost.
                                if last_round {
                                    permanent.push(self.node_failure(
                                        i,
                                        BackendError::Timeout {
                                            elapsed: r.simulated_duration,
                                        },
                                        attempt,
                                    ));
                                } else {
                                    still_pending.push((i, shots));
                                }
                            }
                            _ => {
                                stats.shots_executed += shots;
                                delivered.insert(i, r.counts);
                            }
                        }
                    }
                    Err(e) => {
                        if e.is_transient() && !last_round {
                            still_pending.push((i, shots));
                        } else {
                            permanent.push(self.node_failure(i, e, attempt));
                        }
                    }
                }
            }
            pending = still_pending;
        }
        self.finalize(stats, &delivered, permanent)
    }

    /// Pool-aware execution: shards the still-pending nodes across the
    /// members of `pool` under its
    /// [`PlacementPolicy`](qcut_device::pool::PlacementPolicy), executes
    /// one batch per member per retry round
    /// (nodes in graph insertion order within each member — so on
    /// seed-deterministic members a single-member pool is bit-identical to
    /// the bare backend), and merges the fan-out into one [`GraphRun`]
    /// with per-member accounting.
    ///
    /// Differences from the single-backend path:
    ///
    /// * **Placement** is computed once, over *all* nodes at their full
    ///   required budgets — deliberately independent of cache seeding, so
    ///   the pipeline's per-member warm-cache keying (which places before
    ///   seeding) sees the identical assignment.
    /// * **Infeasible nodes** — ones no member's capacity fits — fail
    ///   before anything is submitted ([`NodeFailure::attempts`] is 0) and
    ///   are carried as salvageable [`GraphFailure`] entries like any
    ///   other permanent failure.
    /// * **Failover**: a node whose assigned member raises a transient
    ///   fault (or trips the per-job timeout) is re-submitted *within the
    ///   same retry round* to the next feasible sibling before the round
    ///   counts as lost; only if the sibling also fails does the node wait
    ///   for the next [`RetryPolicy`] round (back on its assigned member).
    ///   Each failover submission counts toward [`GraphStats::attempts`];
    ///   deliveries by a sibling count toward
    ///   [`GraphStats::jobs_failed_over`] and the *sibling's* member
    ///   accounting.
    pub fn execute_pool(
        &self,
        pool: &BackendPool,
        retry: &RetryPolicy,
    ) -> Result<GraphRun, Box<GraphFailure>> {
        let members = pool.len();
        let placement_specs: Vec<JobSpec<'_>> = self
            .nodes
            .iter()
            .map(|n| JobSpec::new(&n.circuit, n.required_shots()))
            .collect();
        let placement = pool.place(&placement_specs);

        let mut pending: Vec<(usize, u64)> = Vec::new();
        let mut permanent: Vec<NodeFailure> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let missing = node.required_shots().saturating_sub(node.cached_shots());
            if missing == 0 {
                continue;
            }
            if placement.assignment[i].is_some() {
                pending.push((i, missing));
            } else {
                let error = if members == 0 {
                    BackendError::Unavailable
                } else {
                    BackendError::CircuitTooWide {
                        circuit: node.circuit.num_qubits(),
                        device: pool.num_qubits(),
                    }
                };
                permanent.push(self.node_failure(i, error, 0));
            }
        }

        let mut stats = GraphStats {
            jobs_planned: self.jobs_planned,
            jobs_executed: pending.len(),
            shots_requested: self
                .nodes
                .iter()
                .flat_map(|n| n.consumers.iter().map(|&(_, s)| s))
                .sum(),
            jobs_per_member: vec![0; members],
            shots_per_member: vec![0; members],
            member_makespan: vec![Duration::ZERO; members],
            ..GraphStats::default()
        };
        let mut delivered: HashMap<usize, Counts> = HashMap::with_capacity(pending.len());

        let max_attempts = retry.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            if pending.is_empty() {
                break;
            }
            if attempt > 1 {
                stats.jobs_retried += pending.len() as u64;
                stats.backoff_wait += retry.backoff.delay(attempt - 1);
            }
            stats.attempts += pending.len() as u64;
            let last_round = attempt == max_attempts;

            // Primary phase: one batch per member, in member-index order,
            // each preserving graph insertion order.
            let mut failover: Vec<(usize, u64, usize, BackendError)> = Vec::new();
            let mut still_pending: Vec<(usize, u64)> = Vec::new();
            for m in 0..members {
                let mine: Vec<(usize, u64)> = pending
                    .iter()
                    .copied()
                    .filter(|&(i, _)| placement.assignment[i] == Some(m))
                    .collect();
                if mine.is_empty() {
                    continue;
                }
                let specs: Vec<JobSpec<'_>> = mine
                    .iter()
                    .map(|&(i, shots)| JobSpec::new(&self.nodes[i].circuit, shots))
                    .collect();
                let run = pool.member(m).run_batch_stats(&specs);
                stats.gates_applied += run.stats.gates_applied;
                stats.gates_saved += run.stats.gates_saved();
                stats.states_reused += run.stats.states_reused;
                for (&(i, shots), result) in mine.iter().zip(run.results) {
                    match result {
                        Ok(r) => {
                            stats.simulated_device_time += r.simulated_duration;
                            stats.host_time += r.host_duration;
                            stats.member_makespan[m] += r.simulated_duration;
                            match retry.per_job_timeout {
                                Some(deadline) if r.simulated_duration > deadline => {
                                    failover.push((
                                        i,
                                        shots,
                                        m,
                                        BackendError::Timeout {
                                            elapsed: r.simulated_duration,
                                        },
                                    ));
                                }
                                _ => {
                                    stats.shots_executed += shots;
                                    stats.jobs_per_member[m] += 1;
                                    stats.shots_per_member[m] += shots;
                                    delivered.insert(i, r.counts);
                                }
                            }
                        }
                        Err(e) => {
                            if e.is_transient() {
                                failover.push((i, shots, m, e));
                            } else {
                                permanent.push(self.node_failure(i, e, attempt));
                            }
                        }
                    }
                }
            }

            // Failover phase, same round: each transiently failed node
            // goes once to its next feasible sibling. Grouped per sibling
            // (graph order preserved) so the sibling sees one batch.
            let mut by_sibling: Vec<Vec<(usize, u64, BackendError)>> = vec![Vec::new(); members];
            for (i, shots, m, error) in failover {
                match pool.failover_sibling(m, self.nodes[i].circuit.num_qubits()) {
                    Some(s) => by_sibling[s].push((i, shots, error)),
                    None if last_round => {
                        permanent.push(self.node_failure(i, error, attempt));
                    }
                    None => still_pending.push((i, shots)),
                }
            }
            for (s, batch) in by_sibling.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                stats.attempts += batch.len() as u64;
                let specs: Vec<JobSpec<'_>> = batch
                    .iter()
                    .map(|&(i, shots, _)| JobSpec::new(&self.nodes[i].circuit, shots))
                    .collect();
                let run = pool.member(s).run_batch_stats(&specs);
                stats.gates_applied += run.stats.gates_applied;
                stats.gates_saved += run.stats.gates_saved();
                stats.states_reused += run.stats.states_reused;
                for (&(i, shots, _), result) in batch.iter().zip(run.results) {
                    match result {
                        Ok(r) => {
                            stats.simulated_device_time += r.simulated_duration;
                            stats.host_time += r.host_duration;
                            stats.member_makespan[s] += r.simulated_duration;
                            match retry.per_job_timeout {
                                Some(deadline) if r.simulated_duration > deadline => {
                                    if last_round {
                                        permanent.push(self.node_failure(
                                            i,
                                            BackendError::Timeout {
                                                elapsed: r.simulated_duration,
                                            },
                                            attempt,
                                        ));
                                    } else {
                                        still_pending.push((i, shots));
                                    }
                                }
                                _ => {
                                    stats.shots_executed += shots;
                                    stats.jobs_per_member[s] += 1;
                                    stats.shots_per_member[s] += shots;
                                    stats.jobs_failed_over += 1;
                                    delivered.insert(i, r.counts);
                                }
                            }
                        }
                        Err(e) => {
                            if e.is_transient() && !last_round {
                                still_pending.push((i, shots));
                            } else {
                                permanent.push(self.node_failure(i, e, attempt));
                            }
                        }
                    }
                }
            }
            // The next round re-submits in graph order, back on the
            // assigned members.
            still_pending.sort_by_key(|&(i, _)| i);
            pending = still_pending;
        }
        self.finalize(stats, &delivered, permanent)
    }

    /// The shared tail of every execute path: sorts the permanent
    /// failures, splits the non-executed shots between in-process reuse
    /// and warm-cache reuse, fans the merged histograms out to consumers,
    /// and wraps failures (with their salvage) into a [`GraphFailure`].
    fn finalize(
        &self,
        mut stats: GraphStats,
        delivered: &HashMap<usize, Counts>,
        mut permanent: Vec<NodeFailure>,
    ) -> Result<GraphRun, Box<GraphFailure>> {
        permanent.sort_by_key(|f| f.node);
        let failed: Vec<usize> = permanent.iter().map(|f| f.node).collect();
        stats.shots_lost = permanent.iter().map(|f| f.shots_lost).sum();
        // Split the non-executed shots between in-process reuse
        // (`shots_saved`: dedup + same-run seeding) and cross-run reuse
        // (`cache_shots_reused`). Per node the cache can only claim what
        // was actually *served* (required − executed), capped by how much
        // of the cached histogram came from the warm-start cache. Failed
        // nodes served nothing — their whole demand is `shots_lost`.
        for (i, node) in self.nodes.iter().enumerate() {
            if failed.binary_search(&i).is_ok() {
                continue;
            }
            let required = node.required_shots();
            let executed = required.saturating_sub(node.cached_shots());
            let served = required - executed;
            let from_cache = node.cache_seeded.min(served);
            if from_cache > 0 {
                stats.cache_hits += 1;
                stats.cache_shots_reused += from_cache;
            }
        }
        stats.shots_saved = stats
            .shots_requested
            .saturating_sub(stats.shots_executed)
            .saturating_sub(stats.cache_shots_reused)
            .saturating_sub(stats.shots_lost);

        // Fan-out. Failed nodes deliver nothing — not even partial cached
        // counts — so a consumer either receives its full merged histogram
        // or is named in a failure record, never a silent under-delivery.
        let mut counts: HashMap<ConsumerKey, Counts> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if failed.binary_search(&i).is_ok() {
                continue;
            }
            let mut merged = match &node.cached {
                Some(c) => c.clone(),
                None => Counts::new(node.circuit.num_qubits()),
            };
            if let Some(fresh) = delivered.get(&i) {
                merged.merge(fresh);
            }
            for &(key, _) in &node.consumers {
                counts
                    .entry(key)
                    .and_modify(|c| c.merge(&merged))
                    .or_insert_with(|| merged.clone());
            }
        }
        let run = GraphRun { counts, stats };
        if permanent.is_empty() {
            Ok(run)
        } else {
            Err(Box::new(GraphFailure {
                failures: permanent,
                salvage: run,
            }))
        }
    }

    /// Builds the failure record of one permanently failed node.
    fn node_failure(&self, node: usize, error: BackendError, attempts: u32) -> NodeFailure {
        let mut consumers: Vec<ConsumerKey> =
            self.nodes[node].consumers.iter().map(|&(k, _)| k).collect();
        consumers.sort();
        NodeFailure {
            node,
            consumers,
            error,
            attempts,
            shots_lost: self.nodes[node].consumers.iter().map(|&(_, s)| s).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_device::ideal::IdealBackend;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    fn ghz() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c
    }

    #[test]
    fn duplicate_jobs_share_one_execution() {
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 500);
        g.add_job(bell(), (Channel::UpstreamMeas, 1), 500);
        g.add_job(ghz(), (Channel::DownstreamPrep, 0), 300);
        assert_eq!(g.jobs_planned(), 3);
        assert_eq!(g.num_nodes(), 2);

        let run = g.execute(&IdealBackend::new(5), true).unwrap();
        assert_eq!(run.stats.jobs_planned, 3);
        assert_eq!(run.stats.jobs_executed, 2);
        assert_eq!(run.stats.shots_requested, 1300);
        assert_eq!(run.stats.shots_executed, 800);
        assert_eq!(run.stats.shots_saved, 500);
        // Both consumers of the shared node see the *same* histogram.
        let a = run.counts(&(Channel::UpstreamMeas, 0)).unwrap();
        let b = run.counts(&(Channel::UpstreamMeas, 1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total(), 500);
    }

    #[test]
    fn dedup_merges_to_max_budget() {
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::Uncut, 0), 200);
        g.add_job(bell(), (Channel::Uncut, 1), 700);
        let run = g.execute(&IdealBackend::new(1), false).unwrap();
        assert_eq!(run.stats.shots_executed, 700);
        assert_eq!(run.stats.shots_saved, 200);
        // The smaller consumer gets the full 700-shot histogram (never less
        // data than it asked for).
        assert_eq!(run.counts(&(Channel::Uncut, 0)).unwrap().total(), 700);
    }

    #[test]
    fn duplicate_consumer_registration_delivers_once() {
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 4), 300);
        g.add_job(bell(), (Channel::UpstreamMeas, 4), 500); // same pair, bigger ask
        assert_eq!(g.jobs_planned(), 2);
        assert_eq!(g.num_nodes(), 1);
        let run = g.execute(&IdealBackend::new(8), false).unwrap();
        // The consumer's demand was raised to max, not doubled.
        assert_eq!(run.stats.shots_executed, 500);
        assert_eq!(
            run.counts(&(Channel::UpstreamMeas, 4)).unwrap().total(),
            500
        );

        // The no-double-count contract holds with dedup off too, keeping
        // the ablation statistically comparable.
        let mut g = JobGraph::without_dedup();
        g.add_job(bell(), (Channel::UpstreamMeas, 4), 300);
        g.add_job(bell(), (Channel::UpstreamMeas, 4), 500);
        assert_eq!(g.num_nodes(), 1);
        let run = g.execute(&IdealBackend::new(8), false).unwrap();
        assert_eq!(
            run.counts(&(Channel::UpstreamMeas, 4)).unwrap().total(),
            500
        );
    }

    #[test]
    fn without_dedup_executes_every_job() {
        let mut g = JobGraph::without_dedup();
        g.add_job(bell(), (Channel::Uncut, 0), 200);
        g.add_job(bell(), (Channel::Uncut, 1), 700);
        assert_eq!(g.num_nodes(), 2);
        let run = g.execute(&IdealBackend::new(1), false).unwrap();
        assert_eq!(run.stats.jobs_executed, 2);
        assert_eq!(run.stats.shots_saved, 0);
        assert_eq!(run.counts(&(Channel::Uncut, 0)).unwrap().total(), 200);
    }

    #[test]
    fn seeded_counts_offset_execution() {
        let backend = IdealBackend::new(9);
        let warmup = backend.run(&bell(), 400).unwrap();

        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 1000);
        assert!(g.seed_counts(&bell(), &warmup.counts));
        assert!(!g.seed_counts(&ghz(), &warmup.counts)); // no such node

        let run = g.execute(&backend, true).unwrap();
        assert_eq!(run.stats.shots_executed, 600); // 1000 − 400 cached
        assert_eq!(run.stats.shots_saved, 400);
        assert_eq!(
            run.counts(&(Channel::UpstreamMeas, 0)).unwrap().total(),
            1000
        );
    }

    #[test]
    fn fully_cached_node_executes_nothing() {
        let backend = IdealBackend::new(9);
        let warmup = backend.run(&bell(), 500).unwrap();
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::Detection, 7), 300);
        g.seed_counts(&bell(), &warmup.counts);
        let run = g.execute(&backend, false).unwrap();
        assert_eq!(run.stats.jobs_executed, 0);
        assert_eq!(run.stats.shots_executed, 0);
        assert_eq!(run.counts(&(Channel::Detection, 7)).unwrap().total(), 500);
    }

    #[test]
    fn cache_seeding_is_attributed_separately_from_in_process_saving() {
        // 1000 requested; 300 seeded from the warm-start cache, 200 from an
        // in-process stage. 500 execute; the 500 served shots split 300
        // cache / 200 saved, and the invariant
        // requested = executed + saved + cache_reused holds exactly.
        let backend = IdealBackend::new(11);
        let from_cache = backend.run(&bell(), 300).unwrap().counts;
        let from_stage = backend.run(&bell(), 200).unwrap().counts;

        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 1000);
        assert!(g.seed_counts_from_cache(&bell(), &from_cache));
        assert!(g.seed_counts(&bell(), &from_stage));

        let run = g.execute(&backend, true).unwrap();
        assert_eq!(run.stats.shots_requested, 1000);
        assert_eq!(run.stats.shots_executed, 500);
        assert_eq!(run.stats.cache_hits, 1);
        assert_eq!(run.stats.cache_shots_reused, 300);
        assert_eq!(run.stats.shots_saved, 200);
        assert_eq!(
            run.stats.shots_requested,
            run.stats.shots_executed + run.stats.shots_saved + run.stats.cache_shots_reused
        );
        assert_eq!(
            run.counts(&(Channel::UpstreamMeas, 0)).unwrap().total(),
            1000
        );
    }

    #[test]
    fn over_seeded_cache_claims_only_what_was_served() {
        // The cache holds more shots than the run requests: only the served
        // amount (the full request) is attributed, never more.
        let backend = IdealBackend::new(12);
        let from_cache = backend.run(&bell(), 900).unwrap().counts;
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 400);
        g.seed_counts_from_cache(&bell(), &from_cache);
        let run = g.execute(&backend, false).unwrap();
        assert_eq!(run.stats.shots_executed, 0);
        assert_eq!(run.stats.cache_hits, 1);
        assert_eq!(run.stats.cache_shots_reused, 400);
        assert_eq!(run.stats.shots_saved, 0);
    }

    #[test]
    fn cache_seeding_is_a_noop_without_dedup() {
        let backend = IdealBackend::new(13);
        let warm = backend.run(&bell(), 300).unwrap().counts;
        let mut g = JobGraph::without_dedup();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 500);
        assert!(!g.seed_counts_from_cache(&bell(), &warm));
        let run = g.execute(&backend, false).unwrap();
        assert_eq!(run.stats.shots_executed, 500);
        assert_eq!(run.stats.cache_shots_reused, 0);
        assert_eq!(run.stats.cache_hits, 0);
    }

    #[test]
    fn weighted_budgets_compose_with_dedup_and_seeding() {
        // Three consumers of one circuit with *different* weighted budgets
        // plus a seeded warmup: the node runs max(budget) − cached shots,
        // shots_saved accounts for every merged/reused shot exactly, and
        // every consumer's delivered histogram reports the realized (not
        // requested) shot count.
        let backend = IdealBackend::new(21);
        let warmup = backend.run(&bell(), 150).unwrap();
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 400);
        g.add_job(bell(), (Channel::UpstreamMeas, 1), 900);
        g.add_job(bell(), (Channel::UpstreamMeas, 2), 250);
        g.seed_counts(&bell(), &warmup.counts);
        let run = g.execute(&backend, true).unwrap();
        assert_eq!(run.stats.jobs_planned, 3);
        assert_eq!(run.stats.jobs_executed, 1);
        assert_eq!(run.stats.shots_requested, 400 + 900 + 250);
        assert_eq!(run.stats.shots_executed, 900 - 150);
        assert_eq!(
            run.stats.shots_saved,
            run.stats.shots_requested - run.stats.shots_executed
        );
        for key in 0..3 {
            assert_eq!(
                run.counts(&(Channel::UpstreamMeas, key)).unwrap().total(),
                900,
                "consumer {key} sees the merged node"
            );
        }
    }

    #[test]
    fn parallel_and_sequential_execution_are_bit_identical() {
        let build = || {
            let mut g = JobGraph::new();
            for i in 0..5 {
                g.add_job(bell(), (Channel::UpstreamMeas, i), 200 + i);
                g.add_job(ghz(), (Channel::DownstreamPrep, i), 100);
            }
            g
        };
        let par = build().execute(&IdealBackend::new(33), true).unwrap();
        let seq = build().execute(&IdealBackend::new(33), false).unwrap();
        for i in 0..5 {
            assert_eq!(
                par.counts(&(Channel::UpstreamMeas, i)),
                seq.counts(&(Channel::UpstreamMeas, i))
            );
            assert_eq!(
                par.counts(&(Channel::DownstreamPrep, i)),
                seq.counts(&(Channel::DownstreamPrep, i))
            );
        }
    }

    #[test]
    fn take_channel_splits_results() {
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 3), 100);
        g.add_job(ghz(), (Channel::SicPrep, 8), 100);
        let mut run = g.execute(&IdealBackend::new(2), true).unwrap();
        let up = run.take_channel(Channel::UpstreamMeas);
        assert_eq!(up.len(), 1);
        assert!(up.contains_key(&3));
        let sic = run.take_channel(Channel::SicPrep);
        assert!(sic.contains_key(&8));
        assert!(run.take_channel(Channel::UpstreamMeas).is_empty());
    }

    /// Upstream-variant shape: one fragment, three rotation suffixes.
    fn variant_family() -> Vec<Circuit> {
        let mut base = Circuit::new(3);
        base.h(0).cx(0, 1).ry(0.7, 2).cx(1, 2);
        let mut x = base.clone();
        x.h(2);
        let mut y = base.clone();
        y.sdg(2).h(2);
        vec![base, x, y]
    }

    #[test]
    fn execute_reports_the_prefix_gate_economy() {
        let mut g = JobGraph::new();
        for (i, c) in variant_family().into_iter().enumerate() {
            g.add_job(c, (Channel::UpstreamMeas, i as u64), 200);
        }
        let par = g.execute(&IdealBackend::new(4), true).unwrap();
        // 4 + 5 + 6 naive gates; the 4-gate fragment runs once.
        assert_eq!(par.stats.gates_applied, 4 + 1 + 2);
        assert_eq!(par.stats.gates_saved, 8);
        // The sequential reference path simulates per job: nothing saved.
        let seq = g.execute(&IdealBackend::new(4), false).unwrap();
        assert_eq!(seq.stats.gates_applied, 4 + 5 + 6);
        assert_eq!(seq.stats.gates_saved, 0);
        // Sharing never changes the delivered counts.
        for i in 0..3 {
            assert_eq!(
                par.counts(&(Channel::UpstreamMeas, i)),
                seq.counts(&(Channel::UpstreamMeas, i))
            );
        }
    }

    #[test]
    fn prefix_profile_predicts_the_shared_walk() {
        let mut g = JobGraph::new();
        for (i, c) in variant_family().into_iter().enumerate() {
            g.add_job(c, (Channel::UpstreamMeas, i as u64), 100);
        }
        let profile = g.prefix_profile();
        assert_eq!(profile.circuits, 3);
        assert_eq!(profile.terminal_nodes, 3);
        assert_eq!(profile.gates_naive, 15);
        assert_eq!(profile.gates_shared, 7);
        // The profile matches what execution actually reports.
        let run = g.execute(&IdealBackend::new(1), true).unwrap();
        assert_eq!(run.stats.gates_applied, profile.gates_shared);
        assert_eq!(run.stats.gates_saved, profile.gates_saved());
    }

    #[test]
    fn errors_propagate() {
        // A failing node errors the run — but the error names the failed
        // node and carries the salvage: the sibling that fit the device
        // keeps its delivered counts.
        let mut g = JobGraph::new();
        g.add_job(ghz(), (Channel::Uncut, 0), 100);
        g.add_job(bell(), (Channel::UpstreamMeas, 3), 250);
        let tiny = IdealBackend::new(0).with_capacity(2);
        let failure = g.execute(&tiny, true).unwrap_err();
        assert_eq!(failure.failures.len(), 1);
        let f = &failure.failures[0];
        assert!(matches!(f.error, BackendError::CircuitTooWide { .. }));
        assert_eq!(f.consumers, vec![(Channel::Uncut, 0)]);
        assert_eq!(f.attempts, 1);
        assert_eq!(f.shots_lost, 100);
        // Salvage: the bell sibling's 250 shots were not discarded.
        assert_eq!(failure.succeeded(), vec![(Channel::UpstreamMeas, 3)]);
        let kept = failure.salvage.counts(&(Channel::UpstreamMeas, 3)).unwrap();
        assert_eq!(kept.total(), 250);
        assert_eq!(failure.salvage.stats.shots_lost, 100);
        assert_eq!(failure.salvage.stats.shots_executed, 250);
        // The message names the damage, and the cause chain reaches the
        // backend error.
        let msg = failure.to_string();
        assert!(msg.contains("failed permanently"), "{msg}");
        assert!(std::error::Error::source(failure.as_ref()).is_some());
    }

    #[test]
    fn transient_faults_recover_bit_identically_under_retry() {
        use crate::retry::RetryPolicy;
        use qcut_device::fault::FaultInjectingBackend;

        let build = || {
            let mut g = JobGraph::new();
            g.add_job(bell(), (Channel::UpstreamMeas, 0), 400);
            g.add_job(ghz(), (Channel::DownstreamPrep, 1), 300);
            g
        };
        let clean = build().execute(&IdealBackend::new(17), true).unwrap();

        // Every node fails its first two delivery attempts; with three
        // attempts allowed the run recovers — and because failed attempts
        // never consume inner-backend seeds, the recovered counts are the
        // fault-free counts, bit for bit.
        let flaky = FaultInjectingBackend::new(IdealBackend::new(17)).fail_first(2);
        let run = build()
            .execute_with(&flaky, true, &RetryPolicy::with_attempts(3))
            .unwrap();
        for key in [(Channel::UpstreamMeas, 0), (Channel::DownstreamPrep, 1)] {
            assert_eq!(run.counts(&key), clean.counts(&key), "{key:?}");
        }
        assert_eq!(run.stats.jobs_executed, 2);
        assert_eq!(run.stats.attempts, 6); // 2 jobs × 3 attempts
        assert_eq!(run.stats.jobs_retried, 4);
        assert_eq!(run.stats.shots_executed, 700);
        assert_eq!(run.stats.shots_lost, 0);
    }

    #[test]
    fn only_failed_nodes_are_resubmitted() {
        use crate::retry::RetryPolicy;
        use qcut_device::fault::FaultInjectingBackend;

        let ghz_c = ghz();
        let flaky = FaultInjectingBackend::new(IdealBackend::new(4)).fail_circuit(&ghz_c, 1);
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 200);
        g.add_job(ghz_c.clone(), (Channel::DownstreamPrep, 0), 300);
        let run = g
            .execute_with(&flaky, true, &RetryPolicy::with_attempts(2))
            .unwrap();
        // The bell node succeeded first try and was not re-bought: one
        // retry total, for the ghz node only.
        assert_eq!(run.stats.jobs_retried, 1);
        assert_eq!(run.stats.attempts, 3);
        assert_eq!(flaky.attempts_for(&bell()), 1);
        assert_eq!(flaky.attempts_for(&ghz_c), 2);
        assert_eq!(run.stats.shots_executed, 500);
    }

    #[test]
    fn retries_exhausted_is_a_permanent_failure_with_salvage() {
        use crate::retry::RetryPolicy;
        use qcut_device::fault::FaultInjectingBackend;

        let ghz_c = ghz();
        let flaky = FaultInjectingBackend::new(IdealBackend::new(4)).fail_circuit(&ghz_c, 10);
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 200);
        g.add_job(ghz_c, (Channel::DownstreamPrep, 5), 300);
        let failure = g
            .execute_with(&flaky, true, &RetryPolicy::with_attempts(3))
            .unwrap_err();
        let f = &failure.failures[0];
        assert_eq!(f.attempts, 3);
        assert_eq!(f.consumers, vec![(Channel::DownstreamPrep, 5)]);
        assert!(matches!(
            f.error,
            BackendError::Transient { attempt: 3, .. }
        ));
        assert_eq!(failure.salvage.stats.shots_lost, 300);
        assert_eq!(failure.salvage.stats.shots_executed, 200);
        // Invariant with losses: requested = executed + saved + cached + lost.
        let s = &failure.salvage.stats;
        assert_eq!(
            s.shots_requested,
            s.shots_executed + s.shots_saved + s.cache_shots_reused + s.shots_lost
        );
    }

    #[test]
    fn deterministic_errors_never_retry() {
        use crate::retry::RetryPolicy;
        let mut g = JobGraph::new();
        g.add_job(ghz(), (Channel::Uncut, 0), 100);
        let tiny = IdealBackend::new(0).with_capacity(2);
        let failure = g
            .execute_with(&tiny, false, &RetryPolicy::with_attempts(5))
            .unwrap_err();
        // CircuitTooWide is not transient: one attempt, not five.
        assert_eq!(failure.failures[0].attempts, 1);
        assert_eq!(failure.salvage.stats.attempts, 1);
        assert_eq!(failure.salvage.stats.jobs_retried, 0);
    }

    #[test]
    fn per_job_timeout_is_deterministic_and_wastes_device_time() {
        use crate::retry::RetryPolicy;
        use qcut_device::timing::TimingModel;

        let slow = TimingModel {
            gate_1q: 0.0,
            gate_2q: 0.0,
            readout: 0.0,
            rep_delay: 0.0,
            job_overhead: 2.0,
        };
        let backend = IdealBackend::new(3).with_timing(slow);
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::Uncut, 0), 100);
        let policy = RetryPolicy {
            max_attempts: 2,
            per_job_timeout: Some(Duration::from_secs(1)),
            ..RetryPolicy::default()
        };
        let failure = g.execute_with(&backend, true, &policy).unwrap_err();
        let f = &failure.failures[0];
        assert!(matches!(f.error, BackendError::Timeout { .. }));
        assert_eq!(f.attempts, 2);
        // Both timed-out attempts spent their (simulated) device time.
        let s = &failure.salvage.stats;
        assert!((s.simulated_device_time.as_secs_f64() - 4.0).abs() < 1e-9);
        assert_eq!(s.shots_executed, 0);
        assert_eq!(s.shots_lost, 100);
        // A generous deadline lets the same job through.
        let lenient = RetryPolicy {
            per_job_timeout: Some(Duration::from_secs(3)),
            ..RetryPolicy::default()
        };
        assert!(g.execute_with(&backend, true, &lenient).is_ok());
    }

    #[test]
    fn backoff_is_accounted_but_never_slept() {
        use crate::retry::{Backoff, RetryPolicy};
        use qcut_device::fault::FaultInjectingBackend;

        let flaky = FaultInjectingBackend::new(IdealBackend::new(1)).fail_first(2);
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::Uncut, 0), 100);
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::Exponential {
                base: Duration::from_secs(10),
                factor: 2,
                cap: Duration::from_secs(60),
            },
            per_job_timeout: None,
        };
        let started = std::time::Instant::now();
        let run = g.execute_with(&flaky, false, &policy).unwrap();
        // 10 s before retry 1 + 20 s before retry 2, accounted not slept.
        assert_eq!(run.stats.backoff_wait, Duration::from_secs(30));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn seeded_counts_still_offset_the_retried_request() {
        // A node with 400 seeded shots retries only its 600-shot increment:
        // the seeded data is never re-bought, even through a fault.
        use crate::retry::RetryPolicy;
        use qcut_device::fault::FaultInjectingBackend;

        let seeder = IdealBackend::new(9);
        let warmup = seeder.run(&bell(), 400).unwrap();
        let flaky = FaultInjectingBackend::new(IdealBackend::new(9)).fail_first(1);
        let mut g = JobGraph::new();
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 1000);
        g.seed_counts(&bell(), &warmup.counts);
        let run = g
            .execute_with(&flaky, true, &RetryPolicy::with_attempts(2))
            .unwrap();
        assert_eq!(run.stats.shots_executed, 600);
        assert_eq!(run.stats.shots_saved, 400);
        assert_eq!(
            run.counts(&(Channel::UpstreamMeas, 0)).unwrap().total(),
            1000
        );
    }

    #[test]
    fn pool_execution_shards_and_accounts_per_member() {
        use qcut_device::pool::{BackendPool, PlacementPolicy};

        let pool = BackendPool::new(PlacementPolicy::RoundRobin)
            .with_backend(IdealBackend::new(1))
            .with_backend(IdealBackend::new(2));
        let mut g = JobGraph::new();
        for i in 0..4 {
            g.add_job(bell(), (Channel::UpstreamMeas, i), 100 + i);
        }
        g.add_job(ghz(), (Channel::DownstreamPrep, 0), 300);
        // 5 planned, 2 unique nodes (bell merged at max budget 103).
        let run = g.execute(&pool, true).unwrap();
        assert_eq!(run.stats.jobs_executed, 2);
        assert_eq!(run.stats.jobs_per_member, vec![1, 1]);
        assert_eq!(run.stats.shots_per_member, vec![103, 300]);
        assert_eq!(run.stats.jobs_failed_over, 0);
        // Shot invariant extends across members: per-member deliveries sum
        // to the executed total.
        assert_eq!(
            run.stats.shots_per_member.iter().sum::<u64>(),
            run.stats.shots_executed
        );
        assert_eq!(
            run.stats.shots_requested,
            run.stats.shots_executed + run.stats.shots_saved + run.stats.shots_lost
        );
        for i in 0..4 {
            assert_eq!(
                run.counts(&(Channel::UpstreamMeas, i)).unwrap().total(),
                103
            );
        }
    }

    #[test]
    fn single_member_pool_is_bit_identical_to_the_bare_backend() {
        use qcut_device::pool::{BackendPool, PlacementPolicy};

        let build = || {
            let mut g = JobGraph::new();
            for i in 0..3 {
                g.add_job(bell(), (Channel::UpstreamMeas, i), 200 + i);
            }
            g.add_job(ghz(), (Channel::DownstreamPrep, 0), 150);
            g
        };
        let bare = build().execute(&IdealBackend::new(42), true).unwrap();
        let pool =
            BackendPool::new(PlacementPolicy::LeastLoaded).with_backend(IdealBackend::new(42));
        let pooled = build().execute(&pool, true).unwrap();
        for key in [
            (Channel::UpstreamMeas, 0),
            (Channel::UpstreamMeas, 1),
            (Channel::UpstreamMeas, 2),
            (Channel::DownstreamPrep, 0),
        ] {
            assert_eq!(pooled.counts(&key), bare.counts(&key), "{key:?}");
        }
        assert_eq!(pooled.stats.shots_executed, bare.stats.shots_executed);
        assert_eq!(pooled.stats.gates_applied, bare.stats.gates_applied);
        assert_eq!(pooled.stats.jobs_per_member, vec![2]);
        assert!((pooled.stats.pool_parallel_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transient_member_fails_over_to_a_sibling_in_the_same_round() {
        use qcut_device::fault::FaultInjectingBackend;
        use qcut_device::pool::{BackendPool, PlacementPolicy};

        let bell_c = bell();
        // Member 0 fails the bell node once; everything is pinned to
        // member 0, so the bell node must be absorbed by sibling 1 —
        // within the default single-attempt policy (failover happens
        // before the round counts as lost).
        let pool = BackendPool::new(PlacementPolicy::Pinned(vec![0]))
            .with_backend(FaultInjectingBackend::new(IdealBackend::new(5)).fail_circuit(&bell_c, 1))
            .with_backend(IdealBackend::new(77));
        let mut g = JobGraph::new();
        g.add_job(bell_c.clone(), (Channel::UpstreamMeas, 0), 400);
        g.add_job(ghz(), (Channel::DownstreamPrep, 0), 300);
        let run = g.execute(&pool, true).unwrap();
        assert_eq!(run.stats.jobs_failed_over, 1);
        assert_eq!(run.stats.jobs_per_member, vec![1, 1]);
        assert_eq!(run.stats.shots_per_member, vec![300, 400]);
        assert_eq!(run.stats.attempts, 3); // 2 primary + 1 failover
        assert_eq!(run.stats.shots_lost, 0);

        // Equivalence: the failover run is bit-identical to a fault-free
        // pool that pinned the bell node to member 1 outright — the
        // sibling sees the identical batch at the identical counter base.
        let reference = BackendPool::new(PlacementPolicy::Pinned(vec![1, 0]))
            .with_backend(IdealBackend::new(5))
            .with_backend(IdealBackend::new(77));
        let mut g2 = JobGraph::new();
        g2.add_job(bell_c, (Channel::UpstreamMeas, 0), 400);
        g2.add_job(ghz(), (Channel::DownstreamPrep, 0), 300);
        let want = g2.execute(&reference, true).unwrap();
        for key in [(Channel::UpstreamMeas, 0), (Channel::DownstreamPrep, 0)] {
            assert_eq!(run.counts(&key), want.counts(&key), "{key:?}");
        }
    }

    #[test]
    fn infeasible_pool_node_fails_before_submission_with_salvage() {
        use qcut_device::pool::{BackendPool, PlacementPolicy};

        let pool = BackendPool::new(PlacementPolicy::LeastLoaded)
            .with_backend(IdealBackend::new(1).with_capacity(2))
            .with_backend(IdealBackend::new(2).with_capacity(2));
        let mut g = JobGraph::new();
        g.add_job(ghz(), (Channel::Uncut, 0), 100); // fits no member
        g.add_job(bell(), (Channel::UpstreamMeas, 0), 250);
        let failure = g.execute(&pool, true).unwrap_err();
        let f = &failure.failures[0];
        assert!(matches!(
            f.error,
            BackendError::CircuitTooWide {
                circuit: 3,
                device: 2
            }
        ));
        assert_eq!(f.attempts, 0, "nothing was ever submitted for it");
        assert_eq!(f.shots_lost, 100);
        // The feasible sibling was executed and salvaged.
        assert_eq!(failure.succeeded(), vec![(Channel::UpstreamMeas, 0)]);
        let s = &failure.salvage.stats;
        assert_eq!(s.shots_executed, 250);
        assert_eq!(
            s.shots_requested,
            s.shots_executed + s.shots_saved + s.cache_shots_reused + s.shots_lost
        );
    }

    #[test]
    fn pool_parallel_ratio_reflects_member_balance() {
        let balanced = GraphStats {
            member_makespan: vec![Duration::from_secs(4); 4],
            ..GraphStats::default()
        };
        assert!((balanced.pool_parallel_ratio() - 4.0).abs() < 1e-12);
        let lopsided = GraphStats {
            member_makespan: vec![Duration::from_secs(8), Duration::ZERO],
            ..GraphStats::default()
        };
        assert!((lopsided.pool_parallel_ratio() - 1.0).abs() < 1e-12);
        assert!((GraphStats::default().pool_parallel_ratio() - 1.0).abs() < 1e-12);

        // absorb widens and adds the member vectors.
        let mut a = GraphStats {
            jobs_per_member: vec![2],
            shots_per_member: vec![100],
            member_makespan: vec![Duration::from_secs(1)],
            ..GraphStats::default()
        };
        a.absorb(&GraphStats {
            jobs_per_member: vec![1, 3],
            shots_per_member: vec![50, 70],
            member_makespan: vec![Duration::from_secs(2), Duration::from_secs(5)],
            jobs_failed_over: 1,
            ..GraphStats::default()
        });
        assert_eq!(a.jobs_per_member, vec![3, 3]);
        assert_eq!(a.shots_per_member, vec![150, 70]);
        assert_eq!(
            a.member_makespan,
            vec![Duration::from_secs(3), Duration::from_secs(5)]
        );
        assert_eq!(a.jobs_failed_over, 1);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = GraphStats {
            jobs_planned: 2,
            jobs_executed: 1,
            shots_requested: 100,
            shots_executed: 60,
            shots_saved: 40,
            ..GraphStats::default()
        };
        let b = GraphStats {
            jobs_planned: 3,
            jobs_executed: 3,
            shots_requested: 30,
            shots_executed: 30,
            shots_saved: 0,
            ..GraphStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.jobs_planned, 5);
        assert_eq!(a.jobs_executed, 4);
        assert_eq!(a.shots_saved, 40);
    }
}
