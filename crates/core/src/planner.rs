//! Graph builders: translating a [`BasisPlan`] (plus fragments and shot
//! schedule) into [`JobGraph`] jobs.
//!
//! The eigenstate, SIC, and online-detection execution paths used to build
//! their job lists independently (and the SIC path built a full
//! [`crate::tomography::ExperimentPlan`] only to discard its downstream
//! half). Here they are just different combinations of graph builders over
//! the same engine:
//!
//! * eigenstate gather = upstream jobs + downstream jobs;
//! * SIC gather = upstream jobs + SIC jobs (no downstream eigenstate job is
//!   ever constructed);
//! * online detection registers its per-round jobs inline in
//!   [`crate::pipeline`] (it needs the built circuits for the reuse cache)
//!   and seeds the measured counts back into the gather graph.

use crate::basis::{encode_meas, encode_prep, BasisPlan};
use crate::fragment::{Fragment, Fragments};
use crate::jobgraph::{Channel, JobGraph};
use crate::sic::{all_sic_settings, build_sic_circuit, encode_sic};
use crate::tomography::{build_downstream_circuit, build_upstream_circuit};
use qcut_circuit::circuit::Circuit;

/// Adds one upstream measurement job per setting of `plan`. `shots[i]`
/// pairs with the i-th setting of [`BasisPlan::all_meas_settings`]; a
/// single-element slice is broadcast to every setting.
pub fn add_upstream_jobs(
    graph: &mut JobGraph,
    fragments: &Fragments,
    plan: &BasisPlan,
    shots: &[u64],
) {
    let settings = plan.all_meas_settings();
    assert!(
        shots.len() == settings.len() || shots.len() == 1,
        "shot schedule arity: {} settings, {} budgets",
        settings.len(),
        shots.len()
    );
    for (i, setting) in settings.iter().enumerate() {
        let budget = if shots.len() == 1 { shots[0] } else { shots[i] };
        graph.add_job(
            build_upstream_circuit(&fragments.upstream, setting),
            (Channel::UpstreamMeas, encode_meas(setting)),
            budget,
        );
    }
}

/// Adds one downstream eigenstate-preparation job per prep combination of
/// `plan`, with the same broadcast rule as [`add_upstream_jobs`].
pub fn add_downstream_jobs(
    graph: &mut JobGraph,
    fragments: &Fragments,
    plan: &BasisPlan,
    shots: &[u64],
) {
    let settings = plan.all_prep_settings();
    assert!(
        shots.len() == settings.len() || shots.len() == 1,
        "shot schedule arity: {} preparations, {} budgets",
        settings.len(),
        shots.len()
    );
    for (i, preparation) in settings.iter().enumerate() {
        let budget = if shots.len() == 1 { shots[0] } else { shots[i] };
        graph.add_job(
            build_downstream_circuit(&fragments.downstream, preparation),
            (Channel::DownstreamPrep, encode_prep(preparation)),
            budget,
        );
    }
}

/// Adds the `4^K` SIC downstream preparation jobs.
pub fn add_sic_jobs(
    graph: &mut JobGraph,
    downstream: &Fragment,
    num_cuts: usize,
    shots_per_setting: u64,
) {
    for states in all_sic_settings(num_cuts) {
        graph.add_job(
            build_sic_circuit(downstream, &states),
            (Channel::SicPrep, encode_sic(&states)),
            shots_per_setting,
        );
    }
}

/// The single-job graph for an uncut reference run.
pub fn uncut_graph(circuit: &Circuit, shots: u64) -> JobGraph {
    let mut graph = JobGraph::new();
    graph.add_job(circuit.clone(), (Channel::Uncut, 0), shots);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_math::Pauli;

    fn fragments_for(seed: u64) -> Fragments {
        let (c, spec) = GoldenAnsatz::new(5, seed).build();
        Fragmenter::fragment(&c, &spec).unwrap()
    }

    #[test]
    fn eigenstate_graph_covers_all_settings() {
        let frags = fragments_for(0);
        let plan = BasisPlan::standard(1);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[1000]);
        add_downstream_jobs(&mut g, &frags, &plan, &[1000]);
        assert_eq!(g.jobs_planned(), 9);
        assert!(g.has_channel(Channel::UpstreamMeas));
        assert!(g.has_channel(Channel::DownstreamPrep));
    }

    #[test]
    fn golden_plan_shrinks_the_graph() {
        let frags = fragments_for(1);
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[1000]);
        add_downstream_jobs(&mut g, &frags, &plan, &[1000]);
        assert_eq!(g.jobs_planned(), 6);
    }

    #[test]
    fn sic_graph_plans_no_downstream_eigenstate_jobs() {
        // The satellite fix: the SIC path must never construct the
        // eigenstate downstream half it used to build and discard.
        let frags = fragments_for(2);
        let plan = BasisPlan::standard(1);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[1000]);
        add_sic_jobs(&mut g, &frags.downstream, 1, 1000);
        assert_eq!(g.jobs_planned(), 3 + 4);
        assert!(!g.has_channel(Channel::DownstreamPrep));
        assert!(g.has_channel(Channel::SicPrep));
    }

    #[test]
    fn per_setting_schedules_are_respected() {
        let frags = fragments_for(3);
        let plan = BasisPlan::standard(1);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[100, 200, 300]);
        let run = g
            .execute(&qcut_device::ideal::IdealBackend::new(0), false)
            .unwrap();
        assert_eq!(run.stats.shots_executed, 600);
    }

    #[test]
    #[should_panic(expected = "schedule arity")]
    fn wrong_schedule_arity_panics() {
        let frags = fragments_for(4);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &BasisPlan::standard(1), &[1, 2]);
    }

    #[test]
    fn uncut_graph_is_single_job() {
        let (c, _) = GoldenAnsatz::new(5, 5).build();
        let g = uncut_graph(&c, 2000);
        assert_eq!(g.jobs_planned(), 1);
        assert!(g.has_channel(Channel::Uncut));
    }
}
