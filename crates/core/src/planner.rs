//! Graph builders: translating a [`BasisPlan`] (plus fragments and shot
//! schedule) into [`JobGraph`] jobs.
//!
//! The eigenstate, SIC, and online-detection execution paths used to build
//! their job lists independently (and the SIC path built a full
//! [`crate::tomography::ExperimentPlan`] only to discard its downstream
//! half). Here they are just different combinations of graph builders over
//! the same engine:
//!
//! * eigenstate gather = upstream jobs + downstream jobs;
//! * SIC gather = upstream jobs + SIC jobs (no downstream eigenstate job is
//!   ever constructed);
//! * online detection registers its per-round jobs inline in
//!   [`crate::pipeline`] (it needs the built circuits for the reuse cache)
//!   and seeds the measured counts back into the gather graph;
//! * an adaptive refine round re-plans the same builders with the
//!   cumulative Neyman schedule and seeds the pilot's histograms
//!   (see [`crate::pipeline::CutExecutor::run`]).
//!
//! # Example
//!
//! Planning a full eigenstate gather produces one job per tomography
//! setting, emitted in trie-locality order so a prefix-sharing backend
//! simulates each shared fragment prefix once:
//!
//! ```
//! use qcut_circuit::ansatz::GoldenAnsatz;
//! use qcut_core::basis::BasisPlan;
//! use qcut_core::fragment::Fragmenter;
//! use qcut_core::jobgraph::JobGraph;
//! use qcut_core::planner::{add_downstream_jobs, add_upstream_jobs};
//!
//! let (circuit, cut) = GoldenAnsatz::new(5, 1).build();
//! let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
//! let plan = BasisPlan::standard(1);
//! let mut graph = JobGraph::new();
//! add_upstream_jobs(&mut graph, &frags, &plan, &[1000]);
//! add_downstream_jobs(&mut graph, &frags, &plan, &[1000]);
//! assert_eq!(graph.jobs_planned(), 9); // 3 measurements + 6 preparations
//! // Adjacent upstream variants share the fragment as a prefix.
//! assert!(graph.prefix_profile().gates_saved() > 0);
//! ```

use crate::basis::{encode_meas, encode_prep, BasisPlan};
use crate::fragment::{Fragment, Fragments};
use crate::jobgraph::{Channel, ConsumerKey, JobGraph};
use crate::sic::{all_sic_settings, build_sic_circuit, encode_sic};
use crate::tomography::{build_downstream_circuit, build_upstream_circuit};
use qcut_circuit::circuit::Circuit;
use qcut_sim::prefix::PrefixForest;

/// Reorders `(circuit, consumer, shots)` triples into trie-locality order
/// — the DFS order of the batch's prefix forest — so jobs sharing
/// instruction prefixes are emitted adjacently and a prefix-sharing
/// backend walks each shared segment once: the upstream gather costs
/// `O(G + Σ suffix)` gate applications instead of `O(V·G)` for `V`
/// variants of a `G`-gate fragment. The cartesian setting enumerations are
/// already prefix-clustered (earlier cuts vary slowest and rotations/preps
/// are spliced in cut order), so the only moves this makes are (a)
/// regrouping interleaved batches handed in by a caller and (b) emitting a
/// job whose circuit is a strict prefix of another *before* its extensions
/// (e.g. the rotation-free Z setting ahead of X and Y) — the walk order a
/// prefix-sharing backend simulates in.
///
/// The backend rebuilds its own forest at execution time; planning does
/// not try to hand it over (the graph keeps moving circuits as jobs are
/// registered). Building a forest is one FNV pass over the instruction
/// stream plus trie insertion — noise next to simulating even one gate on
/// a realistic state, so paying it per layer keeps the seams simple.
fn trie_local_jobs(jobs: Vec<(Circuit, ConsumerKey, u64)>) -> Vec<(Circuit, ConsumerKey, u64)> {
    let refs: Vec<&Circuit> = jobs.iter().map(|(c, _, _)| c).collect();
    let order = PrefixForest::build(&refs).dfs_job_order();
    let mut slots: Vec<Option<(Circuit, ConsumerKey, u64)>> = jobs.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|i| slots[i].take().expect("DFS emits every job exactly once"))
        .collect()
}

/// Registers pre-built jobs on the graph in trie-locality order.
fn add_trie_local(graph: &mut JobGraph, jobs: Vec<(Circuit, ConsumerKey, u64)>) {
    for (circuit, consumer, budget) in trie_local_jobs(jobs) {
        graph.add_job(circuit, consumer, budget);
    }
}

/// Adds one upstream measurement job per setting of `plan`, in
/// trie-locality order with prefix metadata available via
/// [`JobGraph::prefix_profile`]. `shots[i]` pairs with the i-th setting of
/// [`BasisPlan::all_meas_settings`]; a single-element slice is broadcast
/// to every setting.
pub fn add_upstream_jobs(
    graph: &mut JobGraph,
    fragments: &Fragments,
    plan: &BasisPlan,
    shots: &[u64],
) {
    let settings = plan.all_meas_settings();
    assert!(
        shots.len() == settings.len() || shots.len() == 1,
        "shot schedule arity: {} settings, {} budgets",
        settings.len(),
        shots.len()
    );
    let jobs = settings
        .iter()
        .enumerate()
        .map(|(i, setting)| {
            let budget = if shots.len() == 1 { shots[0] } else { shots[i] };
            (
                build_upstream_circuit(&fragments.upstream, setting),
                (Channel::UpstreamMeas, encode_meas(setting)),
                budget,
            )
        })
        .collect();
    add_trie_local(graph, jobs);
}

/// Adds one downstream eigenstate-preparation job per prep combination of
/// `plan`, with the same broadcast rule and trie-locality order as
/// [`add_upstream_jobs`].
pub fn add_downstream_jobs(
    graph: &mut JobGraph,
    fragments: &Fragments,
    plan: &BasisPlan,
    shots: &[u64],
) {
    let settings = plan.all_prep_settings();
    assert!(
        shots.len() == settings.len() || shots.len() == 1,
        "shot schedule arity: {} preparations, {} budgets",
        settings.len(),
        shots.len()
    );
    let jobs = settings
        .iter()
        .enumerate()
        .map(|(i, preparation)| {
            let budget = if shots.len() == 1 { shots[0] } else { shots[i] };
            (
                build_downstream_circuit(&fragments.downstream, preparation),
                (Channel::DownstreamPrep, encode_prep(preparation)),
                budget,
            )
        })
        .collect();
    add_trie_local(graph, jobs);
}

/// Adds the `4^K` SIC downstream preparation jobs, in trie-locality order.
/// `shots[i]` pairs with the i-th combination of
/// [`all_sic_settings`]; a single-element slice is broadcast to every
/// preparation (the same schedule rule as [`add_upstream_jobs`]).
pub fn add_sic_jobs(graph: &mut JobGraph, downstream: &Fragment, num_cuts: usize, shots: &[u64]) {
    let settings = all_sic_settings(num_cuts);
    assert!(
        shots.len() == settings.len() || shots.len() == 1,
        "shot schedule arity: {} SIC preparations, {} budgets",
        settings.len(),
        shots.len()
    );
    let jobs = settings
        .into_iter()
        .enumerate()
        .map(|(i, states)| {
            let budget = if shots.len() == 1 { shots[0] } else { shots[i] };
            (
                build_sic_circuit(downstream, &states),
                (Channel::SicPrep, encode_sic(&states)),
                budget,
            )
        })
        .collect();
    add_trie_local(graph, jobs);
}

/// The single-job graph for an uncut reference run.
pub fn uncut_graph(circuit: &Circuit, shots: u64) -> JobGraph {
    let mut graph = JobGraph::new();
    graph.add_job(circuit.clone(), (Channel::Uncut, 0), shots);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_math::Pauli;

    fn fragments_for(seed: u64) -> Fragments {
        let (c, spec) = GoldenAnsatz::new(5, seed).build();
        Fragmenter::fragment(&c, &spec).unwrap()
    }

    #[test]
    fn eigenstate_graph_covers_all_settings() {
        let frags = fragments_for(0);
        let plan = BasisPlan::standard(1);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[1000]);
        add_downstream_jobs(&mut g, &frags, &plan, &[1000]);
        assert_eq!(g.jobs_planned(), 9);
        assert!(g.has_channel(Channel::UpstreamMeas));
        assert!(g.has_channel(Channel::DownstreamPrep));
    }

    #[test]
    fn golden_plan_shrinks_the_graph() {
        let frags = fragments_for(1);
        let plan = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[1000]);
        add_downstream_jobs(&mut g, &frags, &plan, &[1000]);
        assert_eq!(g.jobs_planned(), 6);
    }

    #[test]
    fn sic_graph_plans_no_downstream_eigenstate_jobs() {
        // The satellite fix: the SIC path must never construct the
        // eigenstate downstream half it used to build and discard.
        let frags = fragments_for(2);
        let plan = BasisPlan::standard(1);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[1000]);
        add_sic_jobs(&mut g, &frags.downstream, 1, &[1000]);
        assert_eq!(g.jobs_planned(), 3 + 4);
        assert!(!g.has_channel(Channel::DownstreamPrep));
        assert!(g.has_channel(Channel::SicPrep));
    }

    #[test]
    fn per_setting_schedules_are_respected() {
        let frags = fragments_for(3);
        let plan = BasisPlan::standard(1);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &plan, &[100, 200, 300]);
        let run = g
            .execute(&qcut_device::ideal::IdealBackend::new(0), false)
            .unwrap();
        assert_eq!(run.stats.shots_executed, 600);
    }

    #[test]
    fn per_setting_sic_schedules_are_respected() {
        let frags = fragments_for(5);
        let mut g = JobGraph::new();
        add_sic_jobs(&mut g, &frags.downstream, 1, &[10, 20, 30, 40]);
        assert_eq!(g.jobs_planned(), 4);
        let run = g
            .execute(&qcut_device::ideal::IdealBackend::new(0), false)
            .unwrap();
        assert_eq!(run.stats.shots_executed, 100);
    }

    #[test]
    #[should_panic(expected = "schedule arity")]
    fn wrong_sic_schedule_arity_panics() {
        let frags = fragments_for(5);
        let mut g = JobGraph::new();
        add_sic_jobs(&mut g, &frags.downstream, 1, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "schedule arity")]
    fn wrong_schedule_arity_panics() {
        let frags = fragments_for(4);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &BasisPlan::standard(1), &[1, 2]);
    }

    #[test]
    fn upstream_jobs_are_emitted_in_trie_locality_order() {
        use qcut_circuit::ansatz::MultiCutAnsatz;
        // K = 2: 9 upstream variants, all sharing the full fragment as an
        // instruction prefix, with earlier-cut rotations varying slowest.
        let (c, spec) = MultiCutAnsatz::new(2, 3).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &BasisPlan::standard(2), &[500]);
        let circuits: Vec<_> = g.node_circuits().collect();
        assert_eq!(circuits.len(), 9);
        let base_len = frags.upstream.circuit.len();
        for pair in circuits.windows(2) {
            assert!(
                pair[0].shared_prefix_len(pair[1]) >= base_len,
                "adjacent upstream jobs must share the fragment prefix"
            );
        }
        // The shared walk pays the fragment once: profile confirms.
        let profile = g.prefix_profile();
        assert_eq!(profile.circuits, 9);
        assert!(profile.gates_saved() >= 8 * base_len as u64);
    }

    #[test]
    fn trie_local_jobs_regroups_interleaved_batches() {
        // Two prefix families interleaved; the planner's ordering clusters
        // each family while preserving within-family order.
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut a1 = a.clone();
        a1.s(1);
        let mut b = Circuit::new(2);
        b.x(0).cz(0, 1);
        let mut b1 = b.clone();
        b1.t(1);
        let jobs = vec![
            (a.clone(), (Channel::Uncut, 0u64), 1),
            (b.clone(), (Channel::Uncut, 1), 1),
            (a1, (Channel::Uncut, 2), 1),
            (b1, (Channel::Uncut, 3), 1),
        ];
        let keys: Vec<u64> = trie_local_jobs(jobs).iter().map(|(_, k, _)| k.1).collect();
        assert_eq!(keys, vec![0, 2, 1, 3]);
    }

    #[test]
    fn planner_emits_prefixes_before_their_extensions() {
        // Single cut: the Z variant (no rotation) is a strict instruction
        // prefix of the X and Y variants, so the trie walk — and therefore
        // planner emission — visits it first; X and Y keep their relative
        // (cartesian) order.
        use crate::basis::MeasBasis;
        let frags = fragments_for(6);
        let mut g = JobGraph::new();
        add_upstream_jobs(&mut g, &frags, &BasisPlan::standard(1), &[100]);
        let emitted: Vec<_> = g.node_circuits().cloned().collect();
        let build = |m: MeasBasis| build_upstream_circuit(&frags.upstream, &[m]);
        assert_eq!(
            emitted,
            vec![
                build(MeasBasis::Z),
                build(MeasBasis::X),
                build(MeasBasis::Y)
            ]
        );
    }

    #[test]
    fn uncut_graph_is_single_job() {
        let (c, _) = GoldenAnsatz::new(5, 5).build();
        let g = uncut_graph(&c, 2000);
        assert_eq!(g.jobs_planned(), 1);
        assert!(g.has_channel(Channel::Uncut));
    }
}
