//! Error type of the cutting pipeline.

use crate::allocation::AllocationError;
use crate::analysis::Diagnostics;
use crate::fragment::FragmentError;
use crate::jobgraph::{ConsumerKey, GraphFailure};
use crate::report::FailureRecord;
use qcut_circuit::cut::CutError;
use qcut_device::backend::BackendError;
use std::fmt;

/// Permanent execution failure under [`crate::retry::FailurePolicy::Fail`]:
/// which engine nodes failed (with the error and attempt count of each)
/// and which consumers *did* receive their counts — so a caller can see
/// exactly what a `Degrade` rerun would have salvaged.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionFailure {
    /// Per-node failure records, in engine insertion order.
    pub failed: Vec<FailureRecord>,
    /// Consumers whose data was delivered before the run was failed.
    pub succeeded: Vec<ConsumerKey>,
    /// The first failed node's backend error (the cause chain's next
    /// link).
    pub cause: BackendError,
}

/// Anything that can go wrong between "here is a circuit and a cut" and
/// "here is the reconstructed distribution".
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Static analysis found deny-level problems; nothing was executed.
    /// The payload carries every finding (denials and warnings alike).
    Analysis(Diagnostics),
    /// The cut specification is invalid for this circuit.
    Cut(CutError),
    /// Fragment extraction failed.
    Fragment(FragmentError),
    /// A backend job failed.
    Backend(BackendError),
    /// One or more engine nodes failed permanently (retries exhausted or
    /// deterministic errors) under [`crate::retry::FailurePolicy::Fail`].
    /// Names both the failed nodes and the salvaged consumers.
    Execution(ExecutionFailure),
    /// The shot-allocation policy cannot build a valid schedule (e.g. the
    /// total budget is smaller than the number of settings).
    Allocation(AllocationError),
    /// Online detection ran out of shot budget without reaching a verdict
    /// for the named cut.
    DetectionUndecided {
        /// Index of the cut that could not be decided.
        cut: usize,
        /// Shots spent per setting before giving up.
        shots_spent: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Analysis(d) => {
                writeln!(f, "static analysis rejected the workload before execution:")?;
                // One finding per line, via the Diagnostics renderer.
                write!(f, "{d}")
            }
            PipelineError::Cut(e) => write!(f, "cut validation failed: {e}"),
            PipelineError::Fragment(e) => write!(f, "fragmenting failed: {e}"),
            PipelineError::Backend(e) => write!(f, "backend error: {e}"),
            PipelineError::Execution(e) => {
                let lost: u64 = e.failed.iter().map(|r| r.shots_lost).sum();
                write!(
                    f,
                    "{} node(s) failed permanently ({}); {} consumer(s) succeeded and \
                     {lost} shot(s) were lost — FailurePolicy::Degrade would salvage \
                     the surviving plan",
                    e.failed.len(),
                    e.cause,
                    e.succeeded.len(),
                )
            }
            PipelineError::Allocation(e) => write!(f, "shot allocation failed: {e}"),
            PipelineError::DetectionUndecided { cut, shots_spent } => write!(
                f,
                "online golden detection undecided for cut {cut} after {shots_spent} \
                 shots/setting; raise max_shots, loosen epsilon, or fall back to \
                 GoldenPolicy::Disabled"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    /// The underlying cause, so callers can walk `Pipeline → Backend`
    /// (or `→ Cut` / `→ Fragment` / `→ Allocation`) chains with the
    /// standard `source()` iteration instead of matching variants.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Cut(e) => Some(e),
            PipelineError::Fragment(e) => Some(e),
            PipelineError::Backend(e) => Some(e),
            PipelineError::Execution(e) => Some(&e.cause),
            PipelineError::Allocation(e) => Some(e),
            // Analysis diagnostics and detection verdicts are findings of
            // this crate itself — there is no deeper cause to expose.
            PipelineError::Analysis(_) | PipelineError::DetectionUndecided { .. } => None,
        }
    }
}

impl From<CutError> for PipelineError {
    fn from(e: CutError) -> Self {
        PipelineError::Cut(e)
    }
}

impl From<FragmentError> for PipelineError {
    fn from(e: FragmentError) -> Self {
        PipelineError::Fragment(e)
    }
}

impl From<BackendError> for PipelineError {
    fn from(e: BackendError) -> Self {
        PipelineError::Backend(e)
    }
}

impl From<AllocationError> for PipelineError {
    fn from(e: AllocationError) -> Self {
        PipelineError::Allocation(e)
    }
}

impl From<Diagnostics> for PipelineError {
    fn from(d: Diagnostics) -> Self {
        PipelineError::Analysis(d)
    }
}

impl From<Box<GraphFailure>> for PipelineError {
    fn from(failure: Box<GraphFailure>) -> Self {
        let cause = failure
            .first_error()
            .cloned()
            .unwrap_or(BackendError::Unavailable);
        PipelineError::Execution(ExecutionFailure {
            failed: failure.failures.iter().map(FailureRecord::from).collect(),
            succeeded: failure.succeeded(),
            cause,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = PipelineError::DetectionUndecided {
            cut: 2,
            shots_spent: 9000,
        };
        let s = e.to_string();
        assert!(s.contains("cut 2"));
        assert!(s.contains("9000"));
        assert!(s.contains("max_shots"));
    }

    #[test]
    fn analysis_rejections_render_one_finding_per_line() {
        use crate::analysis::{analyze, AnalysisConfig};
        use crate::pipeline::ExecutionOptions;
        use qcut_circuit::circuit::Circuit;
        use qcut_circuit::cut::CutSpec;

        // An idle qubit and an invalid cut: two findings.
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        let opts = ExecutionOptions {
            analysis: AnalysisConfig::default(),
            ..Default::default()
        };
        let diags = analyze(&c, &CutSpec::single(2, 5), &opts);
        assert!(diags.len() >= 2, "{diags}");
        let e = PipelineError::Analysis(diags.clone());
        let msg = e.to_string();
        assert!(msg.starts_with("static analysis rejected the workload"));
        assert_eq!(
            msg.lines().count(),
            1 + diags.len(),
            "header plus one line per finding: {msg}"
        );
        assert!(msg.contains("QA101"), "{msg}");
    }

    #[test]
    fn conversions_wrap() {
        let e: PipelineError = CutError::Empty.into();
        assert!(matches!(e, PipelineError::Cut(CutError::Empty)));
        let e: PipelineError = BackendError::NoShots.into();
        assert!(matches!(e, PipelineError::Backend(BackendError::NoShots)));
        let e: PipelineError = AllocationError::BudgetTooSmall {
            total: 3,
            settings: 9,
        }
        .into();
        assert!(matches!(
            e,
            PipelineError::Allocation(AllocationError::BudgetTooSmall {
                total: 3,
                settings: 9
            })
        ));
        assert!(e.to_string().contains("shot allocation failed"));
    }

    #[test]
    fn source_chains_reach_the_underlying_cause() {
        use std::error::Error;

        let e = PipelineError::Backend(BackendError::NoShots);
        let cause = e.source().expect("backend errors have a cause");
        assert_eq!(cause.to_string(), BackendError::NoShots.to_string());
        assert!(cause.downcast_ref::<BackendError>().is_some());

        let e = PipelineError::Cut(CutError::Empty);
        assert!(e
            .source()
            .expect("cut")
            .downcast_ref::<CutError>()
            .is_some());
        let e = PipelineError::Allocation(AllocationError::BudgetTooSmall {
            total: 1,
            settings: 2,
        });
        assert!(e.source().is_some());

        // Findings of this crate itself terminate the chain.
        let e = PipelineError::DetectionUndecided {
            cut: 0,
            shots_spent: 1,
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn execution_failures_carry_salvage_and_chain_to_the_backend() {
        use crate::jobgraph::Channel;
        use std::error::Error;

        let e = PipelineError::Execution(ExecutionFailure {
            failed: vec![FailureRecord {
                consumers: vec![(Channel::UpstreamMeas, 2)],
                error: "transient network fault on attempt 3".to_string(),
                attempts: 3,
                shots_lost: 1000,
            }],
            succeeded: vec![(Channel::UpstreamMeas, 0), (Channel::DownstreamPrep, 1)],
            cause: BackendError::Transient {
                kind: qcut_device::backend::TransientKind::Network,
                attempt: 3,
            },
        });
        let msg = e.to_string();
        assert!(msg.contains("1 node(s) failed"), "{msg}");
        assert!(msg.contains("2 consumer(s) succeeded"), "{msg}");
        assert!(msg.contains("1000 shot(s)"), "{msg}");
        let cause = e.source().expect("execution failures have a cause");
        assert!(matches!(
            cause.downcast_ref::<BackendError>(),
            Some(BackendError::Transient { attempt: 3, .. })
        ));
    }
}
