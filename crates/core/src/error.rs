//! Error type of the cutting pipeline.

use crate::allocation::AllocationError;
use crate::analysis::Diagnostics;
use crate::fragment::FragmentError;
use qcut_circuit::cut::CutError;
use qcut_device::backend::BackendError;
use std::fmt;

/// Anything that can go wrong between "here is a circuit and a cut" and
/// "here is the reconstructed distribution".
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Static analysis found deny-level problems; nothing was executed.
    /// The payload carries every finding (denials and warnings alike).
    Analysis(Diagnostics),
    /// The cut specification is invalid for this circuit.
    Cut(CutError),
    /// Fragment extraction failed.
    Fragment(FragmentError),
    /// A backend job failed.
    Backend(BackendError),
    /// The shot-allocation policy cannot build a valid schedule (e.g. the
    /// total budget is smaller than the number of settings).
    Allocation(AllocationError),
    /// Online detection ran out of shot budget without reaching a verdict
    /// for the named cut.
    DetectionUndecided {
        /// Index of the cut that could not be decided.
        cut: usize,
        /// Shots spent per setting before giving up.
        shots_spent: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Analysis(d) => {
                let denials: Vec<String> = d.deny().map(|x| x.to_string()).collect();
                write!(
                    f,
                    "static analysis rejected the workload before execution: {}",
                    denials.join("; ")
                )
            }
            PipelineError::Cut(e) => write!(f, "cut validation failed: {e}"),
            PipelineError::Fragment(e) => write!(f, "fragmenting failed: {e}"),
            PipelineError::Backend(e) => write!(f, "backend error: {e}"),
            PipelineError::Allocation(e) => write!(f, "shot allocation failed: {e}"),
            PipelineError::DetectionUndecided { cut, shots_spent } => write!(
                f,
                "online golden detection undecided for cut {cut} after {shots_spent} \
                 shots/setting; raise max_shots, loosen epsilon, or fall back to \
                 GoldenPolicy::Disabled"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CutError> for PipelineError {
    fn from(e: CutError) -> Self {
        PipelineError::Cut(e)
    }
}

impl From<FragmentError> for PipelineError {
    fn from(e: FragmentError) -> Self {
        PipelineError::Fragment(e)
    }
}

impl From<BackendError> for PipelineError {
    fn from(e: BackendError) -> Self {
        PipelineError::Backend(e)
    }
}

impl From<AllocationError> for PipelineError {
    fn from(e: AllocationError) -> Self {
        PipelineError::Allocation(e)
    }
}

impl From<Diagnostics> for PipelineError {
    fn from(d: Diagnostics) -> Self {
        PipelineError::Analysis(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = PipelineError::DetectionUndecided {
            cut: 2,
            shots_spent: 9000,
        };
        let s = e.to_string();
        assert!(s.contains("cut 2"));
        assert!(s.contains("9000"));
        assert!(s.contains("max_shots"));
    }

    #[test]
    fn conversions_wrap() {
        let e: PipelineError = CutError::Empty.into();
        assert!(matches!(e, PipelineError::Cut(CutError::Empty)));
        let e: PipelineError = BackendError::NoShots.into();
        assert!(matches!(e, PipelineError::Backend(BackendError::NoShots)));
        let e: PipelineError = AllocationError::BudgetTooSmall {
            total: 3,
            settings: 9,
        }
        .into();
        assert!(matches!(
            e,
            PipelineError::Allocation(AllocationError::BudgetTooSmall {
                total: 3,
                settings: 9
            })
        ));
        assert!(e.to_string().contains("shot allocation failed"));
    }
}
