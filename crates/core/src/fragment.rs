//! Fragment extraction: turning a circuit plus a validated [`CutSpec`]
//! into an upstream and a downstream fragment with explicit port maps.
//!
//! Conventions (paper §II-B): the upstream fragment `f1` ends each cut wire
//! in a *cut port* that tomography measures in a Pauli basis; its remaining
//! qubits are *outputs* measured in Z. The downstream fragment `f2` begins
//! each cut wire in a *cut port* that is re-initialised into preparation
//! states; **all** of its qubits are outputs. Every qubit of the original
//! circuit is measured exactly once across the two fragments.

use qcut_circuit::circuit::{Circuit, Instruction};
use qcut_circuit::cut::{CutError, CutSpec};
use std::fmt;

/// Which side of the bipartition a fragment is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentRole {
    /// Before the cuts; its cut ports are measured in tomography bases.
    Upstream,
    /// After the cuts; its cut ports are re-initialised into prep states.
    Downstream,
}

/// One circuit fragment with its qubit maps.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The fragment circuit over local qubit indices `0..width`.
    pub circuit: Circuit,
    /// `global_of_local[l]` = original-circuit qubit of local qubit `l`.
    pub global_of_local: Vec<usize>,
    /// Local qubit carrying cut `k` (`cut_ports[k]`), in cut-index order.
    pub cut_ports: Vec<usize>,
    /// Local qubits measured as circuit outputs, ascending.
    pub output_locals: Vec<usize>,
    /// Global positions of those outputs (aligned with `output_locals`).
    pub output_globals: Vec<usize>,
    /// Role of this fragment.
    pub role: FragmentRole,
}

impl Fragment {
    /// Fragment width in qubits.
    pub fn width(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// Number of output bits this fragment contributes to the final
    /// distribution.
    pub fn num_outputs(&self) -> usize {
        self.output_locals.len()
    }
}

/// The result of bipartitioning a circuit.
#[derive(Debug, Clone)]
pub struct Fragments {
    /// Upstream fragment `f1`.
    pub upstream: Fragment,
    /// Downstream fragment `f2`.
    pub downstream: Fragment,
    /// Number of cuts `K`.
    pub num_cuts: usize,
    /// Width of the original circuit.
    pub total_qubits: usize,
}

/// Errors from fragment extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// The cut specification failed validation.
    Cut(CutError),
    /// A qubit has no instructions; its fragment membership is undefined.
    IdleQubit(usize),
}

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentError::Cut(e) => write!(f, "invalid cut: {e}"),
            FragmentError::IdleQubit(q) => write!(
                f,
                "qubit {q} has no instructions; remove it or add gates so it \
                 belongs to one side of the cut"
            ),
        }
    }
}

impl std::error::Error for FragmentError {}

impl From<CutError> for FragmentError {
    fn from(e: CutError) -> Self {
        FragmentError::Cut(e)
    }
}

/// Splits circuits along validated cut specifications.
pub struct Fragmenter;

impl Fragmenter {
    /// Bipartitions `circuit` along `spec`.
    pub fn fragment(circuit: &Circuit, spec: &CutSpec) -> Result<Fragments, FragmentError> {
        let (_edges, upstream_mask) = spec.validate(circuit)?;
        let n = circuit.num_qubits();

        // Idle qubits have no home; reject with a pointer at the culprit.
        let active = circuit.active_qubits();
        for q in 0..n {
            if !active.contains(&q) {
                return Err(FragmentError::IdleQubit(q));
            }
        }

        let cut_qubits: Vec<usize> = spec.cuts().iter().map(|c| c.qubit).collect();

        // Qubit sets per side: a qubit belongs to a side if any of its
        // instructions does. Cut qubits appear on both sides.
        let mut in_up = vec![false; n];
        let mut in_down = vec![false; n];
        for (i, inst) in circuit.instructions().iter().enumerate() {
            let side = if upstream_mask[i] {
                &mut in_up
            } else {
                &mut in_down
            };
            for &q in &inst.qubits {
                side[q] = true;
            }
        }
        // Consistency: exactly the cut wires cross.
        for q in 0..n {
            let crosses = in_up[q] && in_down[q];
            let is_cut = cut_qubits.contains(&q);
            debug_assert_eq!(
                crosses, is_cut,
                "wire {q} crossing state inconsistent with cut spec"
            );
        }

        let up_globals: Vec<usize> = (0..n).filter(|&q| in_up[q]).collect();
        let down_globals: Vec<usize> = (0..n).filter(|&q| in_down[q]).collect();

        let upstream = Self::build_fragment(
            circuit,
            &upstream_mask,
            true,
            &up_globals,
            &cut_qubits,
            FragmentRole::Upstream,
        );
        let downstream = Self::build_fragment(
            circuit,
            &upstream_mask,
            false,
            &down_globals,
            &cut_qubits,
            FragmentRole::Downstream,
        );

        Ok(Fragments {
            upstream,
            downstream,
            num_cuts: spec.num_cuts(),
            total_qubits: n,
        })
    }

    fn build_fragment(
        circuit: &Circuit,
        upstream_mask: &[bool],
        want_upstream: bool,
        globals: &[usize],
        cut_qubits: &[usize],
        role: FragmentRole,
    ) -> Fragment {
        let mut local_of_global = vec![usize::MAX; circuit.num_qubits()];
        for (l, &g) in globals.iter().enumerate() {
            local_of_global[g] = l;
        }

        let mut frag = Circuit::new(globals.len());
        for (i, inst) in circuit.instructions().iter().enumerate() {
            if upstream_mask[i] == want_upstream {
                let qubits: Vec<usize> = inst.qubits.iter().map(|&q| local_of_global[q]).collect();
                debug_assert!(qubits.iter().all(|&q| q != usize::MAX));
                // Re-push through the circuit API to keep validation.
                let Instruction { gate, .. } = inst.clone();
                frag.push(gate, &qubits);
            }
        }

        let cut_ports: Vec<usize> = cut_qubits.iter().map(|&q| local_of_global[q]).collect();
        let (output_locals, output_globals): (Vec<usize>, Vec<usize>) = match role {
            FragmentRole::Upstream => globals
                .iter()
                .enumerate()
                .filter(|(_, g)| !cut_qubits.contains(g))
                .map(|(l, &g)| (l, g))
                .unzip(),
            // Downstream: every qubit (including the continued cut wires)
            // is an output.
            FragmentRole::Downstream => globals.iter().enumerate().map(|(l, &g)| (l, g)).unzip(),
        };

        Fragment {
            circuit: frag,
            global_of_local: globals.to_vec(),
            cut_ports,
            output_locals,
            output_globals,
            role,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcut_circuit::ansatz::{GoldenAnsatz, MultiCutAnsatz};
    use qcut_circuit::cut::CutSpec;

    fn chain3() -> (Circuit, CutSpec) {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        (c, CutSpec::single(1, 0))
    }

    #[test]
    fn three_qubit_chain_fragments() {
        let (c, spec) = chain3();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        assert_eq!(frags.num_cuts, 1);
        assert_eq!(frags.total_qubits, 3);

        let up = &frags.upstream;
        assert_eq!(up.width(), 2);
        assert_eq!(up.global_of_local, vec![0, 1]);
        assert_eq!(up.cut_ports, vec![1]); // local index of qubit 1
        assert_eq!(up.output_globals, vec![0]);
        assert_eq!(up.circuit.len(), 1);

        let down = &frags.downstream;
        assert_eq!(down.width(), 2);
        assert_eq!(down.global_of_local, vec![1, 2]);
        assert_eq!(down.cut_ports, vec![0]);
        assert_eq!(down.output_globals, vec![1, 2]);
        assert_eq!(down.circuit.len(), 1);
    }

    #[test]
    fn every_qubit_measured_exactly_once() {
        let (c, spec) = GoldenAnsatz::new(5, 3).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let mut all: Vec<usize> = frags
            .upstream
            .output_globals
            .iter()
            .chain(&frags.downstream.output_globals)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn paper_fragment_sizes() {
        // 5-qubit circuit -> two 3-qubit fragments; 7 -> two 4-qubit.
        for (width, frag_width) in [(5usize, 3usize), (7, 4)] {
            let (c, spec) = GoldenAnsatz::new(width, 0).build();
            let frags = Fragmenter::fragment(&c, &spec).unwrap();
            assert_eq!(frags.upstream.width(), frag_width, "width {width}");
            assert_eq!(frags.downstream.width(), frag_width, "width {width}");
            // Output bit split: floor(n/2) upstream, ceil(n/2) downstream
            // (paper Eq. 16).
            assert_eq!(frags.upstream.num_outputs(), width / 2);
            assert_eq!(frags.downstream.num_outputs(), width / 2 + 1);
        }
    }

    #[test]
    fn fragment_instruction_counts_add_up() {
        let (c, spec) = GoldenAnsatz::new(7, 11).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        assert_eq!(
            frags.upstream.circuit.len() + frags.downstream.circuit.len(),
            c.len()
        );
    }

    #[test]
    fn multi_cut_fragments() {
        for k in 1..=3usize {
            let (c, spec) = MultiCutAnsatz::new(k, 5).build();
            let frags = Fragmenter::fragment(&c, &spec).unwrap();
            assert_eq!(frags.num_cuts, k);
            assert_eq!(frags.upstream.cut_ports.len(), k);
            assert_eq!(frags.downstream.cut_ports.len(), k);
            // All qubits measured exactly once.
            let mut all: Vec<usize> = frags
                .upstream
                .output_globals
                .iter()
                .chain(&frags.downstream.output_globals)
                .copied()
                .collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), c.num_qubits(), "K={k}");
        }
    }

    #[test]
    fn idle_qubit_rejected() {
        let mut c = Circuit::new(4); // qubit 3 idle
        c.cx(0, 1).cx(1, 2);
        let err = Fragmenter::fragment(&c, &CutSpec::single(1, 0)).unwrap_err();
        assert_eq!(err, FragmentError::IdleQubit(3));
    }

    #[test]
    fn invalid_cut_propagates() {
        let (c, _) = chain3();
        let err = Fragmenter::fragment(&c, &CutSpec::single(0, 9)).unwrap_err();
        assert!(matches!(err, FragmentError::Cut(CutError::NoSuchEdge(_))));
    }

    #[test]
    fn upstream_gates_preserve_order() {
        let (c, spec) = GoldenAnsatz::new(5, 2).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        // Rebuild the upstream gate list from the original circuit and
        // check the fragment preserves relative order.
        let (_, mask) = spec.validate(&c).unwrap();
        let expected: Vec<String> = c
            .instructions()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[*i])
            .map(|(_, inst)| inst.gate.name())
            .collect();
        let got: Vec<String> = frags
            .upstream
            .circuit
            .instructions()
            .iter()
            .map(|inst| inst.gate.name())
            .collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn downstream_cut_port_is_an_output_but_upstream_is_not() {
        let (c, spec) = chain3();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let up = &frags.upstream;
        assert!(!up.output_locals.contains(&up.cut_ports[0]));
        let down = &frags.downstream;
        assert!(down.output_locals.contains(&down.cut_ports[0]));
    }
}
