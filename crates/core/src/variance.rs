//! Shot-noise variance propagation through the reconstruction contraction.
//!
//! The paper's §IV closes on exactly this question: online decisions
//! "would require further statistical analysis of acceptable error and the
//! amplification of error through tensor contraction". This module provides
//! that analysis for the estimator itself: a per-bitstring variance
//! estimate of the reconstructed quasi-probability
//!
//! ```text
//! p̂(b) = 2^{-K} Σ_M Â[M][b1] · D̂[M][b2]
//! ```
//!
//! where `Â` and `D̂` come from *independent* measurement runs. Using
//! independence and the delta method,
//!
//! ```text
//! Var[p̂(b)] ≈ 4^{-K} Σ_M ( A² Var[D] + D² Var[A] + Var[A]Var[D] )
//! ```
//!
//! plus cross-`M` covariance terms for strings sharing a measurement
//! setting or preparation; we bound those conservatively by accumulating
//! per-setting contributions coherently (an upper-bound flavour suitable
//! for error bars). Per-coefficient variances come from the multinomial:
//! a signed-sum coefficient estimated from `N` shots has
//! `Var ≤ (1 − coeff²)/N ≤ 1/N`.
//!
//! The estimate is validated against the empirical trial-to-trial variance
//! in the tests below. The same machinery scores candidate schedules
//! before execution ([`variance_from_schedule`]) and drives the two-round
//! adaptive allocation's per-setting Neyman weights ([`neyman_scores`]).
//!
//! # Example
//!
//! The predicted RMS error follows the `1/√N` law, so budgets can be
//! sized before anything executes:
//!
//! ```
//! use qcut_circuit::ansatz::GoldenAnsatz;
//! use qcut_core::basis::BasisPlan;
//! use qcut_core::fragment::Fragmenter;
//! use qcut_core::reconstruction::{exact_downstream_tensor, exact_upstream_tensor};
//! use qcut_core::variance::predicted_rms_for_budget;
//!
//! let (circuit, cut) = GoldenAnsatz::new(5, 7).build();
//! let frags = Fragmenter::fragment(&circuit, &cut).unwrap();
//! let plan = BasisPlan::standard(1);
//! let up = exact_upstream_tensor(&frags.upstream, &plan);
//! let down = exact_downstream_tensor(&frags.downstream, &plan);
//! // 4× the shots halve the predicted error.
//! let rms_1k = predicted_rms_for_budget(&frags, &plan, &up, &down, 1000);
//! let rms_4k = predicted_rms_for_budget(&frags, &plan, &up, &down, 4000);
//! assert!((rms_1k / rms_4k - 2.0).abs() < 0.05);
//! ```

use crate::allocation::ShotSchedule;
use crate::basis::{encode_meas, encode_prep, BasisPlan};
use crate::execution::FragmentData;
use crate::fragment::Fragments;
use crate::reconstruction::{downstream_tensor, upstream_tensor, CoefficientTensor};
use qcut_math::Pauli;
use qcut_stats::distribution::Distribution;
use std::collections::HashMap;

/// Per-bitstring standard errors of a reconstructed distribution.
#[derive(Debug, Clone)]
pub struct ReconstructionError {
    num_bits: usize,
    variance: Vec<f64>,
}

impl ReconstructionError {
    /// Number of bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Variance estimate for one bitstring.
    pub fn variance(&self, bits: u64) -> f64 {
        self.variance[bits as usize]
    }

    /// Standard error for one bitstring.
    pub fn std_error(&self, bits: u64) -> f64 {
        self.variance(bits).sqrt()
    }

    /// Root-mean-square standard error across all outcomes — a single
    /// figure of merit for "how noisy is this reconstruction".
    pub fn rms_error(&self) -> f64 {
        (self.variance.iter().sum::<f64>() / self.variance.len() as f64).sqrt()
    }

    /// The largest per-outcome standard error.
    pub fn max_error(&self) -> f64 {
        self.variance.iter().fold(0.0f64, |a, &v| a.max(v)).sqrt()
    }
}

/// Estimates the shot-noise variance of [`crate::reconstruction::reconstruct`]'s
/// output, from the same fragment data.
///
/// Per-string variances come from the *realized* per-setting shot counts
/// in `data` (the delivered histogram totals), so the estimate stays
/// correct under non-uniform [`crate::allocation::ShotAllocation`]
/// schedules and when engine dedup delivered merged histograms larger
/// than a setting's request.
pub fn reconstruction_variance(
    fragments: &Fragments,
    plan: &BasisPlan,
    data: &FragmentData,
) -> ReconstructionError {
    let up = upstream_tensor(&fragments.upstream, plan, data);
    let down = downstream_tensor(&fragments.downstream, plan, data);
    variance_core(fragments, plan, &up, &down, |m| {
        string_vars(plan, m, &data.upstream_shots, &data.downstream_shots)
    })
}

/// The per-string variance pair `(Var[A], Var[D])` under explicit
/// per-setting shot counts: the upstream coefficient of string `m` is
/// estimated from its measurement setting's `N` shots (`Var ≤ 1/N`); the
/// downstream coefficient is a signed sum over the string's `2^K` prep
/// combinations, each contributing `1/N_combo`.
fn string_vars(
    plan: &BasisPlan,
    m: &[Pauli],
    meas_shots: &HashMap<u64, u64>,
    prep_shots: &HashMap<u64, u64>,
) -> (f64, f64) {
    // A missing setting is a plan/data mismatch — fail loudly like the
    // tensor builders do, instead of silently returning 1-shot variance.
    let shots_of = |map: &HashMap<u64, u64>, key: u64| -> f64 {
        let n = *map
            .get(&key)
            .unwrap_or_else(|| panic!("missing shot record for setting key {key} of {m:?}"));
        n.max(1) as f64
    };
    let var_a = 1.0 / shots_of(meas_shots, encode_meas(&plan.setting_for(m)));
    let num_cuts = plan.num_cuts();
    let pairs: Vec<_> = (0..num_cuts).map(|k| plan.prep_pair(k, m[k])).collect();
    let mut var_d = 0.0;
    for combo in 0..(1usize << num_cuts) {
        let states: Vec<_> = pairs
            .iter()
            .enumerate()
            .map(|(k, pair)| pair[(combo >> k) & 1].0)
            .collect();
        var_d += 1.0 / shots_of(prep_shots, encode_prep(&states));
    }
    (var_a, var_d)
}

/// Variance estimate from explicit tensors and a (uniform) per-setting shot
/// budget.
pub fn variance_from_tensors(
    fragments: &Fragments,
    plan: &BasisPlan,
    upstream: &CoefficientTensor,
    downstream: &CoefficientTensor,
    shots_per_setting: u64,
) -> ReconstructionError {
    let shots = shots_per_setting.max(1) as f64;
    // Per-coefficient variance bound from the multinomial signed sum.
    // Downstream coefficients are 2^K-term signed sums of independent
    // preparations, each with variance ≤ 1/N.
    let k = plan.num_cuts() as i32;
    let var_a = 1.0 / shots;
    let var_d = 2.0f64.powi(k) / shots;
    variance_core(fragments, plan, upstream, downstream, |_| (var_a, var_d))
}

/// Variance estimate from explicit tensors and a *requested* per-setting
/// schedule (aligned with the plan's enumerations, as produced by
/// [`crate::allocation::schedule_for_plan`]). Deterministic given exact
/// tensors — the planning-time counterpart of [`reconstruction_variance`],
/// used to compare allocation policies before anything executes.
pub fn variance_from_schedule(
    fragments: &Fragments,
    plan: &BasisPlan,
    upstream: &CoefficientTensor,
    downstream: &CoefficientTensor,
    schedule: &ShotSchedule,
) -> ReconstructionError {
    let meas_settings = plan.all_meas_settings();
    let prep_settings = plan.all_prep_settings();
    assert_eq!(
        schedule.upstream.len(),
        meas_settings.len(),
        "schedule arity"
    );
    assert_eq!(
        schedule.downstream.len(),
        prep_settings.len(),
        "schedule arity"
    );
    let meas_shots: HashMap<u64, u64> = meas_settings
        .iter()
        .zip(&schedule.upstream)
        .map(|(s, &n)| (encode_meas(s), n))
        .collect();
    let prep_shots: HashMap<u64, u64> = prep_settings
        .iter()
        .zip(&schedule.downstream)
        .map(|(s, &n)| (encode_prep(s), n))
        .collect();
    variance_core(fragments, plan, upstream, downstream, |m| {
        string_vars(plan, m, &meas_shots, &prep_shots)
    })
}

/// Per-setting Neyman scores for the two-round adaptive allocation,
/// aligned with [`BasisPlan::all_meas_settings`] /
/// [`BasisPlan::all_prep_settings`] order.
#[derive(Debug, Clone)]
pub struct NeymanScores {
    /// One score per upstream measurement setting.
    pub upstream: Vec<f64>,
    /// One score per downstream eigenstate preparation.
    pub downstream: Vec<f64>,
}

/// Scores each setting's first-order contribution to the reconstruction
/// variance, from (pilot-)empirical tensors.
///
/// Under the same per-coefficient model [`variance_from_schedule`]
/// evaluates (`Var[Â_M] ≤ 1/N_setting`, `Var[D̂_M] ≤ Σ_combo 1/N_prep`),
/// the total variance is — up to the second-order `Var·Var` cross term —
/// *linear in the per-setting `1/N`*:
///
/// ```text
/// Σ_b Var[p̂(b)] ≈ 4^{-K} ( Σ_s c_s/N_s + Σ_p c_p/N_p )
/// c_s = 2^{n1} Σ_{M ∈ s}        ‖D̂[M]‖²     (upstream setting s)
/// c_p = 2^{n2} Σ_{(M,combo) ∋ p} ‖Â[M]‖²     (downstream prep p)
/// ```
///
/// Minimising that subject to a fixed `Σ N` is the classic Neyman
/// allocation `N_i ∝ √c_i`, and `√c_i` is exactly the returned score: the
/// usage count rides in the number of summands, the coefficient magnitude
/// in the tensor norms, and the per-shot dispersion `σ̂ ≤ 1` in the
/// multinomial bound the variance model already uses. Settings whose
/// consuming strings have (near-)vanishing coefficients — e.g. next to a
/// golden cut — score near zero and stop drawing budget, which is the
/// paper's neglection economy applied to *shots* instead of subcircuits.
///
/// The downstream half of a SIC gather is informationally complete and
/// uniformly read through the frame solve, so the pipeline only consumes
/// the `upstream` half there (pass the SIC tensor as `downstream`).
pub fn neyman_scores(
    fragments: &Fragments,
    plan: &BasisPlan,
    upstream: &CoefficientTensor,
    downstream: &CoefficientTensor,
) -> NeymanScores {
    let n1 = fragments.upstream.num_outputs() as i32;
    let n2 = fragments.downstream.num_outputs() as i32;
    let num_cuts = plan.num_cuts();
    let mut up_contrib: HashMap<u64, f64> = HashMap::new();
    let mut down_contrib: HashMap<u64, f64> = HashMap::new();
    for m in plan.all_recon_strings() {
        let norm_sq = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        let a_sq = norm_sq(upstream.get(&m).expect("upstream entry"));
        let d_sq = norm_sq(downstream.get(&m).expect("downstream entry"));
        *up_contrib
            .entry(encode_meas(&plan.setting_for(&m)))
            .or_insert(0.0) += 2.0f64.powi(n1) * d_sq;
        let pairs: Vec<_> = (0..num_cuts).map(|k| plan.prep_pair(k, m[k])).collect();
        for combo in 0..(1usize << num_cuts) {
            let states: Vec<_> = pairs
                .iter()
                .enumerate()
                .map(|(k, pair)| pair[(combo >> k) & 1].0)
                .collect();
            *down_contrib.entry(encode_prep(&states)).or_insert(0.0) += 2.0f64.powi(n2) * a_sq;
        }
    }
    NeymanScores {
        upstream: plan
            .all_meas_settings()
            .iter()
            .map(|s| {
                up_contrib
                    .get(&encode_meas(s))
                    .copied()
                    .unwrap_or(0.0)
                    .sqrt()
            })
            .collect(),
        downstream: plan
            .all_prep_settings()
            .iter()
            .map(|s| {
                down_contrib
                    .get(&encode_prep(s))
                    .copied()
                    .unwrap_or(0.0)
                    .sqrt()
            })
            .collect(),
    }
}

/// The shared contraction-propagation pass: accumulates per-bitstring
/// variance with per-string `(Var[A], Var[D])` supplied by `vars_for`.
fn variance_core(
    fragments: &Fragments,
    plan: &BasisPlan,
    upstream: &CoefficientTensor,
    downstream: &CoefficientTensor,
    vars_for: impl Fn(&[Pauli]) -> (f64, f64),
) -> ReconstructionError {
    let n = fragments.total_qubits;
    let n1 = fragments.upstream.num_outputs();
    let n2 = fragments.downstream.num_outputs();
    let k = plan.num_cuts() as i32;
    let scale = 0.25f64.powi(k);

    let strings = plan.all_recon_strings();
    let t1: Vec<u64> = (0..(1u64 << n1))
        .map(|b| assemble(b, &fragments.upstream.output_globals))
        .collect();
    let t2: Vec<u64> = (0..(1u64 << n2))
        .map(|b| assemble(b, &fragments.downstream.output_globals))
        .collect();

    let mut variance = vec![0.0f64; 1 << n];
    for m in &strings {
        let a = upstream.get(m).expect("upstream entry");
        let d = downstream.get(m).expect("downstream entry");
        let (var_a, var_d) = vars_for(m);
        for (b1, &av) in a.iter().enumerate() {
            for (b2, &dv) in d.iter().enumerate() {
                let idx = (t1[b1] | t2[b2]) as usize;
                variance[idx] += scale * (av * av * var_d + dv * dv * var_a + var_a * var_d);
            }
        }
    }
    ReconstructionError {
        num_bits: n,
        variance,
    }
}

/// Predicted RMS error as a function of the shot budget — useful for
/// picking `shots_per_setting` before running (inverse-square-root law).
pub fn predicted_rms_for_budget(
    fragments: &Fragments,
    plan: &BasisPlan,
    upstream: &CoefficientTensor,
    downstream: &CoefficientTensor,
    shots_per_setting: u64,
) -> f64 {
    variance_from_tensors(fragments, plan, upstream, downstream, shots_per_setting).rms_error()
}

fn assemble(bits: u64, globals: &[usize]) -> u64 {
    let mut out = 0u64;
    for (i, &g) in globals.iter().enumerate() {
        out |= ((bits >> i) & 1) << g;
    }
    out
}

/// Empirical counterpart used in the validation tests: the per-outcome
/// variance across repeated reconstructions.
pub fn empirical_variance(distributions: &[Distribution]) -> Vec<f64> {
    assert!(!distributions.is_empty());
    let dim = distributions[0].dim();
    let n = distributions.len() as f64;
    let mut mean = vec![0.0f64; dim];
    for d in distributions {
        for (m, v) in mean.iter_mut().zip(d.values()) {
            *m += v / n;
        }
    }
    let mut var = vec![0.0f64; dim];
    for d in distributions {
        for ((v, m), out) in d.values().iter().zip(&mean).zip(var.iter_mut()) {
            *out += (v - m) * (v - m) / (n - 1.0);
        }
    }
    var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::gather;
    use crate::fragment::Fragmenter;
    use crate::reconstruction::{exact_downstream_tensor, exact_upstream_tensor, reconstruct};
    use crate::tomography::ExperimentPlan;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_device::ideal::IdealBackend;
    use qcut_math::Pauli;

    #[test]
    fn variance_scales_inversely_with_shots() {
        let (circuit, spec) = GoldenAnsatz::new(5, 5).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let down = exact_downstream_tensor(&frags.downstream, &plan);
        let rms_1k = predicted_rms_for_budget(&frags, &plan, &up, &down, 1000);
        let rms_4k = predicted_rms_for_budget(&frags, &plan, &up, &down, 4000);
        assert!(
            (rms_1k / rms_4k - 2.0).abs() < 0.05,
            "expected 1/sqrt(N) scaling: {rms_1k} vs {rms_4k}"
        );
    }

    #[test]
    fn golden_plan_has_lower_variance_per_equal_setting_budget() {
        // Fewer contraction terms = less accumulated noise at equal
        // per-setting shots — a quantitative version of the paper's "no
        // accuracy cost" claim.
        let (circuit, spec) = GoldenAnsatz::new(5, 7).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let standard = BasisPlan::standard(1);
        let golden = BasisPlan::with_neglected(vec![Some(Pauli::Y)]);
        let rms = |plan: &BasisPlan| {
            let up = exact_upstream_tensor(&frags.upstream, plan);
            let down = exact_downstream_tensor(&frags.downstream, plan);
            predicted_rms_for_budget(&frags, plan, &up, &down, 1000)
        };
        assert!(
            rms(&golden) <= rms(&standard) + 1e-12,
            "golden variance should not exceed standard"
        );
    }

    #[test]
    fn predicted_variance_tracks_empirical_variance() {
        // The acid test: run many independent reconstructions and compare
        // the trial-to-trial spread to the prediction. The prediction is a
        // mild upper bound (coherent cross-term accumulation), so empirical
        // ≤ predicted within a small factor, and not wildly smaller.
        let (circuit, spec) = GoldenAnsatz::new(5, 9).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let experiment = ExperimentPlan::build(&frags, &plan);
        let shots = 2000u64;

        let trials = 24;
        let mut dists = Vec::with_capacity(trials);
        let mut predicted_rms = 0.0;
        for t in 0..trials {
            let backend = IdealBackend::new(9000 + t as u64);
            let data = gather(&backend, &experiment, shots, true).unwrap();
            dists.push(reconstruct(&frags, &plan, &data));
            if t == 0 {
                predicted_rms = reconstruction_variance(&frags, &plan, &data).rms_error();
            }
        }
        let emp = empirical_variance(&dists);
        let empirical_rms = (emp.iter().sum::<f64>() / emp.len() as f64).sqrt();
        assert!(
            empirical_rms < predicted_rms * 1.6,
            "empirical {empirical_rms} should not exceed prediction {predicted_rms}"
        );
        assert!(
            empirical_rms > predicted_rms / 12.0,
            "prediction {predicted_rms} is uselessly loose vs empirical {empirical_rms}"
        );
    }

    #[test]
    fn realized_variance_matches_uniform_formula_on_uniform_data() {
        // On a uniform gather the per-setting realized shots all equal the
        // nominal budget, so the schedule-aware estimate must agree with
        // the closed-form uniform one.
        let (circuit, spec) = GoldenAnsatz::new(5, 13).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let experiment = ExperimentPlan::build(&frags, &plan);
        let backend = IdealBackend::new(55);
        let shots = 1500u64;
        let data = gather(&backend, &experiment, shots, true).unwrap();
        let up = upstream_tensor(&frags.upstream, &plan, &data);
        let down = downstream_tensor(&frags.downstream, &plan, &data);
        let realized = reconstruction_variance(&frags, &plan, &data);
        let uniform = variance_from_tensors(&frags, &plan, &up, &down, shots);
        for b in 0..(1u64 << 5) {
            assert!(
                (realized.variance(b) - uniform.variance(b)).abs() < 1e-12,
                "bitstring {b}: realized {} vs uniform {}",
                realized.variance(b),
                uniform.variance(b)
            );
        }
    }

    #[test]
    fn scheduled_variance_tracks_the_skew() {
        // Moving budget onto the Z setting must lower the Z/I strings'
        // upstream variance contribution and raise X/Y's; the aggregate
        // figure reacts to *where* the shots went, which the old nominal
        // mean could not see.
        use crate::allocation::{schedule_for_plan, ShotAllocation};
        let (circuit, spec) = GoldenAnsatz::new(5, 15).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let down = exact_downstream_tensor(&frags.downstream, &plan);
        let total = 9_000u64;
        let uniform = schedule_for_plan(&plan, ShotAllocation::TotalBudget { total }).unwrap();
        let weighted = schedule_for_plan(&plan, ShotAllocation::WeightedByUsage { total }).unwrap();
        assert_eq!(uniform.total(), weighted.total());
        let rms_u = variance_from_schedule(&frags, &plan, &up, &down, &uniform).rms_error();
        let rms_w = variance_from_schedule(&frags, &plan, &up, &down, &weighted).rms_error();
        assert!(rms_u > 0.0 && rms_w > 0.0);
        assert!(
            (rms_u - rms_w).abs() / rms_u < 0.5,
            "same total budget should land in the same ballpark: {rms_u} vs {rms_w}"
        );
        // And the uniform special case of the schedule API reproduces the
        // closed-form constant-budget estimate exactly.
        let per_setting = crate::allocation::ShotSchedule::uniform(3, 6, 1000);
        let a = variance_from_schedule(&frags, &plan, &up, &down, &per_setting);
        let b = variance_from_tensors(&frags, &plan, &up, &down, 1000);
        for bits in 0..(1u64 << 5) {
            assert!((a.variance(bits) - b.variance(bits)).abs() < 1e-15);
        }
    }

    #[test]
    fn neyman_scores_track_usage_and_coefficient_magnitude() {
        // On the golden ansatz the Y-string coefficients vanish upstream,
        // so every prep combination serving only the Y string scores ~0,
        // while the Z setting (read by I *and* Z) outscores X.
        let (circuit, spec) = GoldenAnsatz::new(5, 3).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let down = exact_downstream_tensor(&frags.downstream, &plan);
        let scores = neyman_scores(&frags, &plan, &up, &down);
        assert_eq!(scores.upstream.len(), 3);
        assert_eq!(scores.downstream.len(), 6);
        use crate::basis::MeasBasis;
        let idx = |b: MeasBasis| {
            plan.all_meas_settings()
                .iter()
                .position(|s| s == &vec![b])
                .unwrap()
        };
        assert!(
            scores.upstream[idx(MeasBasis::Z)] > scores.upstream[idx(MeasBasis::X)],
            "Z (2 consuming strings) must outscore X (1): {:?}",
            scores.upstream
        );
        // The Y-only preparations (Yp/Ym) read a vanishing ‖Â[Y]‖².
        use qcut_math::PrepState;
        let pidx = |p: PrepState| {
            plan.all_prep_settings()
                .iter()
                .position(|s| s == &vec![p])
                .unwrap()
        };
        assert!(
            scores.downstream[pidx(PrepState::Yp)] < 1e-6,
            "Y-prep score should vanish on the golden ansatz: {:?}",
            scores.downstream
        );
        assert!(scores.downstream[pidx(PrepState::Zp)] > 0.1);
    }

    #[test]
    fn neyman_refined_schedule_beats_usage_weights_on_skewed_plans() {
        // The payoff the adaptive policy banks on: refining by the
        // measured per-setting sensitivities lowers the scheduled variance
        // below the static usage split at equal total budget.
        use crate::allocation::ShotAllocation;
        use crate::allocation::{pilot_schedule, pilot_total, refine_schedule, schedule_for_plan};
        let (circuit, spec) = GoldenAnsatz::new(5, 21).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let up = exact_upstream_tensor(&frags.upstream, &plan);
        let down = exact_downstream_tensor(&frags.downstream, &plan);
        let total = 90_000u64;
        let pilot = pilot_total(0.1, total);
        let pilot_sched = pilot_schedule(3, 6, pilot).unwrap();
        let scores = neyman_scores(&frags, &plan, &up, &down);
        let adaptive = refine_schedule(
            &pilot_sched,
            &scores.upstream,
            &scores.downstream,
            total - pilot,
        );
        assert_eq!(adaptive.total(), total);
        let weighted = schedule_for_plan(&plan, ShotAllocation::WeightedByUsage { total }).unwrap();
        let rms_a = variance_from_schedule(&frags, &plan, &up, &down, &adaptive).rms_error();
        let rms_w = variance_from_schedule(&frags, &plan, &up, &down, &weighted).rms_error();
        assert!(
            rms_a <= rms_w * 1.0001,
            "Neyman-refined RMS {rms_a} should not exceed usage-weighted {rms_w}"
        );
    }

    #[test]
    fn error_object_accessors() {
        let (circuit, spec) = GoldenAnsatz::new(5, 11).build();
        let frags = Fragmenter::fragment(&circuit, &spec).unwrap();
        let plan = BasisPlan::standard(1);
        let experiment = ExperimentPlan::build(&frags, &plan);
        let backend = IdealBackend::new(77);
        let data = gather(&backend, &experiment, 1000, true).unwrap();
        let err = reconstruction_variance(&frags, &plan, &data);
        assert_eq!(err.num_bits(), 5);
        assert!(err.variance(0) > 0.0);
        assert!(err.std_error(0) > 0.0);
        assert!(err.max_error() >= err.rms_error());
    }

    #[test]
    fn empirical_variance_of_identical_distributions_is_zero() {
        let d = Distribution::uniform(2);
        let var = empirical_variance(&[d.clone(), d.clone(), d]);
        assert!(var.iter().all(|&v| v.abs() < 1e-15));
    }
}
