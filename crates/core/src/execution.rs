//! Running an [`ExperimentPlan`] on a backend and collecting fragment data.
//!
//! Fragments "can be simulated independently … run fragments in parallel"
//! (paper §II-A): all subcircuit variants are registered on a
//! [`crate::jobgraph::JobGraph`] and executed as one batched, deduplicated
//! backend submission.

use crate::basis::{encode_meas, encode_prep};
use crate::jobgraph::{Channel, GraphFailure, JobGraph};
use crate::retry::RetryPolicy;
use crate::tomography::ExperimentPlan;
use qcut_device::backend::Backend;
use qcut_sim::counts::Counts;
use std::collections::HashMap;
use std::time::Duration;

/// Measured counts for every subcircuit variant of one cut circuit.
///
/// Shots are tracked *per setting* (the realized schedule): under a
/// non-uniform [`crate::allocation::ShotAllocation`] — or when the engine
/// delivers merged histograms that exceed a setting's request — the
/// per-setting totals are what the variance/CI math must consume, not a
/// nominal mean.
#[derive(Debug, Clone)]
pub struct FragmentData {
    /// Upstream counts keyed by [`encode_meas`] of the setting.
    pub upstream: HashMap<u64, Counts>,
    /// Downstream counts keyed by [`encode_prep`] of the preparation.
    pub downstream: HashMap<u64, Counts>,
    /// Realized shots per upstream setting (same keys as
    /// [`FragmentData::upstream`]). Matches the delivered histogram totals,
    /// which can exceed the *requested* schedule when deduplicated or
    /// seeded engine nodes hand back a larger merged histogram.
    pub upstream_shots: HashMap<u64, u64>,
    /// Realized shots per downstream preparation (same keys as
    /// [`FragmentData::downstream`]).
    pub downstream_shots: HashMap<u64, u64>,
    /// Number of subcircuits executed.
    pub subcircuits: usize,
    /// Total shots across all subcircuits (sum of the realized schedule).
    pub total_shots: u64,
    /// Sum of simulated device time over all jobs (the Fig. 5 quantity).
    pub simulated_device_time: Duration,
    /// Host CPU time spent inside backend runs (summed over jobs).
    pub host_time: Duration,
}

impl FragmentData {
    /// Assembles fragment data from delivered per-channel counts, deriving
    /// the realized per-setting schedule from the histogram totals.
    pub fn from_counts(
        upstream: HashMap<u64, Counts>,
        downstream: HashMap<u64, Counts>,
        simulated_device_time: Duration,
        host_time: Duration,
    ) -> Self {
        let upstream_shots: HashMap<u64, u64> =
            upstream.iter().map(|(&k, c)| (k, c.total())).collect();
        let downstream_shots: HashMap<u64, u64> =
            downstream.iter().map(|(&k, c)| (k, c.total())).collect();
        let total_shots =
            upstream_shots.values().sum::<u64>() + downstream_shots.values().sum::<u64>();
        FragmentData {
            subcircuits: upstream.len() + downstream.len(),
            upstream,
            downstream,
            upstream_shots,
            downstream_shots,
            total_shots,
            simulated_device_time,
            host_time,
        }
    }

    /// Counts for one upstream setting.
    pub fn upstream_counts(&self, setting_key: u64) -> Option<&Counts> {
        self.upstream.get(&setting_key)
    }

    /// Counts for one downstream preparation.
    pub fn downstream_counts(&self, prep_key: u64) -> Option<&Counts> {
        self.downstream.get(&prep_key)
    }

    /// Realized shots behind one upstream setting (0 when absent).
    pub fn shots_for_meas(&self, setting_key: u64) -> u64 {
        self.upstream_shots.get(&setting_key).copied().unwrap_or(0)
    }

    /// Realized shots behind one downstream preparation (0 when absent).
    pub fn shots_for_prep(&self, prep_key: u64) -> u64 {
        self.downstream_shots.get(&prep_key).copied().unwrap_or(0)
    }

    /// Merges shot data from a second gathering pass (same plan): counts
    /// accumulate, per-setting budgets add up. The accumulation contract —
    /// histograms merge, per-setting budgets and timings sum — is what a
    /// multi-round gather (adaptive pilot → refine, online detection's
    /// sequential batches) relies on; the engine-seeded refine round in
    /// [`crate::pipeline::CutExecutor::run`] delivers exactly the merge of
    /// both passes (pinned in `tests/integration_allocation.rs`).
    pub fn merge(&mut self, other: &FragmentData) {
        for (k, c) in &other.upstream {
            self.upstream
                .entry(*k)
                .and_modify(|mine| mine.merge(c))
                .or_insert_with(|| c.clone());
        }
        for (k, c) in &other.downstream {
            self.downstream
                .entry(*k)
                .and_modify(|mine| mine.merge(c))
                .or_insert_with(|| c.clone());
        }
        for (k, s) in &other.upstream_shots {
            *self.upstream_shots.entry(*k).or_insert(0) += s;
        }
        for (k, s) in &other.downstream_shots {
            *self.downstream_shots.entry(*k).or_insert(0) += s;
        }
        self.total_shots += other.total_shots;
        self.simulated_device_time += other.simulated_device_time;
        self.host_time += other.host_time;
        self.subcircuits = self.upstream.len() + self.downstream.len();
    }
}

/// Executes every variant of `plan` for `shots_per_setting` shots each.
///
/// `parallel` selects rayon fan-out vs sequential execution (the paper's
/// device runs are sequential on a single QPU; classical simulation can
/// fan out).
pub fn gather<B: Backend + ?Sized>(
    backend: &B,
    plan: &ExperimentPlan,
    shots_per_setting: u64,
    parallel: bool,
) -> Result<FragmentData, Box<GraphFailure>> {
    let schedule = crate::allocation::ShotSchedule::uniform(
        plan.upstream.len(),
        plan.downstream.len(),
        shots_per_setting,
    );
    gather_scheduled(backend, plan, &schedule, parallel)
}

/// Like [`gather`] but with explicit per-setting shot counts (see
/// [`crate::allocation`] for budget policies).
pub fn gather_scheduled<B: Backend + ?Sized>(
    backend: &B,
    plan: &ExperimentPlan,
    schedule: &crate::allocation::ShotSchedule,
    parallel: bool,
) -> Result<FragmentData, Box<GraphFailure>> {
    gather_scheduled_with(backend, plan, schedule, parallel, &RetryPolicy::default())
}

/// Like [`gather_scheduled`] but honoring a [`RetryPolicy`]: transient
/// backend faults and deterministic per-job timeouts are retried inside
/// the engine (only failed nodes re-submitted), and what still fails
/// permanently is returned as a [`GraphFailure`] carrying the salvaged
/// surviving data.
pub fn gather_scheduled_with<B: Backend + ?Sized>(
    backend: &B,
    plan: &ExperimentPlan,
    schedule: &crate::allocation::ShotSchedule,
    parallel: bool,
    retry: &RetryPolicy,
) -> Result<FragmentData, Box<GraphFailure>> {
    assert_eq!(
        schedule.upstream.len(),
        plan.upstream.len(),
        "schedule arity"
    );
    assert_eq!(
        schedule.downstream.len(),
        plan.downstream.len(),
        "schedule arity"
    );
    let mut graph = JobGraph::new();
    for (i, v) in plan.upstream.iter().enumerate() {
        graph.add_job(
            v.circuit.clone(),
            (Channel::UpstreamMeas, encode_meas(&v.setting)),
            schedule.upstream[i],
        );
    }
    for (i, v) in plan.downstream.iter().enumerate() {
        graph.add_job(
            v.circuit.clone(),
            (Channel::DownstreamPrep, encode_prep(&v.preparation)),
            schedule.downstream[i],
        );
    }

    let mut run = graph.execute_with(backend, parallel, retry)?;
    let upstream = run.take_channel(Channel::UpstreamMeas);
    let downstream = run.take_channel(Channel::DownstreamPrep);
    Ok(FragmentData::from_counts(
        upstream,
        downstream,
        run.stats.simulated_device_time,
        run.stats.host_time,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisPlan;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_device::ideal::IdealBackend;
    use qcut_math::Pauli;

    fn plan_for(seed: u64, golden: bool) -> ExperimentPlan {
        let (c, spec) = GoldenAnsatz::new(5, seed).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let basis = if golden {
            BasisPlan::with_neglected(vec![Some(Pauli::Y)])
        } else {
            BasisPlan::standard(1)
        };
        ExperimentPlan::build(&frags, &basis)
    }

    #[test]
    fn gather_fills_every_setting() {
        let backend = IdealBackend::new(3);
        let plan = plan_for(0, false);
        let data = gather(&backend, &plan, 500, true).unwrap();
        assert_eq!(data.upstream.len(), 3);
        assert_eq!(data.downstream.len(), 6);
        assert_eq!(data.subcircuits, 9);
        assert_eq!(data.total_shots, 4500);
        for c in data.upstream.values().chain(data.downstream.values()) {
            assert_eq!(c.total(), 500);
        }
    }

    #[test]
    fn golden_gather_skips_y_settings() {
        let backend = IdealBackend::new(3);
        let plan = plan_for(0, true);
        let data = gather(&backend, &plan, 500, true).unwrap();
        assert_eq!(data.subcircuits, 6);
        assert_eq!(data.total_shots, 3000);
    }

    #[test]
    fn scheduled_gather_records_the_realized_schedule() {
        // Under a non-uniform schedule the per-setting shot record must be
        // the actual counts, never the mean (the old `shots_per_setting`
        // field silently averaged).
        let backend = IdealBackend::new(5);
        let plan = plan_for(2, false);
        let schedule = crate::allocation::ShotSchedule {
            upstream: vec![100, 200, 300],
            downstream: vec![50, 60, 70, 80, 90, 100],
        };
        let data = gather_scheduled(&backend, &plan, &schedule, true).unwrap();
        assert_eq!(data.total_shots, schedule.total());
        for (i, v) in plan.upstream.iter().enumerate() {
            let key = encode_meas(&v.setting);
            assert_eq!(data.shots_for_meas(key), schedule.upstream[i]);
            assert_eq!(data.upstream[&key].total(), schedule.upstream[i]);
        }
        for (i, v) in plan.downstream.iter().enumerate() {
            let key = encode_prep(&v.preparation);
            assert_eq!(data.shots_for_prep(key), schedule.downstream[i]);
        }
    }

    #[test]
    fn sequential_and_parallel_produce_same_shape() {
        let plan = plan_for(1, false);
        let b1 = IdealBackend::new(9);
        let b2 = IdealBackend::new(9);
        let par = gather(&b1, &plan, 100, true).unwrap();
        let seq = gather(&b2, &plan, 100, false).unwrap();
        assert_eq!(par.upstream.len(), seq.upstream.len());
        assert_eq!(par.downstream.len(), seq.downstream.len());
        assert_eq!(par.total_shots, seq.total_shots);
    }

    #[test]
    fn capacity_error_propagates() {
        use qcut_device::backend::BackendError;
        let backend = IdealBackend::new(0).with_capacity(2);
        let plan = plan_for(0, false); // 3-qubit fragments
        let err = gather(&backend, &plan, 10, true).unwrap_err();
        assert!(!err.failures.is_empty());
        assert!(matches!(
            err.first_error(),
            Some(BackendError::CircuitTooWide { .. })
        ));
        // Every setting sat on a too-wide fragment: nothing salvaged.
        assert_eq!(err.salvage.stats.shots_executed, 0);
    }

    #[test]
    fn merge_accumulates_budgets() {
        let backend = IdealBackend::new(3);
        let plan = plan_for(0, false);
        let mut a = gather(&backend, &plan, 200, true).unwrap();
        let b = gather(&backend, &plan, 300, true).unwrap();
        a.merge(&b);
        assert_eq!(a.total_shots, 4500);
        for c in a.upstream.values() {
            assert_eq!(c.total(), 500);
        }
        for &s in a.upstream_shots.values().chain(a.downstream_shots.values()) {
            assert_eq!(s, 500);
        }
    }
}
