//! Shot allocation across tomography settings.
//!
//! The paper uses a uniform budget (1000 or 10 000 shots per subcircuit).
//! Uniform is not variance-optimal: the upstream `Z` setting feeds *two*
//! reconstruction strings per cut (`I` and `Z`), and downstream
//! preparations are reused by every string whose prep pair contains them,
//! so settings differ in how many contraction terms consume their data.
//! [`ShotAllocation::WeightedByUsage`] splits a total budget
//! proportionally to that usage count; the ablation benches compare it
//! against the paper's uniform scheme.

use crate::basis::{encode_meas, encode_prep, BasisPlan};
use crate::tomography::ExperimentPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How to distribute shots over the subcircuit settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShotAllocation {
    /// The paper's scheme: the same budget for every setting.
    Uniform {
        /// Shots per subcircuit.
        shots_per_setting: u64,
    },
    /// A fixed total budget divided evenly (rounded down, remainder to the
    /// earliest settings).
    TotalBudget {
        /// Total shots across all subcircuits.
        total: u64,
    },
    /// A fixed total budget divided proportionally to how many
    /// reconstruction terms consume each setting's data.
    WeightedByUsage {
        /// Total shots across all subcircuits.
        total: u64,
    },
}

/// Concrete per-setting shot counts, aligned with an [`ExperimentPlan`]'s
/// variant order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShotSchedule {
    /// Shots for each upstream variant.
    pub upstream: Vec<u64>,
    /// Shots for each downstream variant.
    pub downstream: Vec<u64>,
}

impl ShotSchedule {
    /// Total shots in the schedule.
    pub fn total(&self) -> u64 {
        self.upstream.iter().sum::<u64>() + self.downstream.iter().sum::<u64>()
    }

    /// Smallest per-setting budget (0 means a starved setting — invalid
    /// for reconstruction).
    pub fn min_shots(&self) -> u64 {
        self.upstream
            .iter()
            .chain(&self.downstream)
            .copied()
            .min()
            .unwrap_or(0)
    }
}

/// How many reconstruction strings read each upstream setting and how many
/// signed prep combinations read each downstream preparation.
pub fn usage_counts(plan: &BasisPlan) -> (HashMap<u64, u64>, HashMap<u64, u64>) {
    let mut upstream: HashMap<u64, u64> = HashMap::new();
    let mut downstream: HashMap<u64, u64> = HashMap::new();
    let num_cuts = plan.num_cuts();
    for m in plan.all_recon_strings() {
        *upstream
            .entry(encode_meas(&plan.setting_for(&m)))
            .or_insert(0) += 1;
        // Each string consumes 2^K prep combinations.
        let pairs: Vec<_> = (0..num_cuts).map(|k| plan.prep_pair(k, m[k])).collect();
        for combo in 0..(1usize << num_cuts) {
            let states: Vec<_> = pairs
                .iter()
                .enumerate()
                .map(|(k, pair)| pair[(combo >> k) & 1].0)
                .collect();
            *downstream.entry(encode_prep(&states)).or_insert(0) += 1;
        }
    }
    (upstream, downstream)
}

/// Builds the concrete schedule for a plan and allocation policy.
///
/// # Panics
/// Panics if a total budget is too small to give every setting at least
/// one shot.
pub fn schedule(
    basis: &BasisPlan,
    experiment: &ExperimentPlan,
    allocation: ShotAllocation,
) -> ShotSchedule {
    let n_up = experiment.upstream.len();
    let n_down = experiment.downstream.len();
    let n_total = n_up + n_down;
    match allocation {
        ShotAllocation::Uniform { shots_per_setting } => ShotSchedule {
            upstream: vec![shots_per_setting; n_up],
            downstream: vec![shots_per_setting; n_down],
        },
        ShotAllocation::TotalBudget { total } => {
            assert!(
                total >= n_total as u64,
                "budget {total} cannot cover {n_total} settings"
            );
            let base = total / n_total as u64;
            let mut rem = (total % n_total as u64) as usize;
            let mut give = |n: usize| -> Vec<u64> {
                (0..n)
                    .map(|_| {
                        base + if rem > 0 {
                            rem -= 1;
                            1
                        } else {
                            0
                        }
                    })
                    .collect()
            };
            let upstream = give(n_up);
            let downstream = give(n_down);
            ShotSchedule {
                upstream,
                downstream,
            }
        }
        ShotAllocation::WeightedByUsage { total } => {
            assert!(
                total >= n_total as u64,
                "budget {total} cannot cover {n_total} settings"
            );
            let (up_usage, down_usage) = usage_counts(basis);
            let up_w: Vec<f64> = experiment
                .upstream
                .iter()
                .map(|v| up_usage.get(&encode_meas(&v.setting)).copied().unwrap_or(1) as f64)
                .collect();
            let down_w: Vec<f64> = experiment
                .downstream
                .iter()
                .map(|v| {
                    down_usage
                        .get(&encode_prep(&v.preparation))
                        .copied()
                        .unwrap_or(1) as f64
                })
                .collect();
            let weight_sum: f64 = up_w.iter().chain(&down_w).sum();
            // Reserve one shot per setting, distribute the rest by weight.
            let spare = total - n_total as u64;
            let alloc = |w: &[f64]| -> Vec<u64> {
                w.iter()
                    .map(|wi| 1 + (spare as f64 * wi / weight_sum).floor() as u64)
                    .collect()
            };
            ShotSchedule {
                upstream: alloc(&up_w),
                downstream: alloc(&down_w),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragmenter;
    use qcut_circuit::ansatz::GoldenAnsatz;
    use qcut_math::Pauli;

    fn plan_pair(golden: bool) -> (BasisPlan, ExperimentPlan) {
        let (c, spec) = GoldenAnsatz::new(5, 1).build();
        let frags = Fragmenter::fragment(&c, &spec).unwrap();
        let basis = if golden {
            BasisPlan::with_neglected(vec![Some(Pauli::Y)])
        } else {
            BasisPlan::standard(1)
        };
        let experiment = ExperimentPlan::build(&frags, &basis);
        (basis, experiment)
    }

    #[test]
    fn uniform_schedule_matches_paper() {
        let (basis, experiment) = plan_pair(false);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::Uniform {
                shots_per_setting: 1000,
            },
        );
        assert_eq!(s.upstream, vec![1000; 3]);
        assert_eq!(s.downstream, vec![1000; 6]);
        assert_eq!(s.total(), 9000);
    }

    #[test]
    fn total_budget_is_exactly_spent() {
        let (basis, experiment) = plan_pair(false);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::TotalBudget { total: 9005 },
        );
        assert_eq!(s.total(), 9005);
        // No setting starves and the split is near-even.
        assert!(s.min_shots() >= 1000);
        assert!(s.upstream.iter().chain(&s.downstream).all(|&n| n <= 1002));
    }

    #[test]
    fn usage_counts_single_cut() {
        // Standard single cut: Z setting feeds I and Z strings (2), X and Y
        // feed one each; preps: Zp/Zm serve I and Z strings × 2 combos = 4
        // reads... concretely: each of the 4 strings reads 2 preps.
        let basis = BasisPlan::standard(1);
        let (up, down) = usage_counts(&basis);
        use crate::basis::MeasBasis;
        assert_eq!(up[&encode_meas(&[MeasBasis::Z])], 2);
        assert_eq!(up[&encode_meas(&[MeasBasis::X])], 1);
        assert_eq!(up[&encode_meas(&[MeasBasis::Y])], 1);
        // Total downstream reads = 4 strings × 2 preps = 8.
        let total: u64 = down.values().sum();
        assert_eq!(total, 8);
        // Zp is read by I and Z -> 2; Xp only by X -> 1.
        use qcut_math::PrepState;
        assert_eq!(down[&encode_prep(&[PrepState::Zp])], 2);
        assert_eq!(down[&encode_prep(&[PrepState::Xp])], 1);
    }

    #[test]
    fn weighted_schedule_favours_z_setting() {
        let (basis, experiment) = plan_pair(false);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::WeightedByUsage { total: 90_000 },
        );
        // Find the Z setting's index.
        use crate::basis::MeasBasis;
        let z_idx = experiment
            .upstream
            .iter()
            .position(|v| v.setting == vec![MeasBasis::Z])
            .unwrap();
        let x_idx = experiment
            .upstream
            .iter()
            .position(|v| v.setting == vec![MeasBasis::X])
            .unwrap();
        assert!(
            s.upstream[z_idx] > s.upstream[x_idx],
            "Z setting should get more shots: {:?}",
            s.upstream
        );
        // Budget approximately spent (floor rounding loses < n_settings).
        assert!(s.total() <= 90_000);
        assert!(s.total() >= 90_000 - 9);
    }

    #[test]
    fn weighted_schedule_on_golden_plan() {
        let (basis, experiment) = plan_pair(true);
        let s = schedule(
            &basis,
            &experiment,
            ShotAllocation::WeightedByUsage { total: 60_000 },
        );
        assert_eq!(s.upstream.len(), 2);
        assert_eq!(s.downstream.len(), 4);
        assert!(s.min_shots() > 0);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn starved_budget_rejected() {
        let (basis, experiment) = plan_pair(false);
        schedule(
            &basis,
            &experiment,
            ShotAllocation::TotalBudget { total: 5 },
        );
    }
}
